"""Packaging metadata for the LoAS reproduction.

The project is a plain ``src``-layout package; a fresh clone installs with

    pip install -e .[test]

which brings in pytest and pytest-benchmark for the tier-1 suite and the
figure benchmarks.
"""
import re
from pathlib import Path

from setuptools import find_packages, setup


def _read_version() -> str:
    """Single-source the version from ``repro.__version__`` (no import --
    the package's dependencies need not be installed at build time)."""
    text = (Path(__file__).parent / "src" / "repro" / "__init__.py").read_text()
    match = re.search(r'^__version__ = "([^"]+)"$', text, re.MULTILINE)
    if match is None:
        raise RuntimeError("repro.__version__ not found in src/repro/__init__.py")
    return match.group(1)


setup(
    name="loas-repro",
    version=_read_version(),
    description=(
        "Reproduction of LoAS: fully temporal-parallel dataflow for "
        "dual-sparse spiking neural networks (MICRO 2024)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.24",
    ],
    extras_require={
        "test": [
            "pytest>=7.0",
            "pytest-benchmark>=4.0",
            "pytest-timeout>=2.1",
            "hypothesis>=6.0",
        ],
    },
)
