"""Packaging metadata for the LoAS reproduction.

The project is a plain ``src``-layout package; a fresh clone installs with

    pip install -e .[test]

which brings in pytest and pytest-benchmark for the tier-1 suite and the
figure benchmarks.
"""
from setuptools import find_packages, setup

setup(
    name="loas-repro",
    version="0.1.0",
    description=(
        "Reproduction of LoAS: fully temporal-parallel dataflow for "
        "dual-sparse spiking neural networks (MICRO 2024)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.24",
    ],
    extras_require={
        "test": [
            "pytest>=7.0",
            "pytest-benchmark>=4.0",
            "hypothesis>=6.0",
        ],
    },
)
