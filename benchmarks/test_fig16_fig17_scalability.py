"""Benchmarks regenerating Figures 16 and 17: temporal and workload scalability."""

import pytest

from repro.experiments import format_fig16, format_fig17, run_fig16, run_fig17

from conftest import run_once


def test_fig16_temporal_scalability(benchmark):
    """Figure 16: TPPE cost grows mildly with T; silent neurons shrink with T."""
    data = run_once(benchmark, run_fig16, timesteps=(4, 8, 16), scale=0.5, seed=0)
    assert data["tppe_area_ratio"]["T=16"] == pytest.approx(1.37, abs=0.02)
    assert data["tppe_power_ratio"]["T=16"] == pytest.approx(1.25, abs=0.02)
    assert data["silent_ratio_origin"]["T=8"] < data["silent_ratio_origin"]["T=4"]
    # The preprocessing keeps the silent ratio at T=8 close to the T=4 level.
    assert data["silent_ratio_finetuned"]["T=8"] > data["silent_ratio_origin"]["T=8"]
    print("\n" + format_fig16(scale=0.5))


def test_fig17_scalability_sweeps(benchmark):
    """Figure 17: sensitivity to weight sparsity is strong, to timesteps mild."""
    data = run_once(benchmark, run_fig17, scale=0.5, seed=1)
    sweep = data["weight_sparsity"]
    assert sweep["B=98.2%"] == pytest.approx(1.0)
    assert sweep["B=25.0%"] < sweep["B=68.4%"] < sweep["B=98.2%"]
    # Performance collapses by a large factor when B becomes dense-ish
    # (the paper reports roughly 88 % loss from 98.2 % to 25 % sparsity).
    assert sweep["B=25.0%"] < 0.5
    # Doubling the timesteps costs well under 2x (the paper reports ~14 %).
    assert data["timesteps"]["T=8"] > 0.6
    assert "T-HFF" in data["layer_size"]
    print("\n" + format_fig17(scale=0.5))
