"""Benchmark harness configuration.

Every benchmark regenerates one table or figure of the paper.  The heavy
accelerator sweeps are executed exactly once per benchmark (``rounds=1``)
because the quantity of interest is the *result* (the rows / series of the
table or figure, printed to stdout), not the harness runtime.  Paper-scale
workloads are used wherever they finish in a few tens of seconds; the two
largest sweeps are run at half scale, which preserves every qualitative
trend (the sparsity profiles are unchanged).

The math libraries are pinned to one thread before the first ``numpy``
import (thread pools read the environment at library load): the engine
benchmark compares compute-bound regimes (cold generation + statistics
GEMMs) against IO-bound ones (disk-warm entry loads), and with a
multi-threaded BLAS the cold baseline silently parallelises while entry IO
cannot -- the recorded ratios would measure the host's thread count rather
than the work the cache tiers skip.  Pinning keeps ``BENCH_engine.json``
comparable across hosts and over time.
"""

from __future__ import annotations

import os
import sys

# Whether the pin below can still take effect: thread pools read the
# environment when the math libraries load, so importing numpy *before*
# this conftest (e.g. the combined ``pytest tests benchmarks`` run, whose
# test modules import numpy during collection) makes the env vars a silent
# no-op.  Two cases still count as pinned:
#
# * numpy has not been imported yet -- the setdefault pin below lands in
#   time, or
# * every thread-count variable was already "1" when the interpreter
#   started (the CI benchmark job exports them at the step level), in which
#   case numpy's import order is irrelevant.
#
# The engine benchmark records the marker in BENCH_engine.json so a
# thread-count-tainted measurement is at least labelled as such, and the CI
# benchmark job *fails* on a tainted pin (conftest modules are not reliably
# importable by name, hence the env-var hand-off).  To keep the marker
# honest, run ``pytest benchmarks`` in its own interpreter rather than
# appended to a tests run.
_PIN_VARIABLES = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
)
_externally_pinned = all(os.environ.get(_v) == "1" for _v in _PIN_VARIABLES)
# setdefault cannot override a pre-existing non-"1" value, so an environment
# carrying e.g. OMP_NUM_THREADS=8 is unpinnable even when numpy has not been
# imported yet (the benchmark's _blas_pinned() re-checks the values too;
# this keeps the marker itself honest).
_pinnable_environment = all(
    os.environ.get(_v) in (None, "1") for _v in _PIN_VARIABLES
)
os.environ["REPRO_BENCH_BLAS_PINNABLE"] = (
    "1"
    if _externally_pinned or (_pinnable_environment and "numpy" not in sys.modules)
    else "0"
)

for _variable in _PIN_VARIABLES:
    os.environ.setdefault(_variable, "1")


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark and return its value."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
