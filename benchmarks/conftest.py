"""Benchmark harness configuration.

Every benchmark regenerates one table or figure of the paper.  The heavy
accelerator sweeps are executed exactly once per benchmark (``rounds=1``)
because the quantity of interest is the *result* (the rows / series of the
table or figure, printed to stdout), not the harness runtime.  Paper-scale
workloads are used wherever they finish in a few tens of seconds; the two
largest sweeps are run at half scale, which preserves every qualitative
trend (the sparsity profiles are unchanged).
"""

from __future__ import annotations


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark and return its value."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
