"""Benchmark harness configuration.

Every benchmark regenerates one table or figure of the paper.  The heavy
accelerator sweeps are executed exactly once per benchmark (``rounds=1``)
because the quantity of interest is the *result* (the rows / series of the
table or figure, printed to stdout), not the harness runtime.  Paper-scale
workloads are used wherever they finish in a few tens of seconds; the two
largest sweeps are run at half scale, which preserves every qualitative
trend (the sparsity profiles are unchanged).

The math libraries are pinned to one thread before the first ``numpy``
import (thread pools read the environment at library load): the engine
benchmark compares compute-bound regimes (cold generation + statistics
GEMMs) against IO-bound ones (disk-warm entry loads), and with a
multi-threaded BLAS the cold baseline silently parallelises while entry IO
cannot -- the recorded ratios would measure the host's thread count rather
than the work the cache tiers skip.  Pinning keeps ``BENCH_engine.json``
comparable across hosts and over time.
"""

from __future__ import annotations

import os
import sys

# Whether the pin below can still take effect: thread pools read the
# environment when the math libraries load, so importing numpy *before*
# this conftest (e.g. ``pytest tests benchmarks`` loads tests/conftest.py
# first) makes the env vars a silent no-op.  The engine benchmark records
# the marker in BENCH_engine.json so a thread-count-tainted measurement is
# at least labelled as such (conftest modules are not reliably importable
# by name, hence the env-var hand-off).
os.environ["REPRO_BENCH_BLAS_PINNABLE"] = "0" if "numpy" in sys.modules else "1"

for _variable in (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
):
    os.environ.setdefault(_variable, "1")


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark and return its value."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
