"""Benchmarks regenerating Figures 12 and 13: overall speedup, energy, traffic.

Both figures come from the same accelerator-by-network sweep; each benchmark
runs the sweep once at paper scale and checks the headline orderings: LoAS is
the fastest and most energy-efficient design on every network, the fine-tuned
preprocessing helps further, and LoAS moves less data on and off chip than
the inner-product baseline.
"""

from repro.experiments import format_fig12, format_fig13, run_fig12, run_fig13

from conftest import run_once

NETWORKS = ("alexnet", "vgg16", "resnet19")
BASELINES = ("SparTen-SNN", "GoSPA-SNN", "Gamma-SNN")


def test_fig12_speedup_and_energy(benchmark):
    """Figure 12: LoAS beats every dual-sparse SNN baseline on every network."""
    data = run_once(benchmark, run_fig12, networks=NETWORKS, scale=1.0, seed=1)
    for network, per_accel in data.items():
        loas = per_accel["LoAS"]
        loas_ft = per_accel["LoAS-FT"]
        for baseline in BASELINES:
            base = per_accel[baseline]
            assert loas["cycles"] < base["cycles"], (network, baseline)
            assert loas["energy_pj"] < base["energy_pj"], (network, baseline)
        # Speedups over SparTen-SNN land in the paper's ballpark (several x).
        assert 2.0 < loas["speedup"] < 12.0, network
        # The fine-tuned preprocessing helps (paper: ~20 % on average).
        assert loas_ft["speedup"] >= loas["speedup"]
    print("\n" + format_fig12(scale=1.0))


def test_fig13_memory_traffic(benchmark):
    """Figure 13: LoAS has the least on-chip traffic; Gamma-SNN the most."""
    data = run_once(benchmark, run_fig13, networks=NETWORKS, scale=0.5, seed=1)
    for network, per_accel in data.items():
        loas = per_accel["LoAS"]
        for baseline in BASELINES:
            assert loas["onchip_mb"] < per_accel[baseline]["onchip_mb"], (network, baseline)
        assert loas["offchip_kb"] < per_accel["SparTen-SNN"]["offchip_kb"], network
        # Gustavson suffers the most on-chip traffic once timesteps multiply
        # the partial-row working set (Section VI-A).
        assert per_accel["Gamma-SNN"]["onchip_mb"] > per_accel["SparTen-SNN"]["onchip_mb"], network
    print("\n" + format_fig13(scale=0.5))
