"""Benchmarks regenerating Table I (capabilities) and Table II (workloads)."""

import pytest

from repro.experiments import format_table1, format_table2, run_table1, run_table2

from conftest import run_once


def test_table1_capabilities(benchmark):
    """Table I: only LoAS supports dual sparsity with full temporal parallelism."""
    data = run_once(benchmark, run_table1)
    assert data["LoAS"]["weight_sparsity"] and data["LoAS"]["spike_sparsity"]
    assert data["LoAS"]["parallelism"] == "S+fully-T"
    assert not data["PTB"]["weight_sparsity"]
    print("\n" + format_table1())


def test_table2_workload_statistics(benchmark):
    """Table II: generated workloads reproduce the published sparsity numbers."""
    data = run_once(benchmark, run_table2, scale=0.5, seed=0)
    for layer in ("A-L4", "V-L8", "R-L19", "T-HFF"):
        stats = data[layer]
        assert stats["measured_spike_sparsity"] == pytest.approx(stats["target_spike_sparsity"], abs=0.02)
        assert stats["measured_silent_fraction"] == pytest.approx(stats["target_silent_fraction"], abs=0.02)
        assert stats["measured_weight_sparsity"] == pytest.approx(stats["target_weight_sparsity"], abs=0.01)
        assert stats["measured_silent_fraction_ft"] > stats["measured_silent_fraction"]
    print("\n" + format_table2(scale=0.5))
