"""Benchmark regenerating Table IV and Figure 15: area and power breakdown."""

import pytest

from repro.experiments import format_table4, run_table4

from conftest import run_once


def test_table4_and_fig15_area_power(benchmark):
    """Table IV / Figure 15: published component costs and power breakups."""
    data = run_once(benchmark, run_table4, num_tppes=16, timesteps=4)
    assert data["system_area_mm2"]["total"] == pytest.approx(2.08, abs=0.02)
    assert data["system_power_mw"]["total"] == pytest.approx(188.9, abs=0.5)
    assert data["system_power_fraction"]["global_cache"] == pytest.approx(0.659, abs=0.01)
    assert data["system_power_fraction"]["tppes"] == pytest.approx(0.239, abs=0.01)
    assert data["tppe_power_fraction"]["fast_prefix"] == pytest.approx(0.518, abs=0.01)
    assert data["tppe_power_fraction"]["laggy_prefix"] == pytest.approx(0.114, abs=0.01)
    assert data["tppe_area_mm2"]["fast_prefix"] == pytest.approx(0.04)
    print("\n" + format_table4())
