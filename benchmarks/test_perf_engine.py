"""Performance tracking for the evaluation engine and the sweep orchestrator.

Times the Figure 12/13 network sweep (``run_networks(scale=0.25, seed=1)``)
in four regimes and records the wall-clock numbers in ``BENCH_engine.json``
at the repository root, so the performance trajectory is tracked from the PR
that introduced the engine onward:

* **cold**  -- serial, empty caches: tensor generation + statistics +
  simulator cost models (with cross-simulator sharing),
* **warm**  -- serial, fully populated in-process LRU: pure cost models,
* **two-worker cold** -- empty caches, partitions spread over a 2-process
  pool by the :class:`~repro.runner.SweepRunner` (on a single-CPU host this
  only measures the pool overhead; the speedup assertion is gated on the
  available parallelism),
* **disk-warm** -- empty in-process LRU but a populated on-disk evaluation
  cache tier: tensor generation is replaced by ``.npz`` loads.
"""

from __future__ import annotations

import json
import os
import platform
import shutil
import tempfile
import time
from pathlib import Path

from repro.engine import clear_default_cache, default_cache
from repro.experiments.sweeps import run_networks

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def _time_run(**kwargs) -> float:
    start = time.perf_counter()
    run_networks(scale=0.25, seed=1, **kwargs)
    return time.perf_counter() - start


def test_perf_engine_cold_vs_warm():
    """Cold / warm / 2-worker / disk-warm sweep timing; writes BENCH_engine.json."""
    # Cold: nothing cached, every workload is generated and analysed once
    # (one extra throwaway run first so one-time process costs -- lazy
    # imports, BLAS thread-pool spin-up -- do not pollute the numbers).
    clear_default_cache()
    _time_run()
    clear_default_cache()
    cold_seconds = _time_run()
    cold_info = default_cache().cache_info()

    # Warm: every evaluation is served from the in-process cache.
    warm_seconds = _time_run()
    warm_info = default_cache().cache_info()

    # Two-worker cold: the orchestrator partitions the sweep by network and
    # runs the partitions in two worker processes, each starting cold.
    clear_default_cache()
    two_worker_cold_seconds = _time_run(workers=2)

    # Disk-warm: empty in-process LRU, populated on-disk tier -- tensor
    # generation is replaced by fingerprint-addressed .npz loads.
    tier_dir = tempfile.mkdtemp(prefix="bench-eval-cache-")
    try:
        clear_default_cache()
        from repro.experiments.sweeps import network_sweep_plan
        from repro.runner import SweepRunner

        runner = SweepRunner(cache_dir=tier_dir)
        plan = network_sweep_plan(scale=0.25, seed=1)
        runner.run(plan)  # populate the disk tier
        clear_default_cache()
        start = time.perf_counter()
        runner.run(plan)
        disk_warm_seconds = time.perf_counter() - start
    finally:
        shutil.rmtree(tier_dir, ignore_errors=True)

    record = {
        "benchmark": "run_networks(scale=0.25, seed=1)",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "usable_cpus": _usable_cpus(),
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "warm_speedup": round(cold_seconds / warm_seconds, 2) if warm_seconds else None,
        "two_worker_cold_seconds": round(two_worker_cold_seconds, 4),
        "two_worker_speedup": (
            round(cold_seconds / two_worker_cold_seconds, 2) if two_worker_cold_seconds else None
        ),
        "disk_warm_seconds": round(disk_warm_seconds, 4),
        "cold_cache": cold_info,
        "warm_cache": warm_info,
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(
        "\nBENCH_engine: cold %.3fs, warm %.3fs (%.0fx), 2-worker cold %.3fs, disk-warm %.3fs, written to %s"
        % (
            cold_seconds,
            warm_seconds,
            record["warm_speedup"] or 0.0,
            two_worker_cold_seconds,
            disk_warm_seconds,
            BENCH_PATH.name,
        )
    )

    # The warm path must skip all tensor generation and statistics work.
    assert warm_info["hits"] > cold_info["hits"]
    assert warm_seconds < cold_seconds
    # The 2-worker cold sweep must beat serial cold wherever there is any
    # parallelism to exploit; on a host scheduled onto a single CPU the pool
    # can only add overhead, so the record is written but the assertion is
    # skipped.  Scheduling affinity, not os.cpu_count(), is what bounds the
    # pool (cgroup quotas / taskset shrink it below the physical count).
    if _usable_cpus() >= 2:
        assert two_worker_cold_seconds < cold_seconds


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux platforms
        return os.cpu_count() or 1
