"""Performance tracking for the shared workload-evaluation engine.

Times the Figure 12/13 network sweep (``run_networks(scale=0.25, seed=1)``)
with a cold and a warm evaluation cache and records the wall-clock numbers
in ``BENCH_engine.json`` at the repository root, so the performance
trajectory of the engine is tracked from the PR that introduced it onward.

The cold run measures end-to-end evaluation (tensor generation + statistics
+ simulator cost models, with cross-simulator sharing); the warm run
measures the pure simulator cost models on a fully populated cache.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

from repro.engine import clear_default_cache, default_cache
from repro.experiments.sweeps import run_networks

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def _time_run() -> float:
    start = time.perf_counter()
    run_networks(scale=0.25, seed=1)
    return time.perf_counter() - start


def test_perf_engine_cold_vs_warm():
    """Cold-vs-warm sweep timing; writes BENCH_engine.json."""
    # Cold: nothing cached, every workload is generated and analysed once
    # (one extra throwaway run first so one-time process costs -- lazy
    # imports, BLAS thread-pool spin-up -- do not pollute the numbers).
    clear_default_cache()
    _time_run()
    clear_default_cache()
    cold_seconds = _time_run()
    cold_info = default_cache().cache_info()

    # Warm: every evaluation is served from the cache.
    warm_seconds = _time_run()
    warm_info = default_cache().cache_info()

    record = {
        "benchmark": "run_networks(scale=0.25, seed=1)",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "warm_speedup": round(cold_seconds / warm_seconds, 2) if warm_seconds else None,
        "cold_cache": cold_info,
        "warm_cache": warm_info,
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print("\nBENCH_engine: cold %.3fs, warm %.3fs (%.0fx), written to %s" % (
        cold_seconds, warm_seconds, record["warm_speedup"] or 0.0, BENCH_PATH.name,
    ))

    # The warm path must skip all tensor generation and statistics work.
    assert warm_info["hits"] > cold_info["hits"]
    assert warm_seconds < cold_seconds
