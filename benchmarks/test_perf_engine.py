"""Performance tracking for the evaluation engine and the cache tiers.

Times the Figure 12/13 network sweep (``run_networks(scale=0.25, seed=1)``)
in five regimes and records the wall-clock numbers in ``BENCH_engine.json``
at the repository root, so the performance trajectory is tracked from the PR
that introduced the engine onward:

* **cold**  -- serial, empty caches: tensor generation + statistics +
  simulator cost models (with cross-simulator sharing),
* **warm**  -- serial, fully populated in-process LRU: pure cost models,
* **two-worker cold** -- empty caches, partitions spread over a 2-process
  pool by the :class:`~repro.runner.SweepRunner`.  On a host scheduled onto
  a single CPU the pool can only add overhead, so the measurement itself is
  **skipped** (recorded as ``null`` plus a ``two_worker_skipped`` reason)
  rather than published as a misleading sub-1x "speedup",
* **disk-warm (tensors)** -- empty in-process LRU over a populated on-disk
  tier that stores tensors only (``store_derived=False``): generation is
  replaced by ``.npz`` loads but every statistics GEMM reruns,
* **disk-warm (v2 statistics entries)** -- the same over the default tier,
  whose entries carry the dehydrated derived artifacts (matches, full sums,
  compressions, preprocessed variants): loads replace the GEMM work too,
  which is what makes this regime approach the in-process warm path.
"""

from __future__ import annotations

import json
import os
import platform
import shutil
import tempfile
import time
from pathlib import Path

from repro.engine import DiskEvaluationCache, clear_default_cache, default_cache
from repro.experiments.sweeps import run_networks

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def _time_run(**kwargs) -> float:
    start = time.perf_counter()
    run_networks(scale=0.25, seed=1, **kwargs)
    return time.perf_counter() - start


def _time_disk_warm(tier: DiskEvaluationCache, samples: int = 3, populate: bool = True) -> float:
    """Populate ``tier`` from cold, then time a run served from it.

    The timed regime runs ``samples`` times and the minimum is recorded:
    entry loads are short (tens of milliseconds) and IO-bound, so a single
    sample is noise-dominated on a busy host, and the minimum is the
    standard noise-robust estimator for the regime's true cost.
    """
    from repro.experiments.sweeps import network_sweep_plan
    from repro.runner import SweepRunner

    runner = SweepRunner(cache_dir=tier)
    plan = network_sweep_plan(scale=0.25, seed=1)
    if populate:
        clear_default_cache()
        runner.run(plan)  # populate (and write-back-enrich) the disk tier
    timings = []
    for _ in range(samples):
        clear_default_cache()
        start = time.perf_counter()
        runner.run(plan)
        timings.append(time.perf_counter() - start)
    return min(timings)


def test_perf_engine_cold_vs_warm():
    """Cold / warm / pool / disk-warm sweep timing; writes BENCH_engine.json."""
    # Cold: nothing cached, every workload is generated and analysed once
    # (one extra throwaway run first so one-time process costs -- lazy
    # imports, BLAS thread-pool spin-up -- do not pollute the numbers).
    # Like the disk-warm regimes, cold is the minimum of two samples: the
    # headline ratios divide two short wall-clock windows, and a load
    # spike inside either window would record the host's scheduler, not
    # the engine.
    clear_default_cache()
    _time_run()
    clear_default_cache()
    cold_seconds = _time_run()
    cold_info = default_cache().cache_info()

    # Warm: every evaluation is served from the in-process cache.
    warm_seconds = _time_run()
    warm_info = default_cache().cache_info()

    clear_default_cache()
    cold_seconds = min(cold_seconds, _time_run())

    # Two-worker cold: the orchestrator partitions the sweep by network and
    # runs the partitions in two worker processes, each starting cold.  The
    # measurement is meaningless without at least two schedulable CPUs
    # (scheduling affinity, not os.cpu_count(), is what bounds the pool:
    # cgroup quotas / taskset shrink it below the physical count), so it is
    # skipped -- and marked as skipped -- on single-CPU hosts instead of
    # recording a pool-overhead number that reads like a slowdown.
    if _usable_cpus() >= 2:
        clear_default_cache()
        two_worker_cold_seconds = _time_run(workers=2)
        two_worker_skipped = None
    else:
        two_worker_cold_seconds = None
        two_worker_skipped = (
            "host schedules onto %d CPU(s); a 2-process pool would only "
            "measure its own overhead" % _usable_cpus()
        )

    # Disk-warm, twice: once over a tensor-only tier (the v1-era behaviour)
    # and once over the default tier with v2 statistics entries.
    tier_root = tempfile.mkdtemp(prefix="bench-eval-cache-")
    try:
        disk_warm_seconds = _time_disk_warm(
            DiskEvaluationCache(os.path.join(tier_root, "tensors"), store_derived=False)
        )
        stats_tier = DiskEvaluationCache(os.path.join(tier_root, "v2"))
        stats_disk_warm_seconds = _time_disk_warm(stats_tier)
        stats_tier_info = stats_tier.cache_info()
        # Both sides of the headline ratio are single-process wall-clock
        # measurements; a load spike during either window (CI neighbours,
        # the rest of the benchmark suite) skews the ratio, so when it
        # lands under the asserted bound, re-measure each side under the
        # current load before concluding the regime regressed.
        for _ in range(2):
            if stats_disk_warm_seconds * 5 <= cold_seconds:
                break
            clear_default_cache()
            cold_seconds = min(cold_seconds, _time_run())
            stats_disk_warm_seconds = min(
                stats_disk_warm_seconds, _time_disk_warm(stats_tier, populate=False)
            )
    finally:
        shutil.rmtree(tier_root, ignore_errors=True)

    record = {
        "benchmark": "run_networks(scale=0.25, seed=1)",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "usable_cpus": _usable_cpus(),
        "blas_pinned": _blas_pinned(),
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "warm_speedup": round(cold_seconds / warm_seconds, 2) if warm_seconds else None,
        "two_worker_cold_seconds": (
            round(two_worker_cold_seconds, 4) if two_worker_cold_seconds is not None else None
        ),
        "two_worker_speedup": (
            round(cold_seconds / two_worker_cold_seconds, 2)
            if two_worker_cold_seconds
            else None
        ),
        "two_worker_skipped": two_worker_skipped,
        "disk_warm_seconds": round(disk_warm_seconds, 4),
        "stats_disk_warm_seconds": round(stats_disk_warm_seconds, 4),
        "stats_disk_warm_speedup": (
            round(cold_seconds / stats_disk_warm_seconds, 2)
            if stats_disk_warm_seconds
            else None
        ),
        "cold_cache": cold_info,
        "warm_cache": warm_info,
        "stats_disk_tier": stats_tier_info,
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(
        "\nBENCH_engine: cold %.3fs, warm %.3fs (%.0fx), 2-worker cold %s, "
        "disk-warm %.3fs (tensors) / %.3fs (v2 stats), written to %s"
        % (
            cold_seconds,
            warm_seconds,
            record["warm_speedup"] or 0.0,
            "%.3fs" % two_worker_cold_seconds if two_worker_cold_seconds else "skipped",
            disk_warm_seconds,
            stats_disk_warm_seconds,
            BENCH_PATH.name,
        )
    )

    # The warm path must skip all tensor generation and statistics work.
    assert warm_info["hits"] > cold_info["hits"]
    assert warm_seconds < cold_seconds
    # The 2-worker cold sweep must beat serial cold wherever there is any
    # parallelism to exploit (the measurement is skipped entirely above
    # when there is none).
    if two_worker_cold_seconds is not None:
        assert two_worker_cold_seconds < cold_seconds
    # The v2 entries must serve the derived statistics, not just tensors:
    # every disk hit of the timed run skips the matches/full-sums GEMMs, so
    # disk-warm must sit much closer to LRU-warm than to cold.
    assert stats_tier_info["refreshes"] > 0  # write-back enrichment happened
    assert stats_disk_warm_seconds * 5 <= cold_seconds
    assert stats_disk_warm_seconds < disk_warm_seconds


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux platforms
        return os.cpu_count() or 1


def _blas_pinned() -> bool:
    """Whether the single-thread BLAS pin (see ``conftest.py``) held.

    ``False`` labels the recorded ratios as potentially thread-count
    dependent (the conftest pin is a no-op when numpy was imported before
    it, and external env settings may allow multiple threads).
    """
    return os.environ.get("REPRO_BENCH_BLAS_PINNABLE") == "1" and all(
        os.environ.get(variable) == "1"
        for variable in (
            "OMP_NUM_THREADS",
            "OPENBLAS_NUM_THREADS",
            "MKL_NUM_THREADS",
            "NUMEXPR_NUM_THREADS",
        )
    )
