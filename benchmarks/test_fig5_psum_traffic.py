"""Benchmark regenerating Figure 5: GoSPA psum off-chip traffic, T=1 vs T=4."""

from repro.experiments import format_fig5, run_fig5

from conftest import run_once


def test_fig5_psum_traffic(benchmark):
    """Four timesteps induce roughly 4x the partial-sum off-chip traffic."""
    data = run_once(benchmark, run_fig5, layers=("A-L4", "V-L8", "R-L19"), scale=1.0)
    for layer, series in data.items():
        assert series["T=4"] > series["T=1"], layer
        if series["T=1"] > 0:
            assert series["T=4"] / series["T=1"] >= 3.0, layer
    print("\n" + format_fig5(scale=1.0))
