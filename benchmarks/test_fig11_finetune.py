"""Benchmark regenerating Figure 11: fine-tuned preprocessing accuracy."""

from repro.experiments import format_fig11, run_fig11

from conftest import run_once


def test_fig11_finetuned_preprocessing(benchmark):
    """Masking costs accuracy; a few fine-tuning epochs recover it."""
    data = run_once(
        benchmark,
        run_fig11,
        num_samples=400,
        num_features=32,
        num_classes=4,
        hidden=64,
        epochs=12,
        finetune_epochs=(1, 5, 10),
        seed=0,
    )
    assert data["mask"] <= data["origin"] + 1e-9
    assert data["ft_e10"] >= data["mask"] - 0.02
    assert data["ft_e10"] >= data["origin"] - 0.10
    assert data["ft_e10"] >= data["ft_e1"] - 0.05
    print("\n" + format_fig11())
