"""Benchmark regenerating Figure 14: off-chip traffic breakdown per layer."""

import pytest

from repro.experiments import format_fig14, run_fig14

from conftest import run_once


def test_fig14_traffic_breakdown(benchmark):
    """Figure 14: per-category off-chip traffic on A-L4, V-L8 and R-L19."""
    data = run_once(benchmark, run_fig14, layers=("A-L4", "V-L8", "R-L19"), scale=1.0, seed=1)
    for layer, per_accel in data.items():
        assert per_accel["LoAS"]["total"] == pytest.approx(1.0)
        # SparTen-SNN fetches the dense spike trains, so its input traffic
        # exceeds LoAS's packed fetch on every layer.
        assert per_accel["SparTen-SNN"]["input"] > per_accel["LoAS"]["input"], layer
        # GoSPA's per-spike CSR coordinates dominate its format traffic.
        assert per_accel["GoSPA-SNN"]["format"] > 0, layer
        # Only the outer-product baseline spills partial sums off chip.
        assert per_accel["GoSPA-SNN"]["psum"] >= per_accel["LoAS"]["psum"], layer
        assert per_accel["LoAS"]["psum"] == 0.0
    print("\n" + format_fig14(scale=1.0))
