"""Benchmarks regenerating Figures 18 and 19: SNN-vs-ANN and dense baselines."""

from repro.experiments import format_fig18, format_fig19, run_fig18, run_fig19

from conftest import run_once


def test_fig18_snn_vs_ann(benchmark):
    """Figure 18: the dual-sparse SNN on LoAS beats the dual-sparse ANN baselines."""
    data = run_once(benchmark, run_fig18, network="vgg16", scale=1.0, seed=1)
    loas = data["LoAS (SNN)"]
    sparten_ann = data["SparTen-ANN (ANN)"]
    gamma_ann = data["Gamma-ANN (ANN)"]
    # Paper: ~2.5x more efficient than SparTen-ANN; our model reproduces the
    # direction with a smaller margin.
    assert sparten_ann["normalized_energy"] > 1.0
    # Paper: ~1.2x vs Gamma-ANN -- a near tie.  Our FiberCache model
    # undercounts Gamma's on-chip traffic in the ANN setting, so the
    # comparison lands at rough parity (see EXPERIMENTS.md).
    assert gamma_ann["normalized_energy"] > 0.6
    # The SNN's unary, packed activations move less data than 8-bit ANN
    # activations on the inner-product baseline; Gamma-ANN's Gustavson
    # dataflow keeps its DRAM below LoAS, as in the paper.
    assert sparten_ann["normalized_dram"] > 1.0
    assert gamma_ann["normalized_dram"] < 1.0
    # A large share of energy goes to data movement for every design.
    assert loas["data_movement_fraction"] > 0.5
    print("\n" + format_fig18(scale=1.0))


def test_fig19_dense_snn_baselines(benchmark):
    """Figure 19: LoAS holds a large advantage over dense PTB and Stellar."""
    data = run_once(benchmark, run_fig19, network="vgg16", scale=0.5, seed=1)
    loas = data["LoAS"]
    ptb = data["PTB"]
    stellar = data["Stellar"]
    # LoAS speedup over PTB is tens of x; Stellar sits in between.
    assert loas["speedup_vs_ptb"] > 10.0
    assert 1.0 < stellar["speedup_vs_ptb"] < loas["speedup_vs_ptb"]
    # Dense designs pay more energy and traffic.
    assert ptb["normalized_energy"] > 2.0
    assert stellar["normalized_energy"] > 1.5
    assert ptb["normalized_dram"] > 1.0
    assert ptb["normalized_sram"] > 1.0
    print("\n" + format_fig19(scale=0.5))
