"""Dataflow exploration: why the temporal loop belongs at the innermost position.

Run with::

    python examples/dataflow_exploration.py

The script reproduces the Section III analysis: for each base spMspM dataflow
(inner product, outer product, Gustavson) it enumerates every placement of
the timestep loop and reports operand re-fetch factors, partial-sum counts
and sequential latency, showing why the FTP choice (inner product, ``t``
innermost and spatially unrolled) is the only placement that avoids every
penalty.  It also quantifies the compression argument of Figure 8.
"""

from __future__ import annotations

import numpy as np

from repro.dataflow import best_placement, enumerate_t_placements
from repro.metrics import format_table
from repro.snn.workloads import get_layer_workload
from repro.sparse import PackedSpikeMatrix, csr_storage_bits_for_spikes


def main() -> None:
    bounds = {"m": 64, "n": 256, "k": 3456, "t": 4}  # the A-L4 layer shape
    print("Temporal-placement analysis on the A-L4 layer shape")
    for dataflow in ("IP", "OP", "Gust"):
        rows = []
        for placement in enumerate_t_placements(dataflow, bounds):
            rows.append(
                [
                    "->".join(placement.order) + (" (parallel t)" if placement.t_spatial else ""),
                    f"{placement.a_refetch:.0f}",
                    f"{placement.b_refetch:.0f}",
                    f"{placement.partial_sums:,}",
                    f"{placement.latency_iterations:,}",
                ]
            )
        print()
        print(
            format_table(
                ["Loop order", "A refetch", "B refetch", "Partial sums", "Sequential iterations"],
                rows,
                title=f"{dataflow} dataflow",
            )
        )

    ftp = best_placement(bounds)
    print(f"\nFTP choice: {'->'.join(ftp.order)} with t spatially unrolled "
          f"(A refetch {ftp.a_refetch:.0f}, B refetch {ftp.b_refetch:.0f}, "
          f"{ftp.latency_iterations:,} sequential iterations)\n")

    # Compression argument of Figure 8: packed-temporal vs per-timestep CSR.
    workload = get_layer_workload("A-L4").scaled(0.5)
    spikes, _ = workload.generate(rng=np.random.default_rng(0))
    packed = PackedSpikeMatrix.from_dense(spikes)
    csr_bits = csr_storage_bits_for_spikes(spikes)
    print("Spike compression on a half-scale A-L4 spike tensor:")
    print(f"  dense unary storage : {packed.dense_bits() / 8e3:.1f} KB")
    print(f"  per-timestep CSR    : {csr_bits / 8e3:.1f} KB")
    print(f"  packed (LoAS)       : {packed.storage_bits() / 8e3:.1f} KB "
          f"(silent neurons: {packed.silent_fraction:.1%}, "
          f"compression efficiency: {packed.compression_efficiency():.2f} spikes/bit)")


if __name__ == "__main__":
    main()
