"""Design-space exploration: loop placements, then hardware design points.

Run with::

    python examples/dataflow_exploration.py

Part 1 reproduces the Section III analysis: for each base spMspM dataflow
(inner product, outer product, Gustavson) it enumerates every placement of
the timestep loop and reports operand re-fetch factors, partial-sum counts
and sequential latency, showing why the FTP choice (inner product, ``t``
innermost and spatially unrolled) is the only placement that avoids every
penalty.

Part 2 quantifies the compression argument of Figure 8: packed-temporal
storage versus per-timestep CSR versus dense unary storage on a real spike
tensor.

Part 3 explores the *hardware* axis the same way the figures explore the
workload axis: the registered ``dse-*`` scenarios sweep
:class:`repro.arch.ArchSpec` design points -- TPPE counts, global-SRAM
capacities and timestep provisioning -- through the public
:class:`repro.api.Session`.  Because design points are pure cost parameters,
every point of a sweep reuses one cached workload evaluation per layer (the
sweeps below evaluate their layer exactly once, however many points they
price).
"""

from __future__ import annotations

from repro.api import Session
from repro.dataflow import best_placement, enumerate_t_placements
from repro.metrics import format_table


def temporal_placement_analysis() -> None:
    bounds = {"m": 64, "n": 256, "k": 3456, "t": 4}  # the A-L4 layer shape
    print("Temporal-placement analysis on the A-L4 layer shape")
    for dataflow in ("IP", "OP", "Gust"):
        rows = []
        for placement in enumerate_t_placements(dataflow, bounds):
            rows.append(
                [
                    "->".join(placement.order) + (" (parallel t)" if placement.t_spatial else ""),
                    f"{placement.a_refetch:.0f}",
                    f"{placement.b_refetch:.0f}",
                    f"{placement.partial_sums:,}",
                    f"{placement.latency_iterations:,}",
                ]
            )
        print()
        print(
            format_table(
                ["Loop order", "A refetch", "B refetch", "Partial sums", "Sequential iterations"],
                rows,
                title=f"{dataflow} dataflow",
            )
        )

    ftp = best_placement(bounds)
    print(f"\nFTP choice: {'->'.join(ftp.order)} with t spatially unrolled "
          f"(A refetch {ftp.a_refetch:.0f}, B refetch {ftp.b_refetch:.0f}, "
          f"{ftp.latency_iterations:,} sequential iterations)\n")


def compression_argument() -> None:
    # Compression argument of Figure 8: packed-temporal vs per-timestep CSR.
    import numpy as np

    from repro.snn.workloads import get_layer_workload
    from repro.sparse import PackedSpikeMatrix, csr_storage_bits_for_spikes

    workload = get_layer_workload("A-L4").scaled(0.5)
    spikes, _ = workload.generate(rng=np.random.default_rng(0))
    packed = PackedSpikeMatrix.from_dense(spikes)
    csr_bits = csr_storage_bits_for_spikes(spikes)
    print("Spike compression on a half-scale A-L4 spike tensor:")
    print(f"  dense unary storage : {packed.dense_bits() / 8e3:.1f} KB")
    print(f"  per-timestep CSR    : {csr_bits / 8e3:.1f} KB")
    print(f"  packed (LoAS)       : {packed.storage_bits() / 8e3:.1f} KB "
          f"(silent neurons: {packed.silent_fraction:.1%}, "
          f"compression efficiency: {packed.compression_efficiency():.2f} spikes/bit)")
    print()


def design_point_exploration(session: Session) -> None:
    print("Hardware design-space exploration (ArchSpec sweeps)")

    pe = session.run("dse-pe-scaling")
    rows = [
        [point, f"{row['cycles']:,.0f}", f"{row['speedup_vs_first']:.2f}x",
         f"{row['energy_pj'] / 1e6:.2f}"]
        for point, row in pe.payload.items()
    ]
    print()
    print(format_table(
        ["Design point", "Cycles", "Speedup vs smallest", "Energy (uJ)"],
        rows,
        title="dse-pe-scaling: LoAS across TPPE counts",
    ))

    sram = session.run("dse-sram-sweep")
    simulators = list(next(iter(sram.payload.values())))
    rows = [
        [point] + [f"{per_sim[name]['offchip_kb']:.1f}" for name in simulators]
        for point, per_sim in sram.payload.items()
    ]
    print()
    print(format_table(
        ["Design point"] + [f"{name} off-chip KB" for name in simulators],
        rows,
        title="dse-sram-sweep: off-chip traffic across SRAM capacities",
    ))

    ablation = session.run("dse-timestep-ablation")
    rows = [
        [point, f"{row['relative_performance']:.3f}",
         f"{row['tppe_area_ratio']:.2f}x", f"{row['tppe_power_ratio']:.2f}x"]
        for point, row in ablation.payload.items()
    ]
    print()
    print(format_table(
        ["Design point", "Relative performance", "TPPE area", "TPPE power"],
        rows,
        title="dse-timestep-ablation: the paper's timestep ablation on the arch axis",
    ))

    cache = pe.provenance["cache"]
    print(
        "\nPure-cost sweep economics: the PE sweep priced %d design points "
        "from %d workload evaluation(s)."
        % (len(pe.payload), cache["lru_misses"] + cache["lru_hits"])
    )


def main() -> None:
    temporal_placement_analysis()
    compression_argument()
    # No session-level scale override: the dse scenarios default to the
    # half-scale A-L4 layer, large enough for the SRAM capacity points to
    # actually engage the refetch/spill penalties.
    design_point_exploration(Session())


if __name__ == "__main__":
    main()
