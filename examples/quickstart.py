"""Quickstart: simulate one dual-sparse SNN layer on LoAS and the baselines.

Run with::

    python examples/quickstart.py

The script generates the V-L8 representative layer from Table II of the
paper, verifies the functional FTP dataflow against the dense reference, and
then compares LoAS against the three dual-sparse SNN baselines on cycles,
memory traffic and energy.
"""

from __future__ import annotations

import numpy as np

from repro import LoASSimulator, get_layer_workload
from repro.baselines import GammaSNN, GoSPASNN, SparTenSNN
from repro.metrics import format_table
from repro.snn.layers import spmspm_reference
from repro.snn.lif import lif_fire


def main() -> None:
    workload = get_layer_workload("V-L8")
    rng = np.random.default_rng(0)
    spikes, weights = workload.generate(rng=rng)
    print(f"Workload {workload.name}: M={workload.shape.m} K={workload.shape.k} "
          f"N={workload.shape.n} T={workload.shape.t}")

    # Functional check of the FTP dataflow on a small slice of the layer.
    loas = LoASSimulator()
    slice_output = loas.run_functional(spikes[:4, :256], weights[:256, :16])
    reference = lif_fire(spmspm_reference(spikes[:4, :256], weights[:256, :16]), loas.lif)
    assert np.array_equal(slice_output.spikes, reference)
    print("FTP dataflow matches the dense LIF reference on a sample slice.\n")

    simulators = [loas, SparTenSNN(), GoSPASNN(), GammaSNN()]
    results = [sim.simulate_layer(spikes, weights, name=workload.name) for sim in simulators]
    reference_result = results[1]  # SparTen-SNN, the paper's normalisation point

    rows = []
    for result in results:
        rows.append(
            [
                result.accelerator,
                f"{result.cycles:,.0f}",
                f"{reference_result.cycles / result.cycles:.2f}x",
                f"{result.dram_bytes / 1e3:.1f}",
                f"{result.sram_bytes / 1e6:.2f}",
                f"{result.energy_pj / 1e6:.1f}",
            ]
        )
    print(
        format_table(
            ["Accelerator", "Cycles", "Speedup vs SparTen-SNN", "DRAM (KB)", "SRAM (MB)", "Energy (uJ)"],
            rows,
            title="V-L8 on LoAS and the dual-sparse SNN baselines",
        )
    )


if __name__ == "__main__":
    main()
