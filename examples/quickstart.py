"""Quickstart: the public API in one sitting -- Session, run, stream, JSON.

Run with::

    python examples/quickstart.py

The script configures one :class:`repro.Session`, checks the functional FTP
dataflow against the dense LIF reference, runs the representative-layer
sweep (Figure 14's workloads) through ``session.run``, streams the Figure 13
traffic sweep partition by partition, and round-trips a result record
through the versioned JSON schema.
"""

from __future__ import annotations

import numpy as np

from repro import LoASSimulator, ScenarioResult, Session, get_layer_workload
from repro.metrics import format_table
from repro.snn.layers import spmspm_reference
from repro.snn.lif import lif_fire


def main() -> None:
    # One Session owns the policy every call below shares: workload scale,
    # worker-pool size and (optionally) the on-disk evaluation-cache tier.
    session = Session(scale=0.25, workers=2)

    # Functional check of the FTP dataflow on a small slice of V-L8.
    workload = get_layer_workload("V-L8")
    spikes, weights = workload.generate(rng=np.random.default_rng(0))
    loas = LoASSimulator()
    slice_output = loas.run_functional(spikes[:4, :256], weights[:256, :16])
    reference = lif_fire(spmspm_reference(spikes[:4, :256], weights[:256, :16]), loas.lif)
    assert np.array_equal(slice_output.spikes, reference)
    print("FTP dataflow matches the dense LIF reference on a sample slice.\n")

    # Batch mode: one call, a typed result record with provenance.
    result = session.run("layers", layers=("V-L8",), seed=1)
    per_accel = result.payload["V-L8"]
    reference_result = per_accel["SparTen-SNN"]  # the paper's normalisation point
    rows = [
        [
            name,
            f"{res.cycles:,.0f}",
            f"{reference_result.cycles / res.cycles:.2f}x",
            f"{res.dram_bytes / 1e3:.1f}",
            f"{res.sram_bytes / 1e6:.2f}",
            f"{res.energy_pj / 1e6:.1f}",
        ]
        for name, res in per_accel.items()
    ]
    print(
        format_table(
            ["Accelerator", "Cycles", "Speedup vs SparTen-SNN", "DRAM (KB)", "SRAM (MB)", "Energy (uJ)"],
            rows,
            title="V-L8 on LoAS and the dual-sparse SNN baselines",
        )
    )
    print(f"\nProvenance: repro {result.provenance['package_version']}, "
          f"seeds {result.provenance['seeds']}, cache {result.provenance['cache']}")

    # Streaming mode: partitions arrive as the runner completes them; the
    # merged result is bit-identical to the batch call.
    print("\nStreaming the Figure 13 traffic sweep:")
    stream = session.stream("fig13-traffic", networks=("alexnet", "vgg16"), seed=1)
    for done, partition in enumerate(stream, start=1):
        # Partitions arrive in completion order over a pool; count arrivals
        # rather than printing partition.index (the stable plan position).
        print(f"  [{done}/{partition.total}] {partition.workload_label} "
              f"@ seed {partition.seed}: {', '.join(partition.simulator_labels)}")
    merged = stream.result

    # Every record serialises under a versioned schema and decodes back
    # to an equal record -- SimulationResults included.
    decoded = ScenarioResult.from_json(merged.to_json())
    assert decoded == merged
    print("\nScenarioResult JSON round-trip OK; "
          f"alexnet LoAS off-chip traffic: {merged.payload['alexnet']['LoAS']['offchip_kb']:.1f} KB")


if __name__ == "__main__":
    main()
