"""Full-network comparison: regenerate the Figure 12 / 13 sweep for one network.

Run with::

    python examples/full_network_comparison.py [alexnet|vgg16|resnet19] [scale]

The script simulates the chosen Table II network on LoAS (with and without
the fine-tuned preprocessing) and on the SparTen / GoSPA / Gamma "-SNN"
baselines, printing speedups, energy efficiency and memory traffic exactly as
the paper's overall-performance figures report them.
"""

from __future__ import annotations

import sys

import numpy as np

from repro import LoASSimulator, get_network_workload
from repro.baselines import GammaSNN, GoSPASNN, SparTenSNN
from repro.metrics import format_table


def main() -> None:
    network_name = sys.argv[1] if len(sys.argv) > 1 else "vgg16"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 1.0
    network = get_network_workload(network_name)
    if scale != 1.0:
        network = network.scaled(scale)
    print(f"Simulating {network_name} ({network.num_layers} layers, scale={scale}) ...\n")

    simulators = {
        "SparTen-SNN": SparTenSNN(),
        "GoSPA-SNN": GoSPASNN(),
        "Gamma-SNN": GammaSNN(),
        "LoAS": LoASSimulator(),
    }
    results = {
        name: sim.simulate_network(network, rng=np.random.default_rng(1))
        for name, sim in simulators.items()
    }
    results["LoAS-FT"] = LoASSimulator().simulate_network(
        network, rng=np.random.default_rng(1), finetuned=True, preprocess=True
    )

    reference = results["SparTen-SNN"]
    rows = []
    for name, result in results.items():
        rows.append(
            [
                name,
                f"{reference.cycles / result.cycles:.2f}x",
                f"{reference.energy_pj / result.energy_pj:.2f}x",
                f"{result.dram_bytes / 1e6:.2f}",
                f"{result.sram_bytes / 1e6:.1f}",
                f"{result.runtime_seconds() * 1e3:.3f}",
            ]
        )
    print(
        format_table(
            ["Accelerator", "Speedup", "Energy eff.", "DRAM (MB)", "SRAM (MB)", "Runtime (ms)"],
            rows,
            title=f"{network_name}: normalised to SparTen-SNN (Figure 12 / 13 style)",
        )
    )


if __name__ == "__main__":
    main()
