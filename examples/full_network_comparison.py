"""Full-network comparison: regenerate the Figure 12 / 13 sweep for one network.

Run with::

    python examples/full_network_comparison.py [alexnet|vgg16|resnet19] [scale] [workers]

The script drives the public API (``repro.Session``) over the chosen
Table II network: LoAS (with and without the fine-tuned preprocessing) and
the SparTen / GoSPA / Gamma "-SNN" baselines, printing speedups, energy
efficiency and memory traffic exactly as the paper's overall-performance
figures report them.  Each layer is evaluated once and shared by every
simulator; pass ``workers >= 2`` to spread independent sweep cells over a
process pool (results are bit-identical to the serial run).
"""

from __future__ import annotations

import sys

from repro import Session
from repro.metrics import format_table


def main() -> None:
    network_name = sys.argv[1] if len(sys.argv) > 1 else "vgg16"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 1.0
    workers = int(sys.argv[3]) if len(sys.argv) > 3 else None
    print(
        f"Simulating {network_name} (scale={scale}, "
        f"{'serial' if not workers or workers < 2 else f'{workers} workers'}) ...\n"
    )

    session = Session(workers=workers, scale=scale)
    results = session.run("networks", networks=(network_name,), seed=1).payload[network_name]

    reference = results["SparTen-SNN"]
    rows = []
    for name, result in results.items():
        rows.append(
            [
                name,
                f"{reference.cycles / result.cycles:.2f}x",
                f"{reference.energy_pj / result.energy_pj:.2f}x",
                f"{result.dram_bytes / 1e6:.2f}",
                f"{result.sram_bytes / 1e6:.1f}",
                f"{result.runtime_seconds() * 1e3:.3f}",
            ]
        )
    print(
        format_table(
            ["Accelerator", "Speedup", "Energy eff.", "DRAM (MB)", "SRAM (MB)", "Runtime (ms)"],
            rows,
            title=f"{network_name}: normalised to SparTen-SNN (Figure 12 / 13 style)",
        )
    )


if __name__ == "__main__":
    main()
