"""End-to-end algorithm/hardware pipeline on a toy task.

Run with::

    python examples/train_prune_accelerate.py

The script walks the full pipeline the paper assumes on the algorithm side,
at laptop scale:

1. train a small spiking MLP with surrogate-gradient BPTT on synthetic data,
2. prune it with lottery-ticket iterative magnitude pruning,
3. apply the fine-tuned silent-neuron preprocessing (Figure 11),
4. export the resulting dual-sparse layer (spikes + pruned weights) and
   simulate it on LoAS versus SparTen-SNN.
"""

from __future__ import annotations

import numpy as np

from repro import LoASSimulator
from repro.baselines import SparTenSNN
from repro.metrics import format_table
from repro.snn.preprocessing import finetuned_preprocessing_experiment
from repro.snn.pruning import PruningConfig, lottery_ticket_prune, weight_sparsity
from repro.snn.training import SpikingMLP, TrainingConfig, make_synthetic_classification
from repro.sparse.matrix import silent_neuron_fraction


def main() -> None:
    rng = np.random.default_rng(7)
    inputs, labels = make_synthetic_classification(500, 48, 4, rng=rng)
    split = 400
    model = SpikingMLP([48, 96, 4], timesteps=4, rng=rng)

    print("Step 1-2: train + lottery-ticket pruning")
    history = lottery_ticket_prune(
        model,
        inputs[:split],
        labels[:split],
        PruningConfig(rounds=3, prune_fraction=0.5, training=TrainingConfig(epochs=6, learning_rate=0.1)),
        rng=rng,
    )
    rows = [[h.round_index, f"{h.weight_sparsity:.1%}", f"{h.accuracy:.1%}"] for h in history]
    print(format_table(["Round", "Weight sparsity", "Train accuracy"], rows))
    print(f"Final weight sparsity: {weight_sparsity(model):.1%}\n")

    print("Step 3: fine-tuned silent-neuron preprocessing (Figure 11 style)")
    outcome = finetuned_preprocessing_experiment(
        model, inputs[:split], labels[:split], inputs[split:], labels[split:],
        finetune_epochs=(1, 5), training=TrainingConfig(epochs=1, learning_rate=0.05), rng=rng,
    )
    print(f"  accuracy original={outcome.original_accuracy:.1%} "
          f"masked={outcome.masked_accuracy:.1%} "
          f"fine-tuned(5)={outcome.finetuned_accuracy[5]:.1%} "
          f"(masked {outcome.masked_fraction:.1%} of hidden neurons)\n")

    print("Step 4: export the hidden layer as a dual-sparse workload and accelerate it")
    # Input spikes of the hidden layer: the input currents presented over T
    # timesteps, thresholded by the first LIF population.
    logits, trace = model.forward(inputs[split:], record=True)
    hidden_spikes = np.stack(trace["spikes"][0], axis=-1).astype(np.uint8)  # (M, hidden, T)
    pruned_weights = np.round(model.effective_weights()[1] * 32).astype(np.int32)  # (hidden, classes)
    print(f"  spike tensor {hidden_spikes.shape}, silent neurons "
          f"{silent_neuron_fraction(hidden_spikes):.1%}, weight sparsity "
          f"{1.0 - np.count_nonzero(pruned_weights) / pruned_weights.size:.1%}")

    loas = LoASSimulator().simulate_layer(hidden_spikes, pruned_weights, name="toy-hidden")
    sparten = SparTenSNN().simulate_layer(hidden_spikes, pruned_weights, name="toy-hidden")
    rows = [
        ["LoAS", f"{loas.cycles:,.0f}", f"{loas.energy_pj/1e3:.1f}"],
        ["SparTen-SNN", f"{sparten.cycles:,.0f}", f"{sparten.energy_pj/1e3:.1f}"],
    ]
    print(format_table(["Accelerator", "Cycles", "Energy (nJ)"], rows))
    print(f"  LoAS speedup over SparTen-SNN: {loas.speedup_over(sparten):.2f}x")


if __name__ == "__main__":
    main()
