"""The ArchSpec layer: addressing, presets, the LoASConfig view, arch-axis
plans, evaluation-cache sharing across design points, and bit-identity of the
refactored consumers."""

import pickle

import numpy as np
import pytest

from repro.api import Session
from repro.arch import (
    ARCH_PRESETS,
    ArchSpec,
    AreaSpec,
    BaselineSpec,
    ComponentCost,
    DEFAULT_ARCH,
    MemorySpec,
    PESpec,
    arch_label,
    default_arch,
    get_arch_spec,
    list_arch_presets,
    register_arch_preset,
    resolve_arch,
    tppe_cost,
    tppe_power_breakdown,
)
from repro.core import LoASConfig, LoASSimulator
from repro.engine import (
    TENSOR_COUPLED_ARCH_FIELDS,
    arch_tensor_fingerprint,
    clear_default_cache,
    default_cache,
)
from repro.experiments.dse import dse_pe_plan, dse_sram_plan, dse_timestep_plan
from repro.runner import SimulatorSpec, SweepPlan, SweepRunner, WorkloadSpec


class TestArchSpecAddressing:
    def test_default_matches_table3(self):
        spec = default_arch()
        assert spec.name == DEFAULT_ARCH == "loas-32nm"
        assert spec.pe.num_tppes == 16
        assert spec.pe.timesteps == 4
        assert spec.memory.global_cache_bytes == 256 * 1024
        assert spec.memory.dram_bandwidth_gbps == 128.0
        assert spec.clock_ghz == 0.8
        assert spec.energy.dram_per_byte == 60.0

    def test_dotted_overrides(self):
        spec = default_arch().with_overrides(**{
            "pe.num_tppes": 32,
            "memory.global_cache_bytes": 512 * 1024,
            "energy.dram_per_byte": 48.0,
            "baseline.merger_radix": 32,
            "clock_ghz": 1.0,
        })
        assert spec.pe.num_tppes == 32
        assert spec.memory.global_cache_bytes == 512 * 1024
        assert spec.energy.dram_per_byte == 48.0
        assert spec.baseline.merger_radix == 32
        assert spec.clock_ghz == 1.0
        # the original is untouched (frozen copy semantics)
        assert default_arch().pe.num_tppes == 16

    def test_bare_names_resolve_across_groups(self):
        spec = default_arch().with_overrides(num_tppes=8, dram_per_byte=10.0)
        assert spec.pe.num_tppes == 8
        assert spec.energy.dram_per_byte == 10.0

    def test_whole_group_replacement(self):
        pe = PESpec(num_tppes=64)
        spec = default_arch().with_overrides(pe=pe)
        assert spec.pe is pe

    def test_whole_group_replacement_rejects_non_spec_values(self):
        # ``pe=8`` (user means pe.num_tppes) must fail at the override
        # site, not deep inside simulator construction.
        with pytest.raises(TypeError, match="replacing arch group 'pe'"):
            default_arch().with_overrides(pe=8)

    def test_unknown_keys_rejected(self):
        with pytest.raises(KeyError):
            default_arch().with_overrides(**{"pe.no_such_field": 1})
        with pytest.raises(KeyError):
            default_arch().with_overrides(**{"nosuchgroup.num_tppes": 1})
        with pytest.raises(KeyError):
            default_arch().with_overrides(no_such_field=1)

    def test_invalid_values_rejected_by_subspec(self):
        with pytest.raises(ValueError):
            default_arch().with_overrides(**{"pe.num_tppes": 0})
        with pytest.raises(ValueError):
            default_arch().with_overrides(**{"memory.cache_banks": 0})

    def test_get_and_flat_items_roundtrip(self):
        spec = default_arch()
        for path, value in spec.flat_items():
            assert spec.get(path) == value
        assert spec.get("pe.timesteps") == 4
        assert spec.get("num_tppes") == 16
        assert spec.get("pe") is spec.pe

    def test_hashable_and_picklable(self):
        spec = default_arch().with_overrides(**{"pe.num_tppes": 32})
        assert hash(spec) == hash(default_arch().with_overrides(**{"pe.num_tppes": 32}))
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_arch_label(self):
        assert arch_label("loas-32nm") == "loas-32nm"
        assert (
            arch_label("loas-32nm", (("pe.num_tppes", 8),))
            == "loas-32nm+pe.num_tppes=8"
        )


class TestPresets:
    def test_shipped_presets(self):
        names = list_arch_presets()
        assert "loas-32nm" in names
        assert "loas-32nm-small" in names
        assert "loas-32nm-large" in names
        assert get_arch_spec("loas-32nm-large").pe.num_tppes == 32

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            get_arch_spec("loas-7nm")

    def test_conflicting_registration_rejected(self):
        different = default_arch().with_overrides(**{"pe.num_tppes": 2})
        with pytest.raises(ValueError):
            register_arch_preset(different)
        # re-registering the identical spec is a no-op
        register_arch_preset(default_arch())
        assert ARCH_PRESETS[DEFAULT_ARCH] == default_arch()

    def test_resolve_arch_forms(self):
        assert resolve_arch() == default_arch()
        assert resolve_arch("loas-32nm-small").pe.num_tppes == 8
        spec = default_arch()
        assert resolve_arch(spec) is spec
        assert resolve_arch(None, {"pe.num_tppes": 2}).pe.num_tppes == 2
        with pytest.raises(TypeError):
            resolve_arch(42)


class TestLoASConfigView:
    def test_default_fields_match_table3(self):
        config = LoASConfig()
        assert config.num_tppes == 16
        assert config.timesteps == 4
        assert config.weight_bits == 8
        assert config.bitmask_chunk_bits == 128
        assert config.laggy_adders == 16
        assert config.global_cache_bytes == 256 * 1024
        assert config.cache_banks == 16
        assert config.clock_ghz == 0.8
        assert config.dram.bytes_per_cycle == pytest.approx(160.0)
        assert config.sram.bytes_per_cycle == pytest.approx(256.0)
        assert config.energy.dram_per_byte == 60.0

    def test_accepts_preset_name_and_spec(self):
        assert LoASConfig("loas-32nm-large").num_tppes == 32
        assert LoASConfig(get_arch_spec("loas-32nm-small")).num_tppes == 8

    def test_legacy_keyword_overrides(self):
        assert LoASConfig(timesteps=8).accumulators_per_tppe == 9
        assert LoASConfig(num_tppes=4).num_tppes == 4
        with pytest.raises(ValueError):
            LoASConfig(num_tppes=0)

    def test_legacy_model_kwargs(self):
        from repro.arch import DRAMModel, EnergyModel, SRAMModel

        assert LoASConfig(energy=EnergyModel(dram_per_byte=7.0)).energy.dram_per_byte == 7.0
        assert LoASConfig(dram=DRAMModel(64.0)).dram.bandwidth_gbps == 64.0
        config = LoASConfig(sram=SRAMModel(capacity_bytes=1024, num_banks=2))
        assert config.global_cache_bytes == 1024 and config.cache_banks == 2
        # The spec has one clock: a differently-clocked DRAMModel is rejected
        # loudly instead of being silently re-clocked.
        with pytest.raises(ValueError):
            LoASConfig(dram=DRAMModel(128.0, clock_ghz=1.6))
        # ... while matching the clock override explicitly is fine, and the
        # unified clock moves the DRAM service rate with it.
        config = LoASConfig(dram=DRAMModel(128.0, clock_ghz=1.6), clock_ghz=1.6)
        assert config.dram.bytes_per_cycle == pytest.approx(80.0)

    def test_equality_and_hash_follow_the_spec(self):
        assert LoASConfig() == LoASConfig(DEFAULT_ARCH)
        assert hash(LoASConfig()) == hash(LoASConfig(DEFAULT_ARCH))
        assert LoASConfig() != LoASConfig(num_tppes=4)

    def test_with_timesteps_only_touches_timesteps(self):
        config = LoASConfig(num_tppes=4).with_timesteps(8)
        assert config.timesteps == 8
        assert config.num_tppes == 4

    def test_simulator_accepts_spec_and_preset_name(self, tiny_workload):
        rng = np.random.default_rng(0)
        by_name = LoASSimulator("loas-32nm").simulate_workload(
            tiny_workload, rng=np.random.default_rng(0)
        )
        by_default = LoASSimulator().simulate_workload(tiny_workload, rng=rng)
        assert by_name.cycles == by_default.cycles
        assert by_name.energy_pj == by_default.energy_pj


class TestAreaSpecDriven:
    def test_default_area_matches_legacy_constants(self):
        from repro.arch import TPPE_COMPONENTS

        assert AreaSpec().tppe_table() == TPPE_COMPONENTS

    def test_custom_table_changes_costs(self):
        doubled = AreaSpec(
            tppe_components=tuple(
                (name, cost.scaled(2.0)) for name, cost in AreaSpec().tppe_components
            )
        )
        assert tppe_cost(4, area=doubled).area_mm2 == pytest.approx(
            2 * tppe_cost(4).area_mm2
        )
        # fractions are scale-invariant
        assert tppe_power_breakdown(area=doubled) == tppe_power_breakdown()


class TestArchAxisPlans:
    def test_axis_expands_simulators_with_labels(self):
        plan = dse_pe_plan(scale=0.05, pe_counts=(4, 8))
        assert len(plan.cells) == 2
        labels = [cell.simulator.label for cell in plan.cells]
        assert labels == [
            "LoAS@loas-32nm+pe.num_tppes=4",
            "LoAS@loas-32nm+pe.num_tppes=8",
        ]
        # pure-cost points share one (workload, seed) partition
        assert plan.partitions() == [[0, 1]]

    def test_axis_accepts_presets_and_specs(self):
        plan = SweepPlan.product(
            "p",
            (WorkloadSpec("layer", "V-L8", scale=0.05),),
            (SimulatorSpec("LoAS"),),
            archs=("loas-32nm-small", get_arch_spec("loas-32nm-large")),
        )
        built = [cell.simulator.build() for cell in plan.cells]
        assert [sim.config.num_tppes for sim in built] == [8, 32]

    def test_timestep_override_couples_the_workload(self):
        plan = dse_timestep_plan(scale=0.05, timesteps=(4, 8))
        assert [cell.workload.timesteps for cell in plan.cells] == [4, 8]
        assert [cell.simulator.build().config.timesteps for cell in plan.cells] == [4, 8]
        # distinct tensors -> distinct partitions
        assert plan.partitions() == [[0], [1]]

    def test_pure_cost_override_does_not_touch_the_workload(self):
        plan = dse_sram_plan(scale=0.05, capacities_kb=(16, 256), simulators=("LoAS",))
        assert all(cell.workload.timesteps is None for cell in plan.cells)
        assert plan.partitions() == [[0, 1]]

    def test_tensor_coupled_fields_and_fingerprint(self):
        assert TENSOR_COUPLED_ARCH_FIELDS == ("pe.timesteps",)
        small = get_arch_spec("loas-32nm-small")
        assert arch_tensor_fingerprint(default_arch()) == arch_tensor_fingerprint(small)
        ablated = default_arch().with_overrides(**{"pe.timesteps": 8})
        assert arch_tensor_fingerprint(ablated) != arch_tensor_fingerprint(default_arch())

    def test_simulator_spec_validates_arch(self):
        with pytest.raises(KeyError):
            SimulatorSpec("LoAS", arch="loas-7nm")
        with pytest.raises(TypeError):
            SimulatorSpec("LoAS", arch=42)

    def test_preset_names_resolve_at_declaration(self):
        # The cell carries the full design point, so spawn-context workers
        # (fresh interpreters without user-registered presets) never consult
        # the registry.
        spec = SimulatorSpec("LoAS", arch="loas-32nm-small")
        assert isinstance(spec.arch, ArchSpec)
        assert spec.arch == get_arch_spec("loas-32nm-small")
        assert pickle.loads(pickle.dumps(spec)).arch.pe.num_tppes == 8

    def test_coupling_detected_by_value_not_override_spelling(self):
        # A whole-group replacement moves pe.timesteps without a literal
        # "timesteps" key; the coupling must still trigger.
        plan = SweepPlan.product(
            "p",
            (WorkloadSpec("layer", "V-L8", scale=0.05),),
            (SimulatorSpec("LoAS"),),
            archs=(
                ("loas-32nm", ()),
                ("loas-32nm", (("pe", PESpec(timesteps=8)),)),
            ),
        )
        assert [cell.workload.timesteps for cell in plan.cells] == [4, 8]

    def test_heterogeneous_preset_timesteps_couple_every_point(self):
        # Presets that disagree on pe.timesteps make the axis a timestep
        # ablation even with no overrides at all.
        ablated = default_arch().with_overrides(name="t8-anon", **{"pe.timesteps": 8})
        plan = SweepPlan.product(
            "p",
            (WorkloadSpec("layer", "V-L8", scale=0.05),),
            (SimulatorSpec("LoAS"),),
            archs=("loas-32nm", ablated),
        )
        assert [cell.workload.timesteps for cell in plan.cells] == [4, 8]
        assert plan.partitions() == [[0], [1]]

    def test_homogeneous_axis_leaves_workload_timesteps_alone(self):
        # Running a T=4 workload on uniformly T=8-provisioned hardware stays
        # a pure-cost sweep: the workload's own timesteps are not touched.
        plan = SweepPlan.product(
            "p",
            (WorkloadSpec("layer", "V-L8", scale=0.05),),
            (SimulatorSpec("LoAS"),),
            archs=(
                ("loas-32nm", (("pe.timesteps", 8), ("pe.num_tppes", 4))),
                ("loas-32nm", (("pe.timesteps", 8), ("pe.num_tppes", 16))),
            ),
        )
        assert [cell.workload.timesteps for cell in plan.cells] == [8, 8]

    def test_colliding_point_labels_are_deduplicated(self):
        # Distinct derived specs share their preset's name; labels must not
        # collapse (nested() would raise / shapers would drop points).
        points = (
            default_arch().with_overrides(**{"pe.num_tppes": 8}),
            default_arch().with_overrides(**{"pe.num_tppes": 32}),
        )
        plan = SweepPlan.product(
            "p",
            (WorkloadSpec("layer", "V-L8", scale=0.05),),
            (SimulatorSpec("LoAS"),),
            archs=points,
        )
        labels = [cell.simulator.label for cell in plan.cells]
        assert len(set(labels)) == 2
        results = SweepRunner().run(plan)
        assert set(results.nested()["V-L8"]) == set(labels)


class TestEvaluationSharingAcrossDesignPoints:
    """Acceptance: a pure-cost arch sweep over N design points performs
    exactly one evaluation miss per (layer, variant)."""

    def test_pure_cost_sweep_is_one_miss_per_layer(self):
        clear_default_cache()
        capacities = (16, 32, 64, 128, 256, 512)
        plan = dse_sram_plan(scale=0.1, capacities_kb=capacities)
        before = default_cache().stats()
        SweepRunner().run(plan)
        after = default_cache().stats()
        # one layer, one fine-tuning variant, N x simulators pure-cost cells
        assert after.misses - before.misses == 1
        assert after.hits - before.hits == 0

    def test_pure_cost_pe_sweep_via_session_provenance(self):
        clear_default_cache()
        session = Session()
        result = session.run("dse-pe-scaling", scale=0.1, pe_counts=(2, 4, 8, 16, 32))
        assert result.provenance["cache"]["lru_misses"] == 1
        assert len(result.payload) == 5

    def test_dse_scenarios_accept_mapping_overrides(self):
        # Mappings and pair-tuples are interchangeable for arch_overrides,
        # matching the networks/layers/table4 scenarios.
        session = Session()
        via_mapping = session.run(
            "dse-pe-scaling",
            scale=0.1,
            pe_counts=(4, 8),
            arch_overrides={"energy.dram_per_byte": 10.0},
        )
        via_pairs = session.run(
            "dse-pe-scaling",
            scale=0.1,
            pe_counts=(4, 8),
            arch_overrides=(("energy.dram_per_byte", 10.0),),
        )
        assert via_mapping.payload == via_pairs.payload

    def test_timestep_ablation_misses_once_per_timestep(self):
        clear_default_cache()
        timesteps = (2, 4, 8)
        plan = dse_timestep_plan(scale=0.1, timesteps=timesteps)
        before = default_cache().stats()
        SweepRunner().run(plan)
        after = default_cache().stats()
        assert after.misses - before.misses == len(timesteps)


class TestDesignSpaceScenarioShapes:
    def test_pe_scaling_is_monotone_nonincreasing(self):
        session = Session()
        payload = session.run("dse-pe-scaling", scale=0.25, pe_counts=(4, 8, 16)).payload
        cycles = [payload["PE=%d" % count]["cycles"] for count in (4, 8, 16)]
        assert cycles == sorted(cycles, reverse=True)
        assert cycles[0] > cycles[-1]

    def test_sram_sweep_offchip_monotone_nonincreasing(self):
        session = Session()
        capacities = (16, 64, 256)
        payload = session.run("dse-sram-sweep", scale=0.25, capacities_kb=capacities).payload
        for simulator in ("SparTen-SNN", "Gamma-SNN", "LoAS"):
            offchip = [
                payload["SRAM=%dKB" % kb][simulator]["offchip_kb"] for kb in capacities
            ]
            assert offchip == sorted(offchip, reverse=True), simulator

    def test_timestep_ablation_at_base_preset_t(self):
        # A point whose T equals the base preset's never re-timesteps the
        # workload (cell.workload.timesteps stays None); the shaper must
        # fall back to the resolved design point instead of crashing.
        session = Session()
        payload = session.run("dse-timestep-ablation", scale=0.1, timesteps=(4,)).payload
        assert set(payload) == {"T=4"}
        assert payload["T=4"]["relative_performance"] == pytest.approx(1.0)

    def test_duplicate_axis_points_keep_distinct_rows(self):
        # Rows are keyed by the swept value, so duplicated points must pick
        # up the same #<n> suffix the plan layer gives their labels instead
        # of silently overwriting each other.
        session = Session()
        pe = session.run("dse-pe-scaling", scale=0.1, pe_counts=(16, 16)).payload
        assert set(pe) == {"PE=16", "PE=16#2"}
        assert pe["PE=16"] == pe["PE=16#2"]
        sram = session.run(
            "dse-sram-sweep", scale=0.1, capacities_kb=(16, 16), simulators=("LoAS",)
        ).payload
        assert set(sram) == {"SRAM=16KB", "SRAM=16KB#2"}
        assert sram["SRAM=16KB"] == sram["SRAM=16KB#2"]

    def test_timestep_ablation_reports_fig16a_ratios(self):
        session = Session()
        payload = session.run("dse-timestep-ablation", scale=0.1, timesteps=(4, 16)).payload
        assert payload["T=4"]["tppe_area_ratio"] == pytest.approx(1.0)
        assert payload["T=16"]["tppe_area_ratio"] == pytest.approx(1.37, abs=0.02)
        assert payload["T=16"]["tppe_power_ratio"] == pytest.approx(1.25, abs=0.02)
        # FTP headline: doubling T twice costs only a few percent latency
        assert payload["T=16"]["relative_performance"] > 0.8


class TestDefaultArchBitIdentity:
    """Acceptance: pre-existing scenarios are bit-identical under the
    default ArchSpec (pinning the spec explicitly changes nothing)."""

    def test_explicit_default_arch_matches_unpinned_cells(self):
        from repro.experiments.sweeps import layer_sweep_plan
        from test_runner import assert_results_identical

        plan = layer_sweep_plan(("V-L8",), scale=0.06, seed=1)
        pinned = SweepPlan(
            plan.name,
            tuple(
                type(cell)(
                    cell.workload,
                    SimulatorSpec(
                        cell.simulator.key,
                        label=cell.simulator.label,
                        finetuned=cell.simulator.finetuned,
                        kwargs=cell.simulator.kwargs,
                        config_timesteps=cell.simulator.config_timesteps,
                        arch=DEFAULT_ARCH,
                    ),
                    cell.seed,
                    cell.tag,
                )
                for cell in plan.cells
            ),
        )
        runner = SweepRunner()
        reference = runner.run(plan).nested()
        via_arch = runner.run(pinned).nested()
        assert list(reference) == list(via_arch)
        for workload in reference:
            for label in reference[workload]:
                assert_results_identical(
                    reference[workload][label], via_arch[workload][label]
                )

    def test_networks_scenario_accepts_arch_parameter(self):
        session = Session()
        default = session.run("networks", networks=("alexnet",), scale=0.05)
        pinned = session.run(
            "networks", networks=("alexnet",), scale=0.05, arch=DEFAULT_ARCH
        )
        for accel in default.payload["alexnet"]:
            assert (
                default.payload["alexnet"][accel].cycles
                == pinned.payload["alexnet"][accel].cycles
            )

    def test_networks_rejects_config_and_arch_together(self):
        session = Session()
        with pytest.raises(ValueError):
            session.run(
                "networks",
                networks=("alexnet",),
                scale=0.05,
                config=LoASConfig(),
                arch=DEFAULT_ARCH,
            )

    def test_table4_defaults_unchanged_and_arch_aware(self):
        session = Session()
        default = session.run("table4-area-power").payload
        assert default["system_area_mm2"]["total"] == pytest.approx(2.08, abs=0.02)
        # an arch with double the TPPEs doubles the TPPE group's area
        scaled = session.run(
            "table4-area-power", arch_overrides=(("pe.num_tppes", 32),)
        ).payload
        assert scaled["system_area_mm2"]["tppes"] == pytest.approx(
            2 * default["system_area_mm2"]["tppes"]
        )


class TestBaselineSpecKnobs:
    def test_baseline_models_read_the_injected_spec(self):
        from repro.baselines import GammaSNN, GoSPASNN, PTBSimulator, SparTenSNN

        spec = default_arch().with_overrides(**{
            "baseline.merger_radix": 8,
            "baseline.psum_buffer_bytes": 1024,
            "baseline.per_timestep_overhead_cycles": 99,
            "baseline.systolic_rows": 4,
            "baseline.systolic_cols": 2,
            "baseline.window_capacity": 32,
        })
        assert GammaSNN(spec).merger_radix == 8
        assert GoSPASNN(spec).psum_buffer_bytes == 1024
        assert SparTenSNN(spec).per_timestep_overhead_cycles == 99
        ptb = PTBSimulator(spec)
        assert (ptb.array.rows, ptb.array.cols) == (4, 2)
        assert ptb.window_capacity == 32

    def test_defaults_equal_published_values(self):
        from repro.baselines import GammaSNN, GoSPASNN, PTBSimulator, SparTenSNN

        assert GammaSNN().merger_radix == 64
        assert GammaSNN().effective_merge_radix == 2
        assert GoSPASNN().psum_buffer_bytes == 8 * 1024
        assert SparTenSNN().per_timestep_overhead_cycles == 12
        assert (PTBSimulator().array.rows, PTBSimulator().array.cols) == (16, 4)

    def test_smaller_gospa_psum_buffer_spills_more(self, rng):
        from repro.baselines import GoSPASNN
        from repro.sparse.matrix import random_spike_tensor, random_weight_matrix

        spikes = random_spike_tensor(32, 256, 4, 0.8, silent_fraction=0.7, rng=rng)
        weights = random_weight_matrix(256, 128, 0.9, rng=rng)
        big = GoSPASNN(
            default_arch().with_overrides(**{"baseline.psum_buffer_bytes": 1 << 20})
        ).simulate_layer(spikes, weights)
        small = GoSPASNN(
            default_arch().with_overrides(**{"baseline.psum_buffer_bytes": 512})
        ).simulate_layer(spikes, weights)
        assert small.dram.get("psum") > big.dram.get("psum")


class TestArchCli:
    def test_run_with_arch_flag_and_dotted_set(self, capsys):
        from repro.api.cli import main
        from repro.api.result import ScenarioResult

        code = main(
            [
                "run",
                "dse-pe-scaling",
                "--arch",
                "loas-32nm",
                "--scale",
                "0.25",
                "--set",
                "pe_counts=(4,8,16)",
                "--set",
                "arch.memory.global_cache_bytes=131072",
                "--json",
            ]
        )
        assert code == 0
        result = ScenarioResult.from_json(capsys.readouterr().out)
        cycles = [result.payload["PE=%d" % count]["cycles"] for count in (4, 8, 16)]
        assert cycles == sorted(cycles, reverse=True)
        assert result.params["arch"] == "loas-32nm"
        assert result.params["arch_overrides"] == (
            ("memory.global_cache_bytes", 131072),
        )

    def test_arch_flag_collides_with_set(self):
        from repro.api.cli import main

        assert (
            main(
                [
                    "run",
                    "dse-pe-scaling",
                    "--arch",
                    "loas-32nm",
                    "--set",
                    "arch=loas-32nm",
                ]
            )
            == 2
        )

    def test_arch_flag_rejected_for_scenarios_without_arch(self):
        from repro.api.cli import main

        assert main(["run", "fig16-temporal", "--arch", "loas-32nm"]) == 2
