"""Tests for the LoAS simulator, the baselines and their relative behaviour.

The paper's headline claims are asserted as *shape* properties on moderately
sized synthetic layers: who wins, in which direction each traffic category
moves, and how quantities scale with the number of timesteps.
"""

import numpy as np
import pytest

from repro.baselines import (
    GammaANN,
    GammaSNN,
    GoSPASNN,
    PTBSimulator,
    SparTenANN,
    SparTenSNN,
    StellarSimulator,
    TABLE1_CAPABILITIES,
    generate_ann_activations,
)
from repro.baselines.common import (
    bitmask_fiber_bytes,
    collect_layer_statistics,
    coordinate_bits,
    csr_bytes,
    streaming_refetch_factor,
)
from repro.core import LoASConfig, LoASSimulator
from repro.core.base import SimulatorBase
from repro.metrics.results import SimulationResult, aggregate_results
from repro.sparse.matrix import sparsity


ALL_SNN_SIMULATORS = [LoASSimulator, SparTenSNN, GoSPASNN, GammaSNN, PTBSimulator, StellarSimulator]


class TestCommonHelpers:
    def test_coordinate_bits(self):
        assert coordinate_bits(1) == 1
        assert coordinate_bits(128) == 7
        assert coordinate_bits(129) == 8

    def test_csr_bytes(self):
        assert csr_bytes(10, 128, 4, value_bits=8, pointer_bits=32) == pytest.approx((10 * 15 + 5 * 32) / 8)

    def test_bitmask_fiber_bytes(self):
        assert bitmask_fiber_bytes(128, 10, 4, 8, 32) == pytest.approx((4 * 160 + 80) / 8)

    def test_streaming_refetch_factor_fits(self):
        assert streaming_refetch_factor(100, 0, 1000, passes=10) == 1.0

    def test_streaming_refetch_factor_no_fit(self):
        assert streaming_refetch_factor(1000, 1000, 1000, passes=4) == pytest.approx(4.0)

    def test_streaming_refetch_factor_partial(self):
        factor = streaming_refetch_factor(1000, 500, 1000, passes=3)
        assert 1.0 < factor < 3.0

    def test_streaming_refetch_zero_byte_operand(self):
        # A zero-byte operand can never need refetching, whatever the
        # capacity pressure.
        assert streaming_refetch_factor(0, 1000, 100, passes=10) == 1.0
        assert streaming_refetch_factor(-1.0, 1000, 100, passes=10) == 1.0

    def test_streaming_refetch_single_pass_never_refetches(self):
        assert streaming_refetch_factor(1000, 1000, 100, passes=1) == 1.0
        assert streaming_refetch_factor(1000, 1000, 100, passes=0) == 1.0

    def test_streaming_refetch_zero_leftover_capacity(self):
        # Residents consume the whole SRAM: every pass re-fetches the full
        # operand, so the factor equals the pass count exactly.
        assert streaming_refetch_factor(500, 1000, 1000, passes=7) == pytest.approx(7.0)
        # Over-subscribed residents behave the same (leftover clamps at 0).
        assert streaming_refetch_factor(500, 2000, 1000, passes=7) == pytest.approx(7.0)

    def test_streaming_refetch_exact_fit_boundary(self):
        # The operand exactly fills the leftover capacity: still one fetch.
        assert streaming_refetch_factor(500, 500, 1000, passes=4) == 1.0
        # One byte over the leftover starts interpolating above 1.
        assert streaming_refetch_factor(501, 500, 1000, passes=4) > 1.0

    def test_collect_layer_statistics(self, small_layer):
        spikes, weights = small_layer
        stats = collect_layer_statistics(spikes, weights)
        assert stats.nnz_spikes == int(spikes.sum())
        assert stats.nnz_weights == int(np.count_nonzero(weights))
        assert stats.matches.shape == (8, 24)
        assert stats.true_acs_per_t.shape == (4,)
        assert stats.true_acs.sum() == pytest.approx(stats.true_acs_per_t.sum())

    def test_statistics_reject_bad_shapes(self):
        with pytest.raises(ValueError):
            collect_layer_statistics(np.zeros((2, 2)), np.zeros((2, 2)))


class TestSimulatorBase:
    def test_simulate_layer_is_abstract(self, small_layer):
        spikes, weights = small_layer
        with pytest.raises(NotImplementedError):
            SimulatorBase().simulate_layer(spikes, weights)

    def test_roofline_combines_compute_and_memory(self):
        base = SimulatorBase(LoASConfig())
        cycles, memory = base.roofline_cycles(100.0, 160000.0, 0.0)
        assert memory == pytest.approx(1000.0)
        assert cycles == pytest.approx(1000.0)
        cycles, _ = base.roofline_cycles(10000.0, 160.0, 0.0)
        assert cycles == pytest.approx(10000.0)

    def test_grouped_wave_cycles_captures_imbalance(self):
        task_cycles = np.array([[1.0, 1.0], [9.0, 1.0]])
        assert SimulatorBase.grouped_wave_cycles(task_cycles, group_size=2) == pytest.approx(10.0)
        assert SimulatorBase.grouped_wave_cycles(task_cycles, group_size=1) == pytest.approx(12.0)

    def test_grouped_wave_cycles_validation(self):
        with pytest.raises(ValueError):
            SimulatorBase.grouped_wave_cycles(np.zeros(3), 2)
        with pytest.raises(ValueError):
            SimulatorBase.grouped_wave_cycles(np.zeros((2, 2)), 0)

    def test_roofline_zero_byte_transfers_cost_nothing(self):
        base = SimulatorBase(LoASConfig())
        cycles, memory = base.roofline_cycles(123.0, 0.0, 0.0)
        assert memory == 0.0
        assert cycles == pytest.approx(123.0)

    def test_roofline_memory_bound_crossover(self):
        # At 160 B/cycle DRAM bandwidth, 160_000 bytes take exactly the
        # 1000 compute cycles: the regimes cross there.
        base = SimulatorBase(LoASConfig())
        at_crossover, memory = base.roofline_cycles(1000.0, 160_000.0, 0.0)
        assert memory == pytest.approx(1000.0)
        assert at_crossover == pytest.approx(1000.0)
        compute_bound, _ = base.roofline_cycles(1000.0, 159_840.0, 0.0)
        assert compute_bound == pytest.approx(1000.0)  # compute hides memory
        memory_bound, memory = base.roofline_cycles(1000.0, 160_160.0, 0.0)
        assert memory_bound == pytest.approx(memory) == pytest.approx(1001.0)

    def test_roofline_takes_the_slower_of_dram_and_sram(self):
        # 256 B/cycle SRAM vs 160 B/cycle DRAM: equal byte counts stress
        # DRAM harder, so it sets the memory bound.
        base = SimulatorBase(LoASConfig())
        _, memory = base.roofline_cycles(0.0, 160_000.0, 160_000.0)
        assert memory == pytest.approx(1000.0)
        _, sram_only = base.roofline_cycles(0.0, 0.0, 256_000.0)
        assert sram_only == pytest.approx(1000.0)

    def test_roofline_reads_the_injected_design_point(self):
        # Halving the DRAM bandwidth doubles the memory bound.
        from repro.arch import default_arch

        halved = default_arch().with_overrides(**{"memory.dram_bandwidth_gbps": 64.0})
        base = SimulatorBase(LoASConfig(halved))
        _, memory = base.roofline_cycles(0.0, 160_000.0, 0.0)
        assert memory == pytest.approx(2000.0)


@pytest.mark.parametrize("simulator_cls", ALL_SNN_SIMULATORS)
class TestAllSimulatorsBasicContract:
    def test_result_is_well_formed(self, simulator_cls, medium_layer):
        spikes, weights = medium_layer
        result = simulator_cls().simulate_layer(spikes, weights, name="unit")
        assert isinstance(result, SimulationResult)
        assert result.cycles > 0
        assert result.compute_cycles > 0
        assert result.dram_bytes > 0
        assert result.sram_bytes > 0
        assert result.energy_pj > 0
        assert result.workload == "unit"

    def test_rejects_bad_shapes(self, simulator_cls):
        with pytest.raises(ValueError):
            simulator_cls().simulate_layer(np.zeros((2, 3)), np.zeros((3, 2)))

    def test_workload_driver(self, simulator_cls, tiny_workload):
        result = simulator_cls().simulate_workload(tiny_workload, rng=np.random.default_rng(0))
        assert result.workload == "tiny"
        assert result.cycles > 0


class TestLoASSimulator:
    @pytest.fixture
    def result(self, medium_layer):
        spikes, weights = medium_layer
        return LoASSimulator().simulate_layer(spikes, weights, name="layer")

    def test_traffic_categories_present(self, result):
        for category in ("input", "weight", "format", "output"):
            assert result.dram.get(category) > 0
            assert result.sram.get(category) > 0

    def test_no_psum_traffic(self, result):
        assert result.dram.get("psum") == 0.0

    def test_ops_bookkeeping_consistent(self, medium_layer, result):
        spikes, weights = medium_layer
        nonsilent = spikes.any(axis=2)
        matches = float((nonsilent.astype(float) @ (weights != 0)).sum())
        true_acs = sum(float((spikes[:, :, t].astype(float) @ (weights != 0)).sum()) for t in range(4))
        assert result.ops["pseudo_accumulations"] == pytest.approx(matches)
        assert result.ops["true_accumulations"] == pytest.approx(true_acs)
        assert result.ops["correction_accumulations"] == pytest.approx(matches * 4 - true_acs)

    def test_energy_categories(self, result):
        for category in ("dram", "sram", "compute", "prefix_sum", "lif"):
            assert result.energy.entries.get(category, 0.0) > 0

    def test_preprocessing_reduces_work(self, medium_layer):
        spikes, weights = medium_layer
        plain = LoASSimulator().simulate_layer(spikes, weights)
        preprocessed = LoASSimulator().simulate_layer(spikes, weights, preprocess=True)
        assert preprocessed.ops["pseudo_accumulations"] <= plain.ops["pseudo_accumulations"]
        assert preprocessed.cycles <= plain.cycles
        assert preprocessed.extra["silent_fraction"] >= plain.extra["silent_fraction"]

    def test_functional_run_matches_reference(self, small_layer):
        from repro.snn.layers import spmspm_reference
        from repro.snn.lif import lif_fire

        spikes, weights = small_layer
        output = LoASSimulator().run_functional(spikes, weights)
        assert np.array_equal(output.spikes, lif_fire(spmspm_reference(spikes, weights)))

    def test_network_aggregation(self, tiny_workload):
        from repro.snn.workloads import NetworkWorkload

        network = NetworkWorkload("tiny-net", [tiny_workload, tiny_workload])
        result = LoASSimulator().simulate_network(network, rng=np.random.default_rng(0))
        single = LoASSimulator().simulate_workload(tiny_workload, rng=np.random.default_rng(0))
        assert result.workload == "tiny-net"
        assert result.cycles > single.cycles

    def test_more_timesteps_cost_little_latency(self, tiny_workload):
        from repro.snn.network import LayerShape
        from repro.snn.workloads import LayerWorkload

        base = LoASSimulator().simulate_workload(tiny_workload, rng=np.random.default_rng(0))
        shape8 = LayerShape("tiny", 8, 160, 32, 8)
        wl8 = LayerWorkload(shape8, tiny_workload.profile)
        result8 = LoASSimulator(LoASConfig(timesteps=8)).simulate_workload(wl8, rng=np.random.default_rng(0))
        # Doubling T should cost far less than doubling the cycles (FTP).
        assert result8.cycles < base.cycles * 1.6


class TestPaperShapeClaims:
    """Headline orderings of the evaluation, checked on a mid-size layer."""

    @pytest.fixture(scope="class")
    def results(self):
        rng = np.random.default_rng(5)
        from repro.sparse.matrix import random_spike_tensor, random_weight_matrix

        spikes = random_spike_tensor(64, 1024, 4, spike_sparsity=0.82, silent_fraction=0.72, rng=rng)
        weights = random_weight_matrix(1024, 128, weight_sparsity=0.97, rng=rng)
        simulators = [LoASSimulator(), SparTenSNN(), GoSPASNN(), GammaSNN(), PTBSimulator(), StellarSimulator()]
        return {sim.name: sim.simulate_layer(spikes, weights, name="mid") for sim in simulators}

    def test_loas_is_fastest(self, results):
        loas = results["LoAS"]
        for name, result in results.items():
            if name != "LoAS":
                assert loas.cycles < result.cycles, name

    def test_loas_has_lowest_energy(self, results):
        loas = results["LoAS"]
        for name, result in results.items():
            if name != "LoAS":
                assert loas.energy_pj < result.energy_pj, name

    def test_sparten_snn_pays_roughly_t_times_more_sram(self, results):
        ratio = results["SparTen-SNN"].sram_bytes / results["LoAS"].sram_bytes
        assert 2.5 < ratio < 6.0

    def test_gamma_has_highest_sram_traffic(self, results):
        gamma = results["Gamma-SNN"].sram_bytes
        for name in ("LoAS", "SparTen-SNN", "GoSPA-SNN"):
            assert gamma > results[name].sram_bytes

    def test_gamma_dram_below_gospa(self, results):
        # Gustavson keeps partial rows on chip, so its off-chip traffic is
        # below the outer-product baseline's psum-spilling traffic.
        assert results["Gamma-SNN"].dram_bytes <= results["GoSPA-SNN"].dram_bytes

    def test_loas_dram_below_sparten(self, results):
        assert results["LoAS"].dram_bytes < results["SparTen-SNN"].dram_bytes

    def test_dense_ptb_is_slowest(self, results):
        ptb = results["PTB"].cycles
        for name, result in results.items():
            if name != "PTB":
                assert ptb > result.cycles, name

    def test_stellar_beats_ptb(self, results):
        assert results["Stellar"].cycles < results["PTB"].cycles

    def test_loas_speedup_over_ptb_is_large(self, results):
        assert results["LoAS"].speedup_over(results["PTB"]) > 10.0

    def test_miss_rates_are_valid_fractions(self, results):
        for result in results.values():
            assert 0.0 <= result.sram_miss_rate <= 1.0


class TestGoSPAPsumScaling:
    def test_psum_traffic_scales_with_timesteps(self, rng):
        from repro.sparse.matrix import random_spike_tensor, random_weight_matrix

        weights = random_weight_matrix(512, 256, 0.97, rng=rng)
        results = {}
        for t in (1, 4):
            spikes = random_spike_tensor(64, 512, t, 0.8, silent_fraction=0.7, rng=rng)
            results[t] = GoSPASNN().simulate_layer(spikes, weights)
        psum_1 = results[1].dram.get("psum")
        psum_4 = results[4].dram.get("psum")
        assert psum_4 > 0
        assert psum_4 / max(psum_1, 1e-9) >= 3.0


class TestANNBaselines:
    def test_activation_generator_sparsity(self, rng):
        activations = generate_ann_activations(200, 200, 0.439, rng=rng)
        assert sparsity(activations) == pytest.approx(0.439, abs=0.02)

    def test_activation_generator_validation(self, rng):
        with pytest.raises(ValueError):
            generate_ann_activations(4, 4, 1.2, rng=rng)

    @pytest.mark.parametrize("simulator_cls", [SparTenANN, GammaANN])
    def test_ann_simulators_contract(self, simulator_cls, rng):
        activations = generate_ann_activations(32, 256, rng=rng)
        weights = np.where(rng.random((256, 64)) < 0.95, 0, rng.integers(1, 127, (256, 64)))
        result = simulator_cls().simulate_layer(activations, weights, name="ann")
        assert result.cycles > 0 and result.energy_pj > 0 and result.dram_bytes > 0

    @pytest.mark.parametrize("simulator_cls", [SparTenANN, GammaANN])
    def test_ann_simulators_reject_3d(self, simulator_cls):
        with pytest.raises(ValueError):
            simulator_cls().simulate_layer(np.zeros((2, 2, 2)), np.zeros((2, 2)))

    def test_snn_on_loas_beats_ann_on_sparten_energy(self, rng):
        """Figure 18 headline: the dual-sparse SNN is more energy efficient."""
        from repro.sparse.matrix import random_spike_tensor, random_weight_matrix

        weights = random_weight_matrix(1024, 128, 0.982, rng=rng)
        spikes = random_spike_tensor(64, 1024, 4, 0.823, silent_fraction=0.796, rng=rng)
        activations = generate_ann_activations(64, 1024, 0.439, rng=rng)
        snn = LoASSimulator().simulate_layer(spikes, weights)
        ann = SparTenANN().simulate_layer(activations, weights)
        assert snn.energy_pj < ann.energy_pj
        assert snn.dram_bytes < ann.dram_bytes


class TestCapabilitiesTable:
    def test_only_loas_supports_dual_sparsity(self):
        dual = [name for name, c in TABLE1_CAPABILITIES.items() if c.spike_sparsity and c.weight_sparsity]
        assert dual == ["LoAS"]

    def test_loas_is_fully_temporal_parallel_with_lif(self):
        loas = TABLE1_CAPABILITIES["LoAS"]
        assert loas.parallelism == "S+fully-T"
        assert loas.neuron_model == "LIF"

    def test_stellar_uses_fs_neurons(self):
        assert TABLE1_CAPABILITIES["Stellar"].neuron_model == "FS"

    def test_ptb_is_partially_temporal_parallel(self):
        assert TABLE1_CAPABILITIES["PTB"].parallelism == "S+partial-T"


class TestMetricsResults:
    def test_speedup_and_efficiency(self):
        fast = SimulationResult("a", "w", cycles=100)
        slow = SimulationResult("b", "w", cycles=400)
        assert fast.speedup_over(slow) == pytest.approx(4.0)

    def test_aggregate_sums(self):
        a = SimulationResult("x", "l1", cycles=10)
        a.dram.add("input", 100)
        b = SimulationResult("x", "l2", cycles=20)
        b.dram.add("input", 50)
        total = aggregate_results([a, b], "x", "net")
        assert total.cycles == 30
        assert total.dram.get("input") == 150

    def test_aggregate_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_results([], "x", "net")

    def test_runtime_seconds(self):
        result = SimulationResult("a", "w", cycles=8e8)
        assert result.runtime_seconds(clock_ghz=0.8) == pytest.approx(1.0)
