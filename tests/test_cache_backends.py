"""Tiered cache architecture: v2 entries, degradation, remote tier, identity.

The pluggable backend stack must be invisible to results: scenario sweeps
are bit-identical whether evaluations come from regeneration, the memory
LRU, a disk tier (v1 tensor-only or v2 statistics entries), or the
network-addressed remote daemon -- serial and pooled alike.  Degraded tiers
(torn v2 payloads, legacy v1 entries, a dead daemon) must shrink the stack,
never fail the sweep.
"""

from __future__ import annotations

import io
import json
import socket
import warnings

import numpy as np
import pytest

from repro.core import LoASSimulator
from repro.engine import (
    DiskEvaluationCache,
    MemoryBackend,
    RemoteBackend,
    TieredCache,
    WorkloadEvaluationCache,
    clear_default_cache,
)
from repro.engine.backend import CacheEntry, pack_entry, unpack_entry
from repro.engine.cache import generator_fingerprint, workload_fingerprint
from repro.engine.serde import encode_state, pack_payload
from repro.engine.server import EvaluationCacheServer
from repro.snn.network import LayerShape
from repro.snn.workloads import LayerWorkload, SparsityProfile

from test_runner import assert_sweeps_identical, legacy_run_networks


def make_workload(name="tiny", m=8, k=160, n=32, t=4) -> LayerWorkload:
    profile = SparsityProfile(0.881, 0.765, 0.868, 0.968)
    return LayerWorkload(LayerShape(name, m=m, k=k, n=n, t=t), profile)


def assert_simulations_identical(a, b):
    assert a.cycles == b.cycles
    assert a.dram.as_dict() == b.dram.as_dict()
    assert dict(a.energy.entries) == dict(b.energy.entries)
    assert a.ops == b.ops


@pytest.fixture
def tier(tmp_path) -> DiskEvaluationCache:
    return DiskEvaluationCache(tmp_path / "evals")


@pytest.fixture
def cache_server():
    server = EvaluationCacheServer(("127.0.0.1", 0))
    server.start_background()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()


def consumed_evaluation(cache: WorkloadEvaluationCache, workload, seed=3, preprocess=True):
    """Evaluate and run a simulator over the result (enriching it)."""
    evaluation = cache.evaluate(workload, np.random.default_rng(seed))
    result = LoASSimulator().simulate_workload(workload, evaluation=evaluation)
    if preprocess:
        LoASSimulator().simulate_workload(
            workload, evaluation=evaluation, preprocess=True
        )
    return evaluation, result


# --------------------------------------------------------------------- #
# Dehydrate / hydrate round trip
# --------------------------------------------------------------------- #
class TestDehydration:
    def test_round_trip_is_bit_identical_and_preseeded(self, tiny_workload):
        cache = WorkloadEvaluationCache()
        evaluation, reference = consumed_evaluation(cache, tiny_workload)
        entry = CacheEntry(evaluation, np.random.default_rng(0).bit_generator.state)
        hydrated = unpack_entry(pack_entry(entry)).evaluation

        assert np.array_equal(hydrated.spikes, evaluation.spikes)
        assert hydrated.spikes.dtype == evaluation.spikes.dtype
        assert np.array_equal(hydrated.weights, evaluation.weights)
        assert hydrated.weights.dtype == evaluation.weights.dtype
        # The statistics GEMM outputs arrive pre-seeded, not recomputed.
        assert "matches" in hydrated.__dict__
        assert np.array_equal(hydrated.matches, evaluation.matches)
        assert hydrated.matches.dtype == evaluation.matches.dtype
        # Memoised compressions (and the preprocessed child's) survive; the
        # child itself rebuilds lazily (masking the dense spikes) on first
        # preprocessed() call, with its derived arrays served from the entry.
        assert set(hydrated._compressions) == set(evaluation._compressions)
        assert 1 in hydrated._pending_preprocessed and not hydrated._preprocessed
        child, reference_child = hydrated.preprocessed(1), evaluation._preprocessed[1]
        assert "matches" in child.__dict__  # seeded, not recomputed
        assert np.array_equal(child.matches, reference_child.matches)
        assert set(child._compressions) == set(reference_child._compressions)
        result = LoASSimulator().simulate_workload(tiny_workload, evaluation=hydrated)
        assert_simulations_identical(result, reference)

    def test_enrichment_grows_with_derived_state(self, tiny_workload):
        cache = WorkloadEvaluationCache()
        evaluation = cache.evaluate(tiny_workload, np.random.default_rng(3))
        fresh = evaluation.enrichment
        evaluation.statistics
        assert evaluation.enrichment > fresh


# --------------------------------------------------------------------- #
# v2 disk entries
# --------------------------------------------------------------------- #
class TestDiskV2:
    def test_writeback_enriches_the_stored_entry(self, tier, tiny_workload):
        cache = WorkloadEvaluationCache(disk_tier=tier)
        _, reference = consumed_evaluation(cache, tiny_workload)
        assert tier.stores == 1 and tier.refreshes == 0
        assert cache.flush_writebacks() == 1
        assert tier.refreshes == 1

        cold = WorkloadEvaluationCache(disk_tier=tier)
        loaded = cold.evaluate(tiny_workload, np.random.default_rng(3))
        assert cold.disk_hits == 1 and cold.misses == 0
        assert "matches" in loaded.__dict__  # statistics served from disk
        assert loaded._compressions  # compression served from disk
        result = LoASSimulator().simulate_workload(tiny_workload, evaluation=loaded)
        assert_simulations_identical(result, reference)

    def test_store_derived_false_strips_the_derived_state(self, tmp_path, tiny_workload):
        tier = DiskEvaluationCache(tmp_path / "evals", store_derived=False)
        cache = WorkloadEvaluationCache(disk_tier=tier)
        consumed_evaluation(cache, tiny_workload)
        cache.flush_writebacks()
        assert tier.refreshes == 0  # nothing to enrich a tensor-only tier with
        loaded = WorkloadEvaluationCache(disk_tier=tier).evaluate(
            tiny_workload, np.random.default_rng(3)
        )
        assert "matches" not in loaded.__dict__

    def test_unflushed_entries_stay_tensor_only_but_loadable(self, tier, tiny_workload):
        cache = WorkloadEvaluationCache(disk_tier=tier)
        cache.evaluate(tiny_workload, np.random.default_rng(3))
        loaded = WorkloadEvaluationCache(disk_tier=tier).evaluate(
            tiny_workload, np.random.default_rng(3)
        )
        assert "matches" not in loaded.__dict__
        assert np.array_equal(
            loaded.matches,
            WorkloadEvaluationCache().evaluate(
                tiny_workload, np.random.default_rng(3)
            ).matches,
        )


# --------------------------------------------------------------------- #
# Degradation: v1 entries, torn payloads, dead remote
# --------------------------------------------------------------------- #
def write_v1_entry(tier: DiskEvaluationCache, workload, seed: int):
    """Publish a legacy (pre-refactor ``np.savez``) tensor-only entry."""
    rng = np.random.default_rng(seed)
    key = (workload_fingerprint(workload, False), generator_fingerprint(rng))
    spikes, weights = workload.generate(rng=rng)
    payload = json.dumps(encode_state(rng.bit_generator.state)).encode("utf-8")
    buffer = io.BytesIO()
    np.savez(
        buffer,
        spikes=spikes,
        weights=weights,
        state=np.frombuffer(payload, dtype=np.uint8),
    )
    path = tier.entry_path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(buffer.getvalue())
    return key


class TestDegradation:
    def test_v1_entry_hydrates_tensor_only(self, tier, tiny_workload):
        write_v1_entry(tier, tiny_workload, seed=3)
        reference = LoASSimulator().simulate_workload(
            tiny_workload, rng=np.random.default_rng(3)
        )
        cache = WorkloadEvaluationCache(disk_tier=tier)
        rng = np.random.default_rng(3)
        loaded = cache.evaluate(tiny_workload, rng)
        assert cache.disk_hits == 1 and tier.corrupt_dropped == 0
        assert "matches" not in loaded.__dict__  # tensor-only hydration
        result = LoASSimulator().simulate_workload(tiny_workload, evaluation=loaded)
        assert_simulations_identical(result, reference)
        # The generator fast-forwards exactly as with a v2 hit.
        regen = np.random.default_rng(3)
        tiny_workload.generate(rng=regen)
        assert rng.bit_generator.state == regen.bit_generator.state

    def test_v1_entry_is_upgraded_to_v2_by_the_writeback(self, tier, tiny_workload):
        key = write_v1_entry(tier, tiny_workload, seed=3)
        assert tier.entry_path(key).read_bytes().startswith(b"PK")  # zip (v1)
        cache = WorkloadEvaluationCache(disk_tier=tier)
        consumed_evaluation(cache, tiny_workload, preprocess=False)
        assert cache.flush_writebacks() == 1
        assert tier.refreshes == 1
        assert not tier.entry_path(key).read_bytes().startswith(b"PK")  # flat (v2)
        loaded = WorkloadEvaluationCache(disk_tier=tier).evaluate(
            tiny_workload, np.random.default_rng(3)
        )
        assert "matches" in loaded.__dict__

    def test_torn_v2_statistics_payload_falls_back_to_recompute(self, tier, tiny_workload):
        cache = WorkloadEvaluationCache(disk_tier=tier)
        _, reference = consumed_evaluation(cache, tiny_workload)
        cache.flush_writebacks()
        (entry_file,) = tier._entry_files()
        payload = entry_file.read_bytes()
        entry_file.write_bytes(payload[: int(len(payload) * 0.6)])  # torn write

        cold = WorkloadEvaluationCache(disk_tier=tier)
        rng = np.random.default_rng(3)
        regenerated = cold.evaluate(tiny_workload, rng)
        assert tier.corrupt_dropped == 1
        assert cold.misses == 1 and cold.disk_hits == 0
        result = LoASSimulator().simulate_workload(tiny_workload, evaluation=regenerated)
        assert_simulations_identical(result, reference)
        # The regeneration re-published a clean entry over the torn one.
        assert len(tier) == 1

    def test_v2_meta_naming_missing_arrays_is_corrupt(self, tier, tiny_workload):
        cache = WorkloadEvaluationCache(disk_tier=tier)
        evaluation, _ = consumed_evaluation(cache, tiny_workload)
        cache.flush_writebacks()
        (entry_file,) = tier._entry_files()
        # Rebuild the entry with meta claiming derived arrays the container
        # does not hold -- the hydration must treat it as corruption.
        arrays, meta = evaluation.dehydrate()
        arrays = {
            name: array for name, array in arrays.items() if not name.startswith("d_")
        }
        arrays["state"] = np.frombuffer(
            json.dumps(encode_state(np.random.default_rng(3).bit_generator.state)).encode(),
            dtype=np.uint8,
        )
        entry_file.write_bytes(pack_payload(arrays, meta))
        cold = WorkloadEvaluationCache(disk_tier=tier)
        cold.evaluate(tiny_workload, np.random.default_rng(3))
        assert tier.corrupt_dropped == 1 and cold.misses == 1

    def test_dead_remote_degrades_with_a_single_warning(self, tmp_path, tiny_workload):
        # Grab a port that nothing listens on.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        disk = DiskEvaluationCache(tmp_path / "evals")
        remote = RemoteBackend("127.0.0.1:%d" % dead_port, timeout=1.0)
        cache = WorkloadEvaluationCache(backends=(disk, remote))
        reference = WorkloadEvaluationCache().evaluate(
            tiny_workload, np.random.default_rng(3)
        )
        with pytest.warns(RuntimeWarning, match="unreachable"):
            first = cache.evaluate(tiny_workload, np.random.default_rng(3))
        assert not remote.alive
        assert np.array_equal(first.spikes, reference.spikes)
        assert disk.stores == 1  # the healthy lower tier still works
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a second warning would fail here
            cache.flush_writebacks()
            other = make_workload(name="other", m=6)
            cache.evaluate(other, np.random.default_rng(4))
        assert cache.misses == 2


# --------------------------------------------------------------------- #
# Remote tier (live daemon)
# --------------------------------------------------------------------- #
@pytest.mark.timeout(60)
class TestRemoteTier:
    def test_round_trip_through_the_daemon(self, cache_server, tiny_workload):
        remote = RemoteBackend(cache_server.url)
        cache = WorkloadEvaluationCache(backends=(remote,))
        _, reference = consumed_evaluation(cache, tiny_workload)
        cache.flush_writebacks()
        stats = remote.server_stats()
        assert stats.stores == 1 and stats.refreshes == 1 and stats.entries == 1

        cold = WorkloadEvaluationCache(backends=(RemoteBackend(cache_server.url),))
        rng = np.random.default_rng(3)
        loaded = cold.evaluate(tiny_workload, rng)
        assert cold.disk_hits == 1 and cold.misses == 0
        assert "matches" in loaded.__dict__  # enriched entry over the wire
        result = LoASSimulator().simulate_workload(tiny_workload, evaluation=loaded)
        assert_simulations_identical(result, reference)
        assert remote.server_stats().hits == 1

    def test_promote_on_hit_fills_the_tiers_above(self, cache_server, tmp_path, tiny_workload):
        warm = WorkloadEvaluationCache(backends=(RemoteBackend(cache_server.url),))
        consumed_evaluation(warm, tiny_workload)
        warm.flush_writebacks()
        disk = DiskEvaluationCache(tmp_path / "evals")
        stacked = WorkloadEvaluationCache(
            backends=(disk, RemoteBackend(cache_server.url))
        )
        stacked.evaluate(tiny_workload, np.random.default_rng(3))
        assert stacked.disk_hits == 1
        assert len(disk) == 1  # remote hit promoted into the disk tier
        assert len(stacked.memory_backend) == 1  # ... and into the LRU

    def test_clear_and_stats_over_the_wire(self, cache_server, tiny_workload):
        remote = RemoteBackend(cache_server.url)
        cache = WorkloadEvaluationCache(backends=(remote,))
        cache.evaluate(tiny_workload, np.random.default_rng(0))
        assert remote.server_stats().entries == 1
        remote.clear()
        assert remote.server_stats().entries == 0


# --------------------------------------------------------------------- #
# Bit-identity across every stack configuration (acceptance)
# --------------------------------------------------------------------- #
SCALE = 0.06
NETWORKS = ("alexnet", "vgg16")  # two (workload, seed) partitions: real pool
SEED = 1


@pytest.mark.timeout(300)
class TestTierStackEquivalence:
    @pytest.fixture(scope="class")
    def reference(self):
        return legacy_run_networks(networks=NETWORKS, scale=SCALE, seed=SEED)

    @staticmethod
    def run_stack(workers, tmp_path=None, cache_url=None, repeat=1):
        from repro.experiments.sweeps import network_sweep_plan
        from repro.runner import SweepRunner

        plan = network_sweep_plan(networks=NETWORKS, scale=SCALE, seed=SEED)
        runner = SweepRunner(
            workers=workers,
            cache_dir=None if tmp_path is None else tmp_path / "evals",
            cache_url=cache_url,
        )
        nested = None
        for _ in range(repeat):
            clear_default_cache()
            nested = runner.run(plan).nested()
        clear_default_cache()
        return nested

    @pytest.mark.parametrize("workers", [0, 2])
    def test_memory_only_matches_legacy(self, reference, workers):
        assert_sweeps_identical(reference, self.run_stack(workers))

    @pytest.mark.parametrize("workers", [0, 2])
    def test_memory_disk_matches_legacy(self, reference, workers, tmp_path):
        # repeat=2: the second run is served from v2 disk entries.
        assert_sweeps_identical(reference, self.run_stack(workers, tmp_path, repeat=2))

    @pytest.mark.parametrize("workers", [0, 2])
    def test_memory_disk_remote_matches_legacy(
        self, reference, workers, tmp_path, cache_server
    ):
        assert_sweeps_identical(
            reference,
            self.run_stack(workers, tmp_path, cache_url=cache_server.url, repeat=2),
        )

    def test_remote_only_warm_run_matches_legacy(self, reference, cache_server):
        # Populate the daemon, then serve a fresh process-shaped run from it.
        assert_sweeps_identical(
            reference, self.run_stack(0, cache_url=cache_server.url, repeat=2)
        )
        remote = RemoteBackend(cache_server.url)
        assert remote.server_stats().hits > 0


class TestTieredCacheUnit:
    def test_promote_on_hit_and_write_through(self):
        upper, lower = MemoryBackend(4), MemoryBackend(4)
        stack = TieredCache((upper, lower))
        evaluation = WorkloadEvaluationCache().evaluate(
            make_workload(), np.random.default_rng(0)
        )
        entry = CacheEntry(evaluation, np.random.default_rng(0).bit_generator.state)
        stack.put("key", entry)
        assert len(upper) == 1 and len(lower) == 1
        upper.clear()
        found, level = stack.get("key")
        assert found is entry and level == 1
        assert len(upper) == 1  # promoted back into the top tier
        found, level = stack.get("key")
        assert level == 0

    def test_miss_returns_sentinel_level(self):
        stack = TieredCache((MemoryBackend(2),))
        entry, level = stack.get("absent")
        assert entry is None and level == -1
