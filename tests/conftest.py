"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


def pytest_configure(config: pytest.Config) -> None:
    # The socket-backed cache tests carry `timeout` marks enforced by
    # pytest-timeout (a [test] extra, installed in CI) so a wedged socket
    # cannot hang the suite.  Registering the marker keeps the suite clean
    # on environments without the plugin, where the marks are inert -- the
    # tests then rely on their own socket timeouts instead.
    config.addinivalue_line(
        "markers",
        "timeout(seconds): per-test time limit, enforced when pytest-timeout "
        "is installed",
    )

from repro.snn.workloads import LayerWorkload, SparsityProfile
from repro.snn.network import LayerShape
from repro.sparse.matrix import random_spike_tensor, random_weight_matrix


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for reproducible tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def small_layer(rng) -> tuple[np.ndarray, np.ndarray]:
    """A small dual-sparse layer: spikes (8, 96, 4) and weights (96, 24)."""
    spikes = random_spike_tensor(8, 96, 4, spike_sparsity=0.8, silent_fraction=0.65, rng=rng)
    weights = random_weight_matrix(96, 24, weight_sparsity=0.9, rng=rng)
    return spikes, weights


@pytest.fixture
def medium_layer(rng) -> tuple[np.ndarray, np.ndarray]:
    """A medium dual-sparse layer: spikes (16, 512, 4) and weights (512, 64)."""
    spikes = random_spike_tensor(16, 512, 4, spike_sparsity=0.82, silent_fraction=0.7, rng=rng)
    weights = random_weight_matrix(512, 64, weight_sparsity=0.95, rng=rng)
    return spikes, weights


@pytest.fixture
def tiny_workload() -> LayerWorkload:
    """A tiny named layer workload reusing the V-L8 sparsity profile."""
    profile = SparsityProfile(0.881, 0.765, 0.868, 0.968)
    return LayerWorkload(LayerShape("tiny", m=8, k=160, n=32, t=4), profile)
