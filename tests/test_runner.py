"""Orchestration equivalence: the runner reproduces the serial loops exactly.

Every refactored experiment ``run(...)`` is checked field-by-field against a
hand-rolled serial reference that mirrors the pre-refactor implementation
(per-simulator network walks with fresh equal-seed generators), in both
serial and 2-worker modes.  Plan/partition structure and the scenario
registry are covered alongside.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    GammaANN,
    GammaSNN,
    GoSPASNN,
    PTBSimulator,
    SparTenANN,
    SparTenSNN,
    StellarSimulator,
    ann_layer_tensors,
)
from repro.core import DEFAULT_RNG_SEED, LoASConfig, LoASSimulator
from repro.engine import AnnLayerEvaluation
from repro.experiments import (
    list_scenarios,
    run_fig5,
    run_fig12,
    run_fig13,
    run_fig14,
    run_fig17,
    run_fig18,
    run_fig19,
    run_layers,
    run_networks,
    run_scenario,
)
from repro.metrics.results import aggregate_results
from repro.runner import (
    SimulatorSpec,
    SweepPlan,
    SweepRunner,
    WorkloadSpec,
)
from repro.snn.network import LayerShape
from repro.snn.workloads import (
    LayerWorkload,
    SparsityProfile,
    get_layer_workload,
    get_network_workload,
)

SCALE = 0.06
NETWORKS = ("alexnet",)
LAYERS = ("V-L8",)
SEED = 1


def assert_results_identical(a, b):
    """Field-by-field bit-exact comparison of two SimulationResults."""
    assert a.accelerator == b.accelerator
    assert a.workload == b.workload
    assert a.cycles == b.cycles
    assert a.compute_cycles == b.compute_cycles
    assert a.memory_cycles == b.memory_cycles
    assert a.dram.as_dict() == b.dram.as_dict()
    assert a.sram.as_dict() == b.sram.as_dict()
    assert dict(a.energy.entries) == dict(b.energy.entries)
    assert a.ops == b.ops
    assert a.sram_miss_rate == b.sram_miss_rate
    assert a.extra == b.extra


def assert_sweeps_identical(reference, actual):
    assert list(reference) == list(actual)
    for workload in reference:
        assert list(reference[workload]) == list(actual[workload])
        for accel in reference[workload]:
            assert_results_identical(reference[workload][accel], actual[workload][accel])


# --------------------------------------------------------------------- #
# Pre-refactor serial references (mirroring the seed implementation)
# --------------------------------------------------------------------- #
def legacy_run_networks(networks=NETWORKS, scale=SCALE, seed=SEED, include_finetuned=True, config=None):
    results = {}
    for name in networks:
        network = get_network_workload(name)
        if scale != 1.0:
            network = network.scaled(scale)
        per = {}
        for accel, cls in (
            ("SparTen-SNN", SparTenSNN),
            ("GoSPA-SNN", GoSPASNN),
            ("Gamma-SNN", GammaSNN),
            ("LoAS", LoASSimulator),
        ):
            per[accel] = cls(config).simulate_network(network, rng=np.random.default_rng(seed))
        if include_finetuned:
            per["LoAS-FT"] = LoASSimulator(config).simulate_network(
                network, rng=np.random.default_rng(seed), finetuned=True, preprocess=True
            )
        results[name] = per
    return results


def legacy_run_layers(layers=LAYERS, scale=SCALE, seed=SEED, config=None):
    results = {}
    for name in layers:
        workload = get_layer_workload(name)
        if scale != 1.0:
            workload = workload.scaled(scale)
        per = {}
        for accel, cls in (
            ("SparTen-SNN", SparTenSNN),
            ("GoSPA-SNN", GoSPASNN),
            ("Gamma-SNN", GammaSNN),
            ("LoAS", LoASSimulator),
        ):
            per[accel] = cls(config).simulate_workload(workload, rng=np.random.default_rng(seed))
        results[name] = per
    return results


def legacy_run_fig5(layers=("V-L8",), scale=SCALE, seed=SEED):
    results = {}
    for name in layers:
        per_t = {}
        for timesteps in (1, 4):
            workload = get_layer_workload(name, timesteps=timesteps)
            if scale != 1.0:
                workload = workload.scaled(scale)
            result = GoSPASNN().simulate_workload(workload, rng=np.random.default_rng(seed))
            per_t[f"T={timesteps}"] = result.dram.get("psum") / 1e3
        results[name] = per_t
    return results


def legacy_run_fig17(scale=0.1, seed=SEED, timesteps=(4, 8), weight_sparsities=(0.982, 0.684, 0.25)):
    results = {"weight_sparsity": {}, "timesteps": {}, "layer_size": {}}
    base = get_layer_workload("V-L8").scaled(scale)

    reference_cycles = None
    for level in weight_sparsities:
        profile = SparsityProfile(
            base.profile.spike_sparsity,
            base.profile.silent_fraction,
            base.profile.silent_fraction_finetuned,
            level,
        )
        workload = LayerWorkload(base.shape, profile)
        result = LoASSimulator().simulate_workload(workload, rng=np.random.default_rng(seed))
        if reference_cycles is None:
            reference_cycles = result.cycles
        results["weight_sparsity"][f"B={level:.1%}"] = reference_cycles / result.cycles

    reference_cycles = None
    for t in timesteps:
        shape = LayerShape(base.shape.name, base.shape.m, base.shape.k, base.shape.n, t)
        workload = LayerWorkload(shape, base.profile)
        config = LoASConfig().with_timesteps(t)
        result = LoASSimulator(config).simulate_workload(workload, rng=np.random.default_rng(seed))
        if reference_cycles is None:
            reference_cycles = result.cycles
        results["timesteps"][f"T={t}"] = reference_cycles / result.cycles

    for layer_name in ("V-L8", "T-HFF"):
        workload = get_layer_workload(layer_name).scaled(scale)
        result = LoASSimulator().simulate_workload(workload, rng=np.random.default_rng(seed))
        throughput = result.ops.get("true_accumulations", 0.0) / result.cycles if result.cycles else 0.0
        results["layer_size"][layer_name] = throughput
    reference = results["layer_size"]["V-L8"] or 1.0
    results["layer_size"] = {k: v / reference for k, v in results["layer_size"].items()}
    return results


def legacy_run_fig18(network="alexnet", scale=SCALE, seed=SEED):
    snn_network = get_network_workload(network).scaled(scale)
    loas = LoASSimulator().simulate_network(
        snn_network, rng=np.random.default_rng(seed), finetuned=True, preprocess=True
    )
    rng = np.random.default_rng(seed)
    evaluations = [
        (layer.name, AnnLayerEvaluation(*ann_layer_tensors(layer, rng=rng)))
        for layer in snn_network.layers
    ]
    ann_results = {}
    for simulator in (SparTenANN(), GammaANN()):
        layer_results = [
            simulator.simulate_layer(
                evaluation.activations, evaluation.weights, name=name, evaluation=evaluation
            )
            for name, evaluation in evaluations
        ]
        ann_results[simulator.name] = aggregate_results(
            layer_results, accelerator=simulator.name, workload=network
        )
    everything = {"LoAS (SNN)": loas, **{f"{k} (ANN)": v for k, v in ann_results.items()}}
    reference_energy = loas.energy_pj or 1.0
    reference_dram = loas.dram_bytes or 1.0
    reference_sram = loas.sram_bytes or 1.0
    return {
        name: {
            "normalized_energy": result.energy_pj / reference_energy,
            "normalized_dram": result.dram_bytes / reference_dram,
            "normalized_sram": result.sram_bytes / reference_sram,
            "data_movement_fraction": result.energy.data_movement_fraction(),
        }
        for name, result in everything.items()
    }


def legacy_run_fig19(network="alexnet", scale=SCALE, seed=SEED):
    snn_network = get_network_workload(network).scaled(scale)
    loas = LoASSimulator().simulate_network(snn_network, rng=np.random.default_rng(seed))
    ptb = PTBSimulator().simulate_network(snn_network, rng=np.random.default_rng(seed))
    stellar = StellarSimulator().simulate_network(snn_network, rng=np.random.default_rng(seed))
    results = {"LoAS": loas, "PTB": ptb, "Stellar": stellar}
    return {
        name: {
            "speedup_vs_ptb": ptb.cycles / result.cycles,
            "normalized_energy": result.energy_pj / loas.energy_pj,
            "normalized_dram": result.dram_bytes / loas.dram_bytes,
            "normalized_sram": result.sram_bytes / loas.sram_bytes,
        }
        for name, result in results.items()
    }


# --------------------------------------------------------------------- #
# Equivalence: orchestrated == legacy serial, in serial and 2-worker modes
# --------------------------------------------------------------------- #
class TestSweepEquivalence:
    @pytest.mark.parametrize("workers", [None, 2])
    def test_run_networks_matches_legacy(self, workers):
        reference = legacy_run_networks()
        actual = run_networks(NETWORKS, scale=SCALE, seed=SEED, workers=workers)
        assert_sweeps_identical(reference, actual)

    @pytest.mark.parametrize("workers", [None, 2])
    def test_run_layers_matches_legacy(self, workers):
        reference = legacy_run_layers()
        actual = run_layers(LAYERS, scale=SCALE, seed=SEED, workers=workers)
        assert_sweeps_identical(reference, actual)

    def test_run_networks_without_finetuned(self):
        reference = legacy_run_networks(include_finetuned=False)
        actual = run_networks(NETWORKS, scale=SCALE, seed=SEED, include_finetuned=False)
        assert_sweeps_identical(reference, actual)

    @pytest.mark.parametrize("workers", [None, 2])
    def test_networks_under_explicit_default_arch_match_legacy(self, workers):
        # Pinning every cell to the default ArchSpec -- by preset name or by
        # explicit spec -- must not move a single bit of any payload.
        from dataclasses import replace as dataclass_replace

        from repro.arch import default_arch
        from repro.experiments.sweeps import network_sweep_plan

        reference = legacy_run_networks()
        for arch in ("loas-32nm", default_arch()):
            plan = network_sweep_plan(NETWORKS, scale=SCALE, seed=SEED)
            pinned = SweepPlan(
                plan.name,
                tuple(
                    dataclass_replace(
                        cell, simulator=dataclass_replace(cell.simulator, arch=arch)
                    )
                    for cell in plan.cells
                ),
                plan.config,
            )
            actual = SweepRunner(workers=workers).run(pinned).nested()
            assert_sweeps_identical(reference, actual)

    def test_networks_arch_parameter_default_is_bit_identical(self):
        reference = legacy_run_networks()
        actual = run_networks(NETWORKS, scale=SCALE, seed=SEED)
        via_arch = run_scenario(
            "networks", networks=NETWORKS, scale=SCALE, seed=SEED, arch="loas-32nm"
        )
        assert_sweeps_identical(reference, actual)
        assert_sweeps_identical(reference, via_arch)


class TestExperimentEquivalence:
    @pytest.mark.parametrize("workers", [None, 2])
    def test_fig5_matches_legacy(self, workers):
        assert legacy_run_fig5() == run_fig5(("V-L8",), scale=SCALE, seed=SEED, workers=workers)

    def test_fig12_matches_legacy_formula(self):
        raw = legacy_run_networks()
        reference = {}
        for network, per in raw.items():
            ref = per["SparTen-SNN"]
            reference[network] = {
                accel: {
                    "speedup": ref.cycles / result.cycles,
                    "energy_efficiency": ref.energy_pj / result.energy_pj,
                    "cycles": result.cycles,
                    "energy_pj": result.energy_pj,
                }
                for accel, result in per.items()
            }
        assert reference == run_fig12(NETWORKS, scale=SCALE, seed=SEED)

    def test_fig13_matches_legacy_formula(self):
        raw = legacy_run_networks()
        reference = {
            network: {
                accel: {
                    "offchip_kb": result.dram_bytes / 1e3,
                    "onchip_mb": result.sram_bytes / 1e6,
                }
                for accel, result in per.items()
            }
            for network, per in raw.items()
        }
        assert reference == run_fig13(NETWORKS, scale=SCALE, seed=SEED)

    def test_fig14_matches_legacy_formula(self):
        raw = legacy_run_layers()
        reference = {}
        for layer, per in raw.items():
            loas = per["LoAS"]
            loas_total = loas.dram_bytes or 1.0
            loas_miss = loas.sram_miss_rate or 1e-9
            reference[layer] = {}
            for accel, result in per.items():
                breakdown = result.dram.as_dict()
                reference[layer][accel] = {
                    "weight": breakdown.get("weight", 0.0) / loas_total,
                    "input": breakdown.get("input", 0.0) / loas_total,
                    "psum": breakdown.get("psum", 0.0) / loas_total,
                    "format": breakdown.get("format", 0.0) / loas_total,
                    "output": breakdown.get("output", 0.0) / loas_total,
                    "total": result.dram_bytes / loas_total,
                    "normalized_miss_rate": result.sram_miss_rate / loas_miss,
                }
        assert reference == run_fig14(LAYERS, scale=SCALE, seed=SEED)

    @pytest.mark.parametrize("workers", [None, 2])
    def test_fig17_matches_legacy(self, workers):
        assert legacy_run_fig17() == run_fig17(scale=0.1, seed=SEED, workers=workers)

    def test_fig18_matches_legacy(self):
        assert legacy_run_fig18() == run_fig18("alexnet", scale=SCALE, seed=SEED)

    @pytest.mark.parametrize("workers", [None, 2])
    def test_fig19_matches_legacy(self, workers):
        assert legacy_run_fig19() == run_fig19("alexnet", scale=SCALE, seed=SEED, workers=workers)


# --------------------------------------------------------------------- #
# Plans, partitions, registry
# --------------------------------------------------------------------- #
class TestPlanStructure:
    def test_product_order_and_count(self):
        plan = SweepPlan.product(
            "p",
            (WorkloadSpec("layer", "V-L8"), WorkloadSpec("layer", "A-L4")),
            (SimulatorSpec("LoAS"), SimulatorSpec("PTB")),
            seeds=(0, 1),
        )
        assert len(plan.cells) == 8
        # Workload-major, then seed, then simulator: cells of one
        # (workload, seed) partition are adjacent.
        assert [c.workload.name for c in plan.cells[:4]] == ["V-L8"] * 4
        assert [c.seed for c in plan.cells[:2]] == [0, 0]
        assert [c.simulator.key for c in plan.cells[:2]] == ["LoAS", "PTB"]

    def test_partitions_group_by_workload_and_seed(self):
        plan = SweepPlan.product(
            "p",
            (WorkloadSpec("layer", "V-L8"),),
            (SimulatorSpec("LoAS"), SimulatorSpec("PTB")),
            seeds=(0, 1),
        )
        partitions = plan.partitions()
        assert [len(p) for p in partitions] == [2, 2]
        assert partitions[0] == [0, 1]

    def test_simulator_spec_label_defaults_to_key(self):
        assert SimulatorSpec("LoAS").label == "LoAS"
        assert SimulatorSpec("LoAS", label="LoAS-FT").label == "LoAS-FT"

    def test_unknown_simulator_key_rejected(self):
        with pytest.raises(KeyError):
            SimulatorSpec("NoSuchAccelerator")

    def test_unknown_workload_kind_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec("tile", "V-L8")

    def test_plan_concatenation_preserves_tags(self):
        first = SweepPlan.product(
            "p", (WorkloadSpec("layer", "V-L8"),), (SimulatorSpec("LoAS"),), tag="a"
        )
        second = SweepPlan.product(
            "q", (WorkloadSpec("layer", "A-L4"),), (SimulatorSpec("LoAS"),), tag="b"
        )
        combined = first + second
        assert combined.name == "p"
        assert [c.tag for c in combined.cells] == ["a", "b"]

    def test_results_addressable_by_cell_and_tag(self):
        plan = SweepPlan.product(
            "p",
            (WorkloadSpec("layer", "V-L8", scale=0.05),),
            (SimulatorSpec("LoAS"),),
            seeds=(3,),
            tag="only",
        )
        results = SweepRunner().run(plan)
        assert len(results) == 1
        (cell, result) = next(iter(results))
        assert results[cell] is result
        assert results.tagged("only") == [(cell, result)]
        assert results.tagged("other") == []
        assert results.nested() == {"V-L8": {"LoAS": result}}

    def test_nested_refuses_to_collapse_duplicate_labels(self):
        # Same layer at two timesteps, same simulator label: a nested dict
        # would silently keep only the last cell's result.
        plan = SweepPlan.product(
            "p",
            (
                WorkloadSpec("layer", "V-L8", scale=0.05, timesteps=1),
                WorkloadSpec("layer", "V-L8", scale=0.05, timesteps=4),
            ),
            (SimulatorSpec("LoAS"),),
            seeds=(1,),
        )
        results = SweepRunner().run(plan)
        with pytest.raises(ValueError):
            results.nested()
        assert len(list(results)) == 2  # per-cell access still covers everything


class TestScenarioRegistry:
    def test_every_figure_and_table_is_registered(self):
        names = list_scenarios()
        for expected in (
            "networks",
            "layers",
            "fig5-psum-traffic",
            "fig11-preprocessing",
            "fig12-overall",
            "fig13-traffic",
            "fig14-breakdown",
            "fig16-temporal",
            "fig17-scalability",
            "fig18-snn-vs-ann",
            "fig19-dense-baselines",
            "table1-capabilities",
            "table2-workloads",
            "table4-area-power",
        ):
            assert expected in names

    def test_run_scenario_matches_run_function(self):
        via_scenario = run_scenario("fig13-traffic", networks=NETWORKS, scale=SCALE, seed=SEED)
        assert via_scenario == run_fig13(NETWORKS, scale=SCALE, seed=SEED)

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            run_scenario("fig99-does-not-exist")

    def test_bespoke_scenario_runs(self):
        data = run_scenario("table1-capabilities")
        assert "LoAS" in data

    def test_bespoke_scenario_rejects_unsupported_runner_options(self):
        # fig16 has no sweep behind it: a requested pool or disk tier must
        # fail loudly instead of being silently dropped.
        with pytest.raises(TypeError):
            run_scenario("fig16-temporal", workers=2)
        with pytest.raises(TypeError):
            run_scenario("table1-capabilities", cache_dir="/tmp/nowhere")


class TestDefaultSeed:
    def test_implicit_rng_fallback_is_the_documented_constant(self, tiny_workload):
        implicit = LoASSimulator().simulate_workload(tiny_workload)
        explicit = LoASSimulator().simulate_workload(
            tiny_workload, rng=np.random.default_rng(DEFAULT_RNG_SEED)
        )
        assert_results_identical(implicit, explicit)


class TestRunnerCacheDir:
    def test_sweep_with_disk_tier_matches_plain_sweep(self, tmp_path):
        plain = run_layers(LAYERS, scale=SCALE, seed=SEED)
        plan_runner = SweepRunner(cache_dir=tmp_path / "tier")
        from repro.experiments.sweeps import layer_sweep_plan

        via_tier_cold = plan_runner.run(layer_sweep_plan(LAYERS, scale=SCALE, seed=SEED)).nested()
        # Second run: a fresh in-process LRU would miss, but the disk tier
        # serves the tensors; results must stay bit-identical.
        from repro.engine import clear_default_cache

        clear_default_cache()
        via_tier_warm = plan_runner.run(layer_sweep_plan(LAYERS, scale=SCALE, seed=SEED)).nested()
        assert_sweeps_identical(plain, via_tier_cold)
        assert_sweeps_identical(plain, via_tier_warm)
        assert (tmp_path / "tier").exists()
