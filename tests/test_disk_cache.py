"""Disk evaluation-cache tier: bit-identity, atomicity, eviction, threading.

The on-disk tier must be indistinguishable from regeneration: a disk hit
returns bit-identical tensors *and* fast-forwards the caller's generator to
the exact post-generation state, so downstream randomness cannot diverge.
Torn writes (simulated by corrupting an entry file) must degrade to a miss,
and the byte budget must evict least-recently-used entries.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import LoASSimulator
from repro.engine import DiskEvaluationCache, WorkloadEvaluationCache
from repro.snn.network import LayerShape
from repro.snn.workloads import LayerWorkload, SparsityProfile


def make_workload(name="tiny", m=8, k=160, n=32, t=4) -> LayerWorkload:
    profile = SparsityProfile(0.881, 0.765, 0.868, 0.968)
    return LayerWorkload(LayerShape(name, m=m, k=k, n=n, t=t), profile)


@pytest.fixture
def tier(tmp_path) -> DiskEvaluationCache:
    return DiskEvaluationCache(tmp_path / "evals")


class TestRoundTrip:
    def test_disk_hit_is_bit_identical_to_generation(self, tier):
        workload = make_workload()
        warm_cache = WorkloadEvaluationCache(disk_tier=tier)
        rng_gen = np.random.default_rng(3)
        generated = warm_cache.evaluate(workload, rng_gen)
        assert tier.stores == 1

        cold_cache = WorkloadEvaluationCache(disk_tier=tier)  # fresh process stand-in
        rng_disk = np.random.default_rng(3)
        loaded = cold_cache.evaluate(workload, rng_disk)
        assert cold_cache.disk_hits == 1 and cold_cache.misses == 0
        assert np.array_equal(generated.spikes, loaded.spikes)
        assert np.array_equal(generated.weights, loaded.weights)
        assert generated.spikes.dtype == loaded.spikes.dtype
        assert generated.weights.dtype == loaded.weights.dtype

    def test_disk_hit_fast_forwards_the_generator(self, tier):
        workload = make_workload()
        rng_gen = np.random.default_rng(3)
        WorkloadEvaluationCache(disk_tier=tier).evaluate(workload, rng_gen)
        rng_disk = np.random.default_rng(3)
        WorkloadEvaluationCache(disk_tier=tier).evaluate(workload, rng_disk)
        assert rng_gen.bit_generator.state == rng_disk.bit_generator.state
        # Downstream draws stay bit-identical.
        assert np.array_equal(rng_gen.integers(0, 1 << 30, 8), rng_disk.integers(0, 1 << 30, 8))

    def test_simulation_through_disk_tier_matches_generation(self, tier):
        workload = make_workload()
        WorkloadEvaluationCache(disk_tier=tier).evaluate(workload, np.random.default_rng(3))

        cold_cache = WorkloadEvaluationCache(disk_tier=tier)
        loaded = cold_cache.evaluate(workload, np.random.default_rng(3))
        via_disk = LoASSimulator().simulate_workload(workload, evaluation=loaded)
        spikes, weights = workload.generate(rng=np.random.default_rng(3))
        via_tensors = LoASSimulator().simulate_layer(spikes, weights, name=workload.name)
        assert via_disk.cycles == via_tensors.cycles
        assert via_disk.dram.as_dict() == via_tensors.dram.as_dict()
        assert dict(via_disk.energy.entries) == dict(via_tensors.energy.entries)
        assert via_disk.ops == via_tensors.ops

    def test_loaded_tensors_are_read_only(self, tier):
        workload = make_workload()
        WorkloadEvaluationCache(disk_tier=tier).evaluate(workload, np.random.default_rng(0))
        loaded = WorkloadEvaluationCache(disk_tier=tier).evaluate(
            workload, np.random.default_rng(0)
        )
        with pytest.raises(ValueError):
            loaded.spikes[0, 0, 0] = 1

    def test_finetuned_variant_has_its_own_entry(self, tier):
        workload = make_workload()
        cache = WorkloadEvaluationCache(disk_tier=tier)
        cache.evaluate(workload, np.random.default_rng(2))
        cache.evaluate(workload, np.random.default_rng(2), finetuned=True)
        assert len(tier) == 2


class TestAtomicity:
    def test_corrupt_entry_is_dropped_and_regenerated(self, tier):
        workload = make_workload()
        generated = WorkloadEvaluationCache(disk_tier=tier).evaluate(
            workload, np.random.default_rng(3)
        )
        (entry,) = tier._entry_files()
        entry.write_bytes(b"torn write: not a zip archive")

        cache = WorkloadEvaluationCache(disk_tier=tier)
        rng = np.random.default_rng(3)
        regenerated = cache.evaluate(workload, rng)
        assert tier.corrupt_dropped == 1
        assert cache.misses == 1 and cache.disk_hits == 0
        assert np.array_equal(generated.spikes, regenerated.spikes)
        assert np.array_equal(generated.weights, regenerated.weights)
        # The regeneration re-published a clean entry.
        assert len(tier) == 1
        assert WorkloadEvaluationCache(disk_tier=tier).evaluate(
            workload, np.random.default_rng(3)
        ) is not None
        assert tier.hits == 1

    def test_truncated_entry_counts_as_miss(self, tier):
        workload = make_workload()
        WorkloadEvaluationCache(disk_tier=tier).evaluate(workload, np.random.default_rng(3))
        (entry,) = tier._entry_files()
        payload = entry.read_bytes()
        entry.write_bytes(payload[: len(payload) // 2])
        assert tier.load(("nonexistent",)) is None  # plain miss path
        cache = WorkloadEvaluationCache(disk_tier=tier)
        cache.evaluate(workload, np.random.default_rng(3))
        assert tier.corrupt_dropped == 1

    def test_no_temporary_files_left_behind(self, tier):
        workload = make_workload()
        WorkloadEvaluationCache(disk_tier=tier).evaluate(workload, np.random.default_rng(1))
        leftovers = [p for p in tier.directory.iterdir() if not p.name.endswith(".npz")]
        assert leftovers == []


class TestEviction:
    def test_max_bytes_budget_evicts_oldest(self, tmp_path):
        first = make_workload(name="w0", m=6)
        entry_bytes = self._entry_size(tmp_path / "probe", first)
        tier = DiskEvaluationCache(tmp_path / "evals", max_bytes=int(entry_bytes * 2.5))
        cache = WorkloadEvaluationCache(disk_tier=tier)
        workloads = [make_workload(name=f"w{m}", m=m) for m in (6, 7, 8)]
        paths = []
        for workload in workloads:
            cache.evaluate(workload, np.random.default_rng(0))
            newest = max(tier._entry_files(), key=lambda p: p.stat().st_mtime_ns)
            paths.append(newest)
        assert len(tier) == 2
        assert tier.total_bytes() <= tier.max_bytes
        assert not paths[0].exists()  # oldest entry evicted
        assert paths[1].exists() and paths[2].exists()

    def test_budget_smaller_than_one_entry_keeps_newest(self, tmp_path):
        tier = DiskEvaluationCache(tmp_path / "evals", max_bytes=16)
        cache = WorkloadEvaluationCache(disk_tier=tier)
        cache.evaluate(make_workload(name="a", m=6), np.random.default_rng(0))
        cache.evaluate(make_workload(name="b", m=7), np.random.default_rng(0))
        assert len(tier) == 1  # the just-stored entry survives

    def test_rejects_non_positive_budget(self, tmp_path):
        with pytest.raises(ValueError):
            DiskEvaluationCache(tmp_path, max_bytes=0)

    @staticmethod
    def _entry_size(directory, workload) -> int:
        probe = DiskEvaluationCache(directory)
        WorkloadEvaluationCache(disk_tier=probe).evaluate(workload, np.random.default_rng(0))
        return probe.total_bytes()


class TestThreadSafety:
    def test_concurrent_evaluations_share_one_entry(self):
        cache = WorkloadEvaluationCache()
        workload = make_workload()
        evaluations = []
        errors = []

        def worker():
            try:
                for _ in range(25):
                    evaluations.append(cache.evaluate(workload, np.random.default_rng(7)))
            except Exception as exc:  # pragma: no cover - failure diagnostics
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        assert len(cache) == 1
        assert cache.misses == 1
        assert cache.hits == 8 * 25 - 1
        first = evaluations[0]
        assert all(evaluation is first for evaluation in evaluations)

    def test_concurrent_distinct_workloads(self):
        cache = WorkloadEvaluationCache()
        workloads = [make_workload(name=f"w{i}", m=6 + i) for i in range(4)]
        errors = []

        def worker(workload):
            try:
                for _ in range(10):
                    cache.evaluate(workload, np.random.default_rng(1))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(w,)) for w in workloads for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(cache) == len(workloads)
        assert cache.misses == len(workloads)
        assert cache.hits + cache.misses == len(workloads) * 2 * 10
