"""Unit tests for network shapes, Table II workloads, training, pruning and
the fine-tuned preprocessing."""

import numpy as np
import pytest

from repro.snn.network import (
    LayerShape,
    REPRESENTATIVE_LAYERS,
    alexnet_layers,
    representative_layer,
    resnet19_layers,
    vgg16_layers,
)
from repro.snn.preprocessing import apply_low_activity_mask, finetuned_preprocessing_experiment
from repro.snn.pruning import PruningConfig, lottery_ticket_prune, magnitude_prune_masks, weight_sparsity
from repro.snn.training import (
    SpikingMLP,
    TrainingConfig,
    evaluate_accuracy,
    make_synthetic_classification,
    train,
)
from repro.snn.workloads import (
    TABLE2_LAYER_PROFILES,
    TABLE2_NETWORK_PROFILES,
    get_layer_workload,
    get_network_workload,
    list_layer_names,
    list_network_names,
)
from repro.sparse.matrix import silent_neuron_fraction, sparsity


class TestNetworkShapes:
    def test_layer_counts_match_table2(self):
        assert len(alexnet_layers()) == 7
        assert len(vgg16_layers()) == 14
        assert len(resnet19_layers()) == 19

    def test_representative_layer_shapes_exact(self):
        assert REPRESENTATIVE_LAYERS["A-L4"] == LayerShape("A-L4", 64, 3456, 256, 4)
        assert REPRESENTATIVE_LAYERS["V-L8"] == LayerShape("V-L8", 16, 2304, 512, 4)
        assert REPRESENTATIVE_LAYERS["R-L19"] == LayerShape("R-L19", 16, 2304, 512, 4)
        assert REPRESENTATIVE_LAYERS["T-HFF"] == LayerShape("T-HFF", 784, 3072, 3072, 4)

    def test_networks_embed_their_representative_layer(self):
        assert any(s.m == 64 and s.k == 3456 and s.n == 256 for s in alexnet_layers())
        assert any(s.m == 16 and s.k == 2304 and s.n == 512 for s in vgg16_layers())
        assert any(s.m == 16 and s.k == 2304 and s.n == 512 for s in resnet19_layers())

    def test_representative_layer_lookup_error(self):
        with pytest.raises(KeyError):
            representative_layer("bogus")

    def test_macs_properties(self):
        shape = LayerShape("x", 2, 3, 4, 5)
        assert shape.macs == 24
        assert shape.total_macs == 120

    def test_scaled_shrinks_spatial_dims_only(self):
        shape = LayerShape("x", 100, 200, 300, 4).scaled(0.5)
        assert (shape.m, shape.k, shape.n, shape.t) == (50, 100, 150, 4)

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            LayerShape("x", 1, 1, 1, 1).scaled(0)

    def test_timesteps_parameter(self):
        assert all(s.t == 8 for s in vgg16_layers(timesteps=8))


class TestWorkloads:
    def test_profile_values_match_table2(self):
        assert TABLE2_NETWORK_PROFILES["alexnet"].spike_sparsity == pytest.approx(0.812)
        assert TABLE2_NETWORK_PROFILES["vgg16"].weight_sparsity == pytest.approx(0.982)
        assert TABLE2_NETWORK_PROFILES["resnet19"].silent_fraction == pytest.approx(0.596)
        assert TABLE2_LAYER_PROFILES["V-L8"].silent_fraction_finetuned == pytest.approx(0.868)

    def test_list_names(self):
        assert list_network_names() == ["alexnet", "resnet19", "vgg16"]
        assert set(list_layer_names()) == {"A-L4", "V-L8", "R-L19", "T-HFF"}

    def test_unknown_names_rejected(self):
        with pytest.raises(KeyError):
            get_network_workload("lenet")
        with pytest.raises(KeyError):
            get_layer_workload("Z-L1")

    def test_network_workload_structure(self):
        net = get_network_workload("alexnet")
        assert net.num_layers == 7
        assert net.profile.weight_sparsity == pytest.approx(0.982)
        assert net.total_macs() > 0

    def test_generated_tensors_match_profile(self, rng):
        workload = get_layer_workload("V-L8").scaled(0.25)
        spikes, weights = workload.generate(rng=rng)
        assert sparsity(weights) == pytest.approx(0.968, abs=0.01)
        assert silent_neuron_fraction(spikes) == pytest.approx(0.765, abs=0.02)
        assert sparsity(spikes) == pytest.approx(0.881, abs=0.02)

    def test_finetuned_generation_has_more_silent_neurons(self, rng):
        workload = get_layer_workload("V-L8").scaled(0.25)
        spikes, _ = workload.generate(rng=np.random.default_rng(0))
        spikes_ft, _ = workload.generate(rng=np.random.default_rng(0), finetuned=True)
        assert silent_neuron_fraction(spikes_ft) > silent_neuron_fraction(spikes)

    def test_scaled_network(self):
        net = get_network_workload("vgg16").scaled(0.1)
        assert net.num_layers == 14
        assert net.layers[0].shape.m == 102

    def test_layer_timesteps_override(self):
        workload = get_layer_workload("A-L4", timesteps=8)
        assert workload.shape.t == 8


class TestTraining:
    @pytest.fixture
    def dataset(self, rng):
        return make_synthetic_classification(200, 16, 3, rng=rng)

    @pytest.fixture
    def model(self, rng):
        return SpikingMLP([16, 32, 3], timesteps=4, rng=rng)

    def test_dataset_shapes(self, dataset):
        inputs, labels = dataset
        assert inputs.shape == (200, 16)
        assert labels.shape == (200,)
        assert labels.max() < 3

    def test_forward_logits_shape(self, model, dataset):
        inputs, _ = dataset
        assert model.forward(inputs[:8]).shape == (8, 3)

    def test_training_reduces_loss(self, model, dataset, rng):
        inputs, labels = dataset
        losses = train(model, inputs, labels, TrainingConfig(epochs=6, learning_rate=0.1), rng=rng)
        assert losses[-1] < losses[0]

    def test_training_beats_chance(self, model, dataset, rng):
        inputs, labels = dataset
        train(model, inputs, labels, TrainingConfig(epochs=8, learning_rate=0.1), rng=rng)
        assert evaluate_accuracy(model, inputs, labels) > 1.0 / 3.0 + 0.1

    def test_model_requires_two_layers(self):
        with pytest.raises(ValueError):
            SpikingMLP([4])

    def test_hidden_spike_counts_shape(self, model, dataset):
        inputs, _ = dataset
        counts = model.hidden_spike_counts(inputs[:16])
        assert len(counts) == 1
        assert counts[0].shape == (32,)

    def test_predict_returns_labels(self, model, dataset):
        inputs, _ = dataset
        preds = model.predict(inputs[:10])
        assert preds.shape == (10,)
        assert preds.max() < 3


class TestPruning:
    @pytest.fixture
    def trained(self, rng):
        inputs, labels = make_synthetic_classification(150, 12, 3, rng=rng)
        model = SpikingMLP([12, 24, 3], timesteps=4, rng=rng)
        train(model, inputs, labels, TrainingConfig(epochs=3, learning_rate=0.1), rng=rng)
        return model, inputs, labels

    def test_magnitude_prune_reduces_density(self, trained):
        model, _, _ = trained
        masks = magnitude_prune_masks(model, 0.5)
        kept = sum(int(m.sum()) for m in masks)
        total = sum(m.size for m in masks)
        assert kept <= total * 0.55

    def test_magnitude_prune_zero_fraction_is_noop(self, trained):
        model, _, _ = trained
        masks = magnitude_prune_masks(model, 0.0)
        assert all(np.array_equal(a, b) for a, b in zip(masks, model.masks))

    def test_invalid_fraction_rejected(self, trained):
        model, _, _ = trained
        with pytest.raises(ValueError):
            magnitude_prune_masks(model, 1.0)

    def test_lottery_ticket_rounds_increase_sparsity(self, trained, rng):
        model, inputs, labels = trained
        config = PruningConfig(rounds=2, prune_fraction=0.4, training=TrainingConfig(epochs=2, learning_rate=0.1))
        history = lottery_ticket_prune(model, inputs, labels, config, rng=rng)
        assert len(history) == 3
        sparsities = [h.weight_sparsity for h in history]
        assert sparsities == sorted(sparsities)
        assert sparsities[-1] > 0.5

    def test_weight_sparsity_helper(self, trained):
        model, _, _ = trained
        assert weight_sparsity(model) == pytest.approx(0.0)


class TestPreprocessing:
    @pytest.fixture
    def trained(self, rng):
        inputs, labels = make_synthetic_classification(200, 16, 3, rng=rng)
        model = SpikingMLP([16, 48, 3], timesteps=4, rng=rng)
        train(model, inputs, labels, TrainingConfig(epochs=5, learning_rate=0.1), rng=rng)
        return model, inputs, labels

    def test_apply_low_activity_mask_returns_fraction(self, trained):
        model, inputs, _ = trained
        fraction = apply_low_activity_mask(model, inputs, max_spikes=1)
        assert 0.0 <= fraction <= 1.0

    def test_experiment_structure(self, trained, rng):
        model, inputs, labels = trained
        result = finetuned_preprocessing_experiment(
            model, inputs, labels, inputs, labels, finetune_epochs=(1, 3), rng=rng
        )
        assert set(result.finetuned_accuracy) == {1, 3}
        assert 0.0 <= result.masked_accuracy <= 1.0
        assert 0.0 <= result.original_accuracy <= 1.0

    def test_finetuning_recovers_accuracy(self, trained, rng):
        model, inputs, labels = trained
        result = finetuned_preprocessing_experiment(
            model, inputs, labels, inputs, labels, finetune_epochs=(5,),
            rng=rng,
        )
        # Fine-tuning should recover close to the pre-masking accuracy.
        assert result.finetuned_accuracy[5] >= result.masked_accuracy - 0.05
