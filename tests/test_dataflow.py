"""Unit tests for the dataflow loop-nest analysis and functional orderings."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.dataflow.functional import gustavson_spmspm, inner_product_spmspm, outer_product_spmspm
from repro.dataflow.loopnest import LoopNest, all_orders, dataflow_base_order
from repro.dataflow.temporal import best_placement, enumerate_t_placements, ftp_loopnest
from repro.snn.layers import spmspm_reference

BOUNDS = {"m": 8, "n": 16, "k": 32, "t": 4}


class TestLoopNest:
    def test_rejects_bad_order(self):
        with pytest.raises(ValueError):
            LoopNest(order=("m", "n", "k"), bounds=BOUNDS)

    def test_rejects_missing_bounds(self):
        with pytest.raises(ValueError):
            LoopNest(order=("m", "n", "k", "t"), bounds={"m": 2})

    def test_rejects_unknown_spatial(self):
        with pytest.raises(ValueError):
            LoopNest(order=("m", "n", "k", "t"), bounds=BOUNDS, spatial=frozenset({"z"}))

    def test_iteration_space(self):
        nest = LoopNest(order=("m", "n", "k", "t"), bounds=BOUNDS)
        assert nest.iteration_space() == 8 * 16 * 32 * 4

    def test_operand_footprints(self):
        nest = LoopNest(order=("m", "n", "k", "t"), bounds=BOUNDS)
        assert nest.operand_footprint("A") == 8 * 32 * 4
        assert nest.operand_footprint("B") == 32 * 16
        assert nest.operand_footprint("C") == 8 * 16 * 4

    def test_classic_inner_product_refetch(self):
        # ANN IP (no t): A refetched N times, B refetched M times, C touched once.
        nest = LoopNest(order=("m", "n", "k", "t"), bounds={**BOUNDS, "t": 1})
        assert nest.refetch_factor("A") == pytest.approx(BOUNDS["n"])
        assert nest.refetch_factor("B") == pytest.approx(BOUNDS["m"])

    def test_ftp_t_innermost_spatial_keeps_ann_refetch(self):
        nest = ftp_loopnest(BOUNDS)
        # Spatially unrolling t keeps the same refetch factors as the ANN IP.
        assert nest.refetch_factor("A") == pytest.approx(BOUNDS["n"])
        assert nest.refetch_factor("B") == pytest.approx(BOUNDS["m"])

    def test_sequential_t_above_k_multiplies_b_refetch(self):
        # t between n and k: B is re-fetched T more times than the ANN IP.
        nest = LoopNest(order=("m", "n", "t", "k"), bounds=BOUNDS)
        assert nest.refetch_factor("B") == pytest.approx(BOUNDS["m"] * BOUNDS["t"])

    def test_latency_iterations_spatial_t(self):
        sequential = LoopNest(order=("m", "n", "k", "t"), bounds=BOUNDS)
        parallel = ftp_loopnest(BOUNDS)
        assert sequential.latency_iterations() == parallel.latency_iterations() * BOUNDS["t"]

    def test_depth_and_t_position(self):
        nest = LoopNest(order=("m", "t", "n", "k"), bounds=BOUNDS)
        assert nest.depth("t") == 1
        assert nest.t_position() == 1
        assert not nest.is_t_innermost()

    def test_all_orders_counts(self):
        assert len(all_orders()) == 24
        assert len(all_orders(include_t=False)) == 6

    def test_dataflow_base_orders(self):
        assert dataflow_base_order("IP") == ("m", "n", "k")
        assert dataflow_base_order("OP") == ("k", "m", "n")
        assert dataflow_base_order("Gust") == ("m", "k", "n")
        with pytest.raises(KeyError):
            dataflow_base_order("XYZ")


class TestTemporalPlacement:
    def test_enumeration_size(self):
        placements = enumerate_t_placements("IP", BOUNDS)
        # 4 insertion positions + 1 spatial variant at the innermost slot.
        assert len(placements) == 5

    def test_ftp_is_the_best_ip_placement_for_latency(self):
        placements = enumerate_t_placements("IP", BOUNDS)
        ftp = best_placement(BOUNDS)
        assert ftp.latency_iterations == min(p.latency_iterations for p in placements)

    def test_ftp_minimises_a_refetch_among_ip_placements(self):
        placements = [p for p in enumerate_t_placements("IP", BOUNDS) if not p.t_spatial]
        ftp = best_placement(BOUNDS)
        assert ftp.a_refetch <= min(p.a_refetch for p in placements)
        assert ftp.b_refetch <= min(p.b_refetch for p in placements)

    def test_op_always_multiplies_partial_sums_by_t(self):
        # Observation 2: OP generates >= T times the ANN partial sums for any
        # sequential t placement.
        ann = LoopNest(order=("k", "m", "n", "t"), bounds={**BOUNDS, "t": 1}).partial_sum_writes()
        for placement in enumerate_t_placements("OP", BOUNDS, include_spatial=False):
            assert placement.partial_sums >= ann * BOUNDS["t"]

    def test_sequential_t_always_multiplies_latency(self):
        # Observation 3: any sequential t placement pays T times the latency.
        for dataflow in ("IP", "OP", "Gust"):
            for placement in enumerate_t_placements(dataflow, BOUNDS, include_spatial=False):
                assert placement.latency_iterations == BOUNDS["m"] * BOUNDS["n"] * BOUNDS["k"] * BOUNDS["t"]

    def test_spatial_variant_recovers_ann_latency(self):
        spatial = [p for p in enumerate_t_placements("IP", BOUNDS) if p.t_spatial]
        assert len(spatial) == 1
        assert spatial[0].latency_iterations == BOUNDS["m"] * BOUNDS["n"] * BOUNDS["k"]


class TestFunctionalDataflows:
    def test_all_dataflows_match_reference(self, small_layer):
        spikes, weights = small_layer
        reference = spmspm_reference(spikes, weights)
        assert np.array_equal(inner_product_spmspm(spikes, weights), reference)
        assert np.array_equal(outer_product_spmspm(spikes, weights), reference)
        assert np.array_equal(gustavson_spmspm(spikes, weights), reference)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            inner_product_spmspm(np.zeros((2, 3, 1)), np.zeros((4, 2)))

    @settings(max_examples=20, deadline=None)
    @given(
        arrays(np.uint8, st.tuples(st.integers(1, 4), st.integers(1, 8), st.integers(1, 4)), elements=st.integers(0, 1)),
        st.integers(1, 6),
    )
    def test_equivalence_property(self, spikes, n):
        rng = np.random.default_rng(0)
        weights = rng.integers(-3, 4, size=(spikes.shape[1], n))
        reference = spmspm_reference(spikes, weights)
        assert np.array_equal(inner_product_spmspm(spikes, weights), reference)
        assert np.array_equal(outer_product_spmspm(spikes, weights), reference)
        assert np.array_equal(gustavson_spmspm(spikes, weights), reference)
