"""Unit tests for the core building blocks: config, FTP, inner join, TPPE,
P-LIF, compressor and scheduler."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.compressor import OutputCompressor
from repro.core.config import LoASConfig
from repro.core.ftp import ftp_layer, ftp_spmspm
from repro.core.inner_join import InnerJoinUnit
from repro.core.plif import ParallelLIF
from repro.core.scheduler import Scheduler
from repro.core.tppe import TPPE
from repro.snn.layers import spmspm_reference
from repro.snn.lif import LIFParameters, lif_fire
from repro.sparse.bitmask import BitmaskMatrix
from repro.sparse.matrix import random_spike_tensor, random_weight_matrix
from repro.sparse.packed import PackedSpikeMatrix


class TestLoASConfig:
    def test_table3_defaults(self):
        config = LoASConfig()
        assert config.num_tppes == 16
        assert config.timesteps == 4
        assert config.weight_bits == 8
        assert config.global_cache_bytes == 256 * 1024
        assert config.cache_banks == 16
        assert config.dram.bandwidth_gbps == 128.0
        assert config.clock_ghz == 0.8

    def test_laggy_latency_is_8_cycles(self):
        assert LoASConfig().laggy_latency_cycles == 8

    def test_accumulators_per_tppe(self):
        assert LoASConfig().accumulators_per_tppe == 5
        assert LoASConfig(timesteps=8).accumulators_per_tppe == 9

    def test_bitmask_chunks(self):
        config = LoASConfig()
        assert config.bitmask_chunks(128) == 1
        assert config.bitmask_chunks(129) == 2
        assert config.bitmask_chunks(0) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            LoASConfig(num_tppes=0)
        with pytest.raises(ValueError):
            LoASConfig(timesteps=0)
        with pytest.raises(ValueError):
            LoASConfig().bitmask_chunks(-1)

    def test_with_timesteps(self):
        config = LoASConfig().with_timesteps(8)
        assert config.timesteps == 8
        assert config.num_tppes == 16


class TestFTPFunctional:
    def test_matches_reference(self, small_layer):
        spikes, weights = small_layer
        assert np.array_equal(ftp_spmspm(spikes, weights), spmspm_reference(spikes, weights))

    def test_layer_matches_reference_pipeline(self, small_layer):
        spikes, weights = small_layer
        output = ftp_layer(spikes, weights)
        assert np.array_equal(output.spikes, lif_fire(spmspm_reference(spikes, weights)))

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ftp_spmspm(np.zeros((2, 3, 1)), np.zeros((4, 2)))

    @settings(max_examples=20, deadline=None)
    @given(
        arrays(np.uint8, st.tuples(st.integers(1, 4), st.integers(1, 10), st.integers(1, 4)), elements=st.integers(0, 1)),
        st.integers(1, 5),
    )
    def test_ftp_equivalence_property(self, spikes, n):
        rng = np.random.default_rng(7)
        weights = rng.integers(-4, 5, size=(spikes.shape[1], n))
        weights[rng.random(weights.shape) < 0.5] = 0
        assert np.array_equal(ftp_spmspm(spikes, weights), spmspm_reference(spikes, weights))


def _fibers_for(spikes, weights, row, col):
    packed = PackedSpikeMatrix.from_dense(spikes)
    columns = BitmaskMatrix.from_dense(weights, axis="column")
    return packed.fiber(row), columns.fiber(col)


class TestInnerJoin:
    def test_per_timestep_sums_are_exact(self, small_layer):
        spikes, weights = small_layer
        reference = spmspm_reference(spikes, weights)
        unit = InnerJoinUnit()
        for row in range(0, spikes.shape[0], 3):
            for col in range(0, weights.shape[1], 7):
                spike_fiber, weight_fiber = _fibers_for(spikes, weights, row, col)
                result = unit.join(spike_fiber, weight_fiber)
                assert np.array_equal(result.per_timestep_sums, reference[row, col, :])

    def test_pseudo_minus_corrections_identity(self, small_layer):
        spikes, weights = small_layer
        spike_fiber, weight_fiber = _fibers_for(spikes, weights, 0, 0)
        result = InnerJoinUnit().join(spike_fiber, weight_fiber)
        assert np.array_equal(result.per_timestep_sums, result.pseudo_sum - result.corrections)

    def test_match_count(self, small_layer):
        spikes, weights = small_layer
        spike_fiber, weight_fiber = _fibers_for(spikes, weights, 1, 2)
        result = InnerJoinUnit().join(spike_fiber, weight_fiber)
        expected = int(np.sum((spikes[1].sum(axis=1) > 0) & (weights[:, 2] != 0)))
        assert result.matches == expected
        assert result.pseudo_accumulations == expected

    def test_all_ones_words_need_no_correction(self):
        spikes = np.ones((1, 6, 4), dtype=np.uint8)
        weights = np.arange(1, 7).reshape(6, 1)
        spike_fiber, weight_fiber = _fibers_for(spikes, weights, 0, 0)
        result = InnerJoinUnit().join(spike_fiber, weight_fiber)
        assert result.correction_accumulations == 0
        assert result.perfect_predictions == result.matches == 6

    def test_correction_count_equals_zero_bits_of_matched_words(self, small_layer):
        spikes, weights = small_layer
        spike_fiber, weight_fiber = _fibers_for(spikes, weights, 2, 3)
        result = InnerJoinUnit().join(spike_fiber, weight_fiber)
        matched = (spikes[2].sum(axis=1) > 0) & (weights[:, 3] != 0)
        zero_bits = int((spikes[2][matched] == 0).sum())
        assert result.correction_accumulations == zero_bits

    def test_cycles_model(self):
        config = LoASConfig()
        spikes = np.zeros((1, 200, 4), dtype=np.uint8)
        spikes[0, :10, 0] = 1
        weights = np.zeros((200, 1), dtype=np.int32)
        weights[:10, 0] = 1
        spike_fiber, weight_fiber = _fibers_for(spikes, weights, 0, 0)
        result = InnerJoinUnit(config).join(spike_fiber, weight_fiber)
        assert result.chunks == config.bitmask_chunks(200)
        assert result.cycles == result.chunks + result.matches + config.task_overhead_cycles

    def test_length_mismatch_rejected(self):
        spikes = np.ones((1, 4, 4), dtype=np.uint8)
        weights = np.ones((8, 1), dtype=np.int32)
        packed = PackedSpikeMatrix.from_dense(spikes)
        columns = BitmaskMatrix.from_dense(weights, axis="column")
        with pytest.raises(ValueError):
            InnerJoinUnit().join(packed.fiber(0), columns.fiber(0))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2 ** 31 - 1))
    def test_inner_join_property(self, seed):
        rng = np.random.default_rng(seed)
        spikes = random_spike_tensor(1, 40, 4, 0.7, silent_fraction=0.5, rng=rng)
        weights = random_weight_matrix(40, 1, 0.8, rng=rng)
        spike_fiber, weight_fiber = _fibers_for(spikes, weights, 0, 0)
        result = InnerJoinUnit().join(spike_fiber, weight_fiber)
        assert np.array_equal(result.per_timestep_sums, spmspm_reference(spikes, weights)[0, 0, :])


class TestParallelLIFAndTPPE:
    def test_plif_matches_lif_fire(self, rng):
        sums = rng.normal(size=(5, 7, 4)) * 3
        plif = ParallelLIF(LIFParameters())
        assert np.array_equal(plif.fire(sums), lif_fire(sums))

    def test_plif_fire_neuron(self, rng):
        sums = rng.normal(size=4) * 3
        plif = ParallelLIF(LIFParameters())
        assert np.array_equal(plif.fire_neuron(sums), lif_fire(sums[None, :])[0])

    def test_plif_fire_neuron_rejects_matrix(self):
        with pytest.raises(ValueError):
            ParallelLIF().fire_neuron(np.zeros((2, 4)))

    def test_plif_operation_count(self):
        assert ParallelLIF().lif_operations(10, 4) == 40

    def test_tppe_matches_full_reference(self, small_layer):
        spikes, weights = small_layer
        reference = lif_fire(spmspm_reference(spikes, weights))
        tppe = TPPE()
        spike_fiber, weight_fiber = _fibers_for(spikes, weights, 3, 5)
        result = tppe.process(spike_fiber, weight_fiber)
        assert np.array_equal(result.output_spikes, reference[3, 5, :])
        assert result.cycles == result.join.cycles + tppe.plif.latency_cycles


class TestCompressor:
    def test_roundtrip_without_preprocessing(self, rng):
        spikes = (rng.random((4, 40, 4)) > 0.8).astype(np.uint8)
        result = OutputCompressor().compress(spikes, preprocess=False)
        assert np.array_equal(result.packed.to_dense(), spikes)
        assert result.dropped_neurons == 0

    def test_preprocessing_drops_single_spike_neurons(self):
        spikes = np.zeros((1, 3, 4), dtype=np.uint8)
        spikes[0, 0, 0] = 1  # single spike -> dropped
        spikes[0, 1, 0] = 1
        spikes[0, 1, 1] = 1  # two spikes -> kept
        result = OutputCompressor().compress(spikes, preprocess=True)
        assert result.dropped_neurons == 1
        assert result.packed.nnz == 1

    def test_output_bytes_match_packed_storage(self, rng):
        spikes = (rng.random((4, 40, 4)) > 0.8).astype(np.uint8)
        config = LoASConfig()
        result = OutputCompressor(config).compress(spikes)
        assert result.output_bytes == pytest.approx(result.packed.storage_bytes(config.pointer_bits))

    def test_cycles_scale_with_rows_and_chunks(self):
        config = LoASConfig()
        spikes = np.zeros((8, 300, 4), dtype=np.uint8)
        result = OutputCompressor(config).compress(spikes)
        assert result.cycles == 8 * config.bitmask_chunks(300) * config.laggy_latency_cycles

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            OutputCompressor().compress(np.zeros((2, 2)))


class TestScheduler:
    def test_wave_count(self):
        scheduler = Scheduler(LoASConfig(num_tppes=16))
        assert scheduler.num_waves(32, 10) == 20
        assert scheduler.num_waves(17, 1) == 2
        assert scheduler.num_waves(0, 5) == 0

    def test_waves_cover_all_outputs(self):
        scheduler = Scheduler(LoASConfig(num_tppes=4))
        waves = scheduler.waves(6, 3)
        covered = {(row, wave.column) for wave in waves for row in wave.rows}
        assert covered == {(m, n) for m in range(6) for n in range(3)}

    def test_wave_rows_bounded_by_tppes(self):
        scheduler = Scheduler(LoASConfig(num_tppes=4))
        assert all(len(w.rows) <= 4 for w in scheduler.waves(10, 2))

    def test_pe_utilization(self):
        scheduler = Scheduler(LoASConfig(num_tppes=16))
        assert scheduler.pe_utilization(16, 4) == pytest.approx(1.0)
        assert scheduler.pe_utilization(8, 4) == pytest.approx(0.5)
        assert scheduler.pe_utilization(0, 0) == 0.0

    def test_negative_dimensions_rejected(self):
        with pytest.raises(ValueError):
            Scheduler().waves(-1, 2)
