"""Public API: Session façade, streaming, JSON schema, CLI, registry errors.

The acceptance contract of the API redesign:

* ``Session.stream()`` yields partitions incrementally and order-
  independently; the merged result is bit-identical to ``Session.run()``
  and to the legacy ``run_scenario`` path, for sweep scenarios in both
  serial and 2-worker modes,
* ``ScenarioResult.to_json()`` -> ``from_json()`` round-trips (including
  payloads of raw ``SimulationResult`` dataclasses),
* legacy ``run_*`` shims emit ``DeprecationWarning`` but return unchanged
  values,
* registry error paths (unknown scenario, duplicate registration, unknown
  simulator key) raise clear ``KeyError`` / ``ValueError`` messages.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro
from repro.api import (
    SCHEMA_VERSION,
    PartitionResult,
    ScenarioResult,
    Session,
    default_session,
)
from repro.api.cli import main as cli_main
from repro.engine import CacheStats, DiskEvaluationCache, WorkloadEvaluationCache
from repro.runner import Scenario, SimulatorSpec, register_scenario, run_scenario
from repro.runner.scenario import _SCENARIOS
from repro.snn.workloads import LayerWorkload, SparsityProfile
from repro.snn.network import LayerShape

SCALE = 0.06
SEED = 1

#: Two sweep-shaped scenarios with >= 2 partitions each (so the 2-worker
#: pool genuinely interleaves), one returning raw SimulationResults and one
#: returning plain floats.
SWEEP_CASES = (
    ("layers", {"layers": ("V-L8", "A-L4"), "scale": SCALE, "seed": SEED}),
    ("fig5-psum-traffic", {"layers": ("V-L8", "A-L4"), "scale": SCALE, "seed": SEED}),
)


# --------------------------------------------------------------------- #
# Streaming == batch == legacy, serial and pooled
# --------------------------------------------------------------------- #
class TestStreamingEquivalence:
    @pytest.mark.parametrize("name,params", SWEEP_CASES)
    @pytest.mark.parametrize("workers", [None, 2])
    def test_stream_matches_run_and_legacy(self, name, params, workers):
        session = Session()
        batch = session.run(name, workers=workers, **params)

        stream = session.stream(name, workers=workers, **params)
        partitions = list(stream)

        # Incremental: one PartitionResult per plan partition, each seen
        # exactly once whatever order the pool completed them in.
        assert all(isinstance(p, PartitionResult) for p in partitions)
        total = partitions[0].total
        assert len(partitions) == total
        assert sorted(p.index for p in partitions) == list(range(total))
        assert total >= 2
        for partition in partitions:
            assert partition.scenario == name
            assert partition.seed == SEED
            assert len(partition.results) == len(partition.cells)

        # Merged payload is bit-identical to the batch call...
        assert stream.result.payload == batch.payload
        assert stream.result.params == batch.params

        # ...and to the legacy run_scenario path.
        with pytest.warns(DeprecationWarning):
            legacy = run_scenario(name, workers=workers, **params)
        assert legacy == batch.payload

    def test_stream_result_requires_exhaustion(self):
        session = Session()
        stream = session.stream("fig5-psum-traffic", layers=("V-L8",), scale=SCALE)
        with pytest.raises(RuntimeError):
            stream.result
        assert stream.collect().payload == session.run(
            "fig5-psum-traffic", layers=("V-L8",), scale=SCALE
        ).payload

    def test_stream_rejects_bespoke_scenarios(self):
        with pytest.raises(ValueError, match="bespoke"):
            Session().stream("table1-capabilities")


# --------------------------------------------------------------------- #
# Session policy: defaults, overrides, strict vs soft options
# --------------------------------------------------------------------- #
class TestSessionPolicy:
    def test_session_scale_default_applies_to_declaring_scenarios(self):
        configured = Session(scale=SCALE)
        explicit = Session()
        assert (
            configured.run("layers", layers=("V-L8",), seed=SEED).payload
            == explicit.run("layers", layers=("V-L8",), scale=SCALE, seed=SEED).payload
        )

    def test_per_call_scale_beats_session_default(self):
        session = Session(scale=0.5)
        result = session.run("table2-workloads", scale=0.05)
        assert result.params["scale"] == 0.05

    def test_explicit_workers_on_bespoke_scenario_raises(self):
        with pytest.raises(TypeError, match="does not support"):
            Session().run("table1-capabilities", workers=2)
        with pytest.raises(TypeError, match="does not support"):
            Session().run("fig16-temporal", cache_dir="/tmp/nowhere")

    def test_session_workers_default_is_soft_for_bespoke(self):
        # A session-level pool is a default, not a per-scenario request:
        # bespoke scenarios that cannot honour it run serially.
        payload = Session(workers=2).run("table1-capabilities").payload
        assert "LoAS" in payload

    def test_bespoke_scenario_supporting_options_receives_session_default(self, tmp_path):
        session = Session(workers=2, cache_dir=tmp_path / "tier")
        result = session.run("fig18-snn-vs-ann", network="alexnet", scale=SCALE, seed=SEED)
        assert result.params["workers"] == 2
        # Provenance reports what actually ran, and the record stays
        # serialisable even though the session was given a pathlib.Path.
        assert result.provenance["workers"] == 2
        assert result.params["cache_dir"] == str(tmp_path / "tier")
        assert ScenarioResult.from_json(result.to_json()) == result
        with pytest.warns(DeprecationWarning):
            from repro.experiments import run_fig18

            legacy = run_fig18(network="alexnet", scale=SCALE, seed=SEED)
        assert result.payload == legacy

    def test_abandoned_stream_releases_disk_tier_on_close(self, tmp_path):
        from repro.engine import default_cache

        session = Session(cache_dir=tmp_path / "tier")
        stream = session.stream("fig5-psum-traffic", layers=("V-L8", "A-L4"), scale=SCALE)
        next(stream)  # start it, then abandon mid-sweep
        stream.close()
        assert default_cache().disk_tier is not session.disk_tier  # never attached
        # ...so an unrelated tier-less run no longer writes into the dir.
        before = len(session.disk_tier)
        Session().run("fig5-psum-traffic", layers=("V-L8",), scale=0.05)
        assert len(session.disk_tier) == before
        # A closed, partially consumed stream refuses to hand out a merged
        # result instead of finalising over half-filled slots.
        with pytest.raises(RuntimeError, match="closed before exhaustion"):
            stream.collect()

    def test_stream_usable_as_context_manager(self):
        with Session().stream("fig5-psum-traffic", layers=("V-L8",), scale=SCALE) as stream:
            partitions = list(stream)
        assert len(partitions) == 2
        assert stream.result.scenario == "fig5-psum-traffic"

    def test_interleaved_streams_share_the_disk_tier_correctly(self, tmp_path):
        from repro.engine import default_cache

        session = Session(cache_dir=tmp_path / "tier")
        reference = Session().run("fig5-psum-traffic", layers=("V-L8", "A-L4"), scale=SCALE)
        first = session.stream("fig5-psum-traffic", layers=("V-L8", "A-L4"), scale=SCALE)
        second = session.stream("fig5-psum-traffic", layers=("V-L8", "A-L4"), scale=SCALE)
        next(first)
        next(second)
        assert first.collect().payload == reference.payload
        assert second.collect().payload == reference.payload
        # Neither stream's completion left the session tier attached to the
        # process-wide cache.
        assert default_cache().disk_tier is not session.disk_tier

    def test_session_mp_context_reaches_bespoke_sweeps(self):
        session = Session(workers=2, mp_context="spawn")
        result = session.run("fig18-snn-vs-ann", network="alexnet", scale=SCALE, seed=SEED)
        assert result.params["mp_context"] == "spawn"
        # A per-call value always beats the session default.
        explicit = session.run(
            "fig18-snn-vs-ann", network="alexnet", scale=SCALE, seed=SEED, mp_context="fork"
        )
        assert explicit.params["mp_context"] == "fork"
        reference = Session().run("fig18-snn-vs-ann", network="alexnet", scale=SCALE, seed=SEED)
        assert result.payload == reference.payload  # policy changes nothing numeric

    def test_experiment_module_reload_is_harmless(self):
        import importlib

        import repro.experiments.tables as tables

        importlib.reload(tables)  # re-registers table1/2/4: must not raise
        assert "table2-workloads" in Session().scenarios()

    def test_bespoke_scenario_uses_the_session_owned_tier(self, tmp_path):
        from repro.engine import clear_default_cache

        session = Session(cache_dir=tmp_path / "tier", disk_max_bytes=50_000_000)
        clear_default_cache()
        session.run("fig18-snn-vs-ann", network="alexnet", scale=SCALE, seed=SEED)
        # The run went through the session's own DiskEvaluationCache object
        # (not a rebuilt one), so its counters saw the stores.
        assert session.disk_tier.stats().stores >= 1

    def test_default_session_is_a_singleton(self):
        assert default_session() is default_session()

    def test_stream_provenance_ignores_work_before_first_partition(self):
        session = Session()
        session.run("fig5-psum-traffic", layers=("V-L8",), scale=SCALE)  # warm up
        expected = session.run("fig5-psum-traffic", layers=("V-L8",), scale=SCALE)
        stream = session.stream("fig5-psum-traffic", layers=("V-L8",), scale=SCALE)
        # Interleave an unrelated run between stream() and consumption: its
        # cache activity must not leak into the stream's counter deltas
        # (baselines are captured at first __next__, not at stream()).
        session.run("layers", layers=("A-L4",), scale=SCALE, seed=SEED)
        assert stream.collect().provenance["cache"] == expected.provenance["cache"]

    def test_provenance_scope_reflects_actual_execution_mode(self):
        session = Session(workers=2)
        # One partition: the executor falls back to serial, and the record
        # must say the in-process counters are complete.
        single = session.run("layers", layers=("V-L8",), scale=SCALE, seed=SEED)
        assert single.provenance["cache"]["scope"] == "in-process"
        # Two partitions: genuinely pooled, counters live in the workers.
        pooled = session.run("layers", layers=("V-L8", "A-L4"), scale=SCALE, seed=SEED)
        assert "worker processes" in pooled.provenance["cache"]["scope"]

    def test_cache_stats_is_read_only(self, tmp_path, capsys):
        missing = tmp_path / "never-created"
        assert cli_main(["cache", "stats", "--cache-dir", str(missing)]) == 0
        capsys.readouterr()
        assert not missing.exists()  # inspecting stats must not mkdir

    def test_session_accepts_a_tier_instance_without_rewrapping(self, tmp_path):
        tier = DiskEvaluationCache(tmp_path / "tier", max_bytes=1_000_000)
        session = Session(cache_dir=tier)
        assert session.disk_tier is tier  # budget and counters preserved

    def test_per_call_cache_dir_does_not_inherit_session_budget(self, tmp_path):
        session = Session(cache_dir=tmp_path / "own", disk_max_bytes=123)
        foreign = session._tier_for(tmp_path / "foreign")
        assert foreign.max_bytes is None  # never evict another tool's dir
        # Equivalent spellings of the session's own directory reuse its
        # tier (budget and counters included).
        assert session._tier_for(str(tmp_path / "own") + "/") is session.disk_tier

    def test_unknown_param_rejected_with_clear_message_in_api(self):
        with pytest.raises(TypeError, match="does not accept parameter 'bogus'"):
            Session().run("table2-workloads", bogus=1)
        with pytest.raises(TypeError, match="does not accept parameter 'bogus'"):
            Session().stream("fig5-psum-traffic", bogus=1)

    def test_disk_tier_duck_types_as_a_path(self, tmp_path):
        from pathlib import Path

        tier = DiskEvaluationCache(tmp_path / "tier")
        # Legacy scenario code receives cache_dir and treats it as a path.
        assert Path(tier) == tmp_path / "tier"
        assert str(tier) == str(tmp_path / "tier")

    def test_provenance_records_version_seeds_and_cache(self):
        result = Session().run("layers", layers=("V-L8",), scale=SCALE, seed=SEED)
        assert result.provenance["package_version"] == repro.__version__
        assert result.provenance["seeds"] == (SEED,)
        assert result.provenance["cells"] == 4
        assert result.provenance["partitions"] == 1
        cache = result.provenance["cache"]
        assert cache["lru_hits"] + cache["lru_misses"] >= 1


# --------------------------------------------------------------------- #
# ScenarioResult JSON schema
# --------------------------------------------------------------------- #
class TestScenarioResultSchema:
    def test_round_trip_with_simulation_result_payload(self):
        result = Session().run("layers", layers=("V-L8",), scale=SCALE, seed=SEED)
        decoded = ScenarioResult.from_json(result.to_json())
        assert decoded == result
        # The payload really is reconstructed dataclasses, not dicts.
        restored = decoded.payload["V-L8"]["LoAS"]
        assert restored.dram.as_dict() == result.payload["V-L8"]["LoAS"].dram.as_dict()
        assert restored.energy.total() == result.payload["V-L8"]["LoAS"].energy.total()

    def test_round_trip_preserves_tuples_in_params(self):
        result = Session().run("fig5-psum-traffic", layers=("V-L8",), scale=SCALE)
        decoded = ScenarioResult.from_json(result.to_json())
        assert decoded.params["layers"] == ("V-L8",)
        assert isinstance(decoded.params["layers"], tuple)
        assert decoded.provenance["seeds"] == result.provenance["seeds"]

    def test_bespoke_payload_round_trip(self):
        result = Session().run("table2-workloads", scale=0.05)
        assert ScenarioResult.from_json(result.to_json()) == result

    def test_unknown_schema_version_rejected(self):
        result = Session().run("table1-capabilities")
        document = json.loads(result.to_json())
        document["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema version"):
            ScenarioResult.from_json(json.dumps(document))

    def test_unserialisable_payload_raises_cleanly(self):
        record = ScenarioResult(scenario="x", params={}, payload=object())
        with pytest.raises(TypeError, match="cannot serialise"):
            record.to_json()

    def test_numpy_scalars_inside_simulation_results_are_coerced(self):
        result = Session().run("layers", layers=("V-L8",), scale=SCALE, seed=SEED)
        target = result.payload["V-L8"]["LoAS"]
        target.extra["probe"] = np.int64(3)  # simulators assign raw np values
        try:
            decoded = ScenarioResult.from_json(result.to_json())
        finally:
            del target.extra["probe"]
        assert decoded.payload["V-L8"]["LoAS"].extra["probe"] == 3

    def test_non_string_dict_keys_rejected_not_coerced(self):
        # Coercing 1 -> "1" would silently break from_json(to_json()) == x.
        record = ScenarioResult(scenario="x", params={}, payload={1: 2.0})
        with pytest.raises(TypeError, match="dict key"):
            record.to_json()


# --------------------------------------------------------------------- #
# Legacy shims
# --------------------------------------------------------------------- #
class TestDeprecationShims:
    def test_run_networks_warns_but_returns_unchanged_payload(self):
        from repro.experiments import run_networks

        session_payload = Session().run(
            "networks", networks=("alexnet",), scale=SCALE, seed=SEED
        ).payload
        with pytest.warns(DeprecationWarning, match="run_networks"):
            legacy = run_networks(networks=("alexnet",), scale=SCALE, seed=SEED)
        assert legacy == session_payload

    def test_run_table2_warns_but_returns_unchanged_payload(self):
        from repro.experiments import run_table2

        session_payload = Session().run("table2-workloads", scale=0.05).payload
        with pytest.warns(DeprecationWarning, match="run_table2"):
            legacy = run_table2(scale=0.05)
        assert legacy == session_payload

    def test_run_scenario_warns(self):
        with pytest.warns(DeprecationWarning, match="run_scenario"):
            run_scenario("table1-capabilities")


# --------------------------------------------------------------------- #
# Registry error paths
# --------------------------------------------------------------------- #
class TestRegistryErrors:
    def test_unknown_scenario_name_raises_keyerror_with_candidates(self):
        with pytest.raises(KeyError, match="unknown scenario 'fig99-nope'"):
            Session().run("fig99-nope")

    def test_duplicate_registration_raises(self):
        scenario = Scenario(name="test-api-duplicate", run=lambda **_: {})
        register_scenario(scenario)
        try:
            # The identical object re-registers silently, and so does the
            # reload-equivalent form (same module/qualname fresh function
            # objects, as importlib.reload produces)...
            register_scenario(scenario)
            register_scenario(Scenario(name="test-api-duplicate", run=lambda **_: {}))
            # ...but a genuinely different scenario under the same name is
            # an error.
            with pytest.raises(ValueError, match="already registered"):
                register_scenario(
                    Scenario(
                        name="test-api-duplicate",
                        description="a different experiment",
                        run=lambda **_: {},
                    )
                )

            def other_run(**_):
                return {"v": 2}

            with pytest.raises(ValueError, match="already registered"):
                register_scenario(Scenario(name="test-api-duplicate", run=other_run))
            # replace=True overrides on purpose.
            replacement = Scenario(name="test-api-duplicate", run=other_run)
            register_scenario(replacement, replace=True)
            assert _SCENARIOS["test-api-duplicate"] is replacement
        finally:
            del _SCENARIOS["test-api-duplicate"]

    def test_unknown_simulator_key_raises_keyerror_with_candidates(self):
        with pytest.raises(KeyError, match="unknown simulator 'Imaginary'"):
            SimulatorSpec("Imaginary")


# --------------------------------------------------------------------- #
# Cache stats
# --------------------------------------------------------------------- #
class TestCacheStats:
    def _workload(self, k: int) -> LayerWorkload:
        profile = SparsityProfile(0.881, 0.765, 0.868, 0.968)
        return LayerWorkload(LayerShape("tiny", m=8, k=k, n=16, t=4), profile)

    def test_lru_stats_report_hits_misses_and_evictions(self):
        cache = WorkloadEvaluationCache(maxsize=1)
        rng = np.random.default_rng(0)
        cache.evaluate(self._workload(96), rng)
        cache.evaluate(self._workload(128), rng)  # evicts the first entry
        stats = cache.stats()
        assert isinstance(stats, CacheStats)
        assert stats.misses == 2
        assert stats.evictions == 1
        assert stats.entries == 1
        assert stats.maxsize == 1

    def test_lru_resize_trims_and_counts_evictions(self):
        cache = WorkloadEvaluationCache(maxsize=4)
        rng = np.random.default_rng(0)
        for k in (96, 128, 160):
            cache.evaluate(self._workload(k), rng)
        cache.resize(1)
        assert len(cache) == 1
        assert cache.stats().evictions == 2

    def test_disk_stats_report_occupancy_and_evictions(self, tmp_path):
        tier = DiskEvaluationCache(tmp_path, max_bytes=1)  # one-entry budget
        state = {"state": 0}
        spikes = np.ones((4, 8, 2), dtype=np.uint8)
        weights = np.ones((8, 4), dtype=np.int8)
        tier.store(("a",), spikes, weights, state)
        tier.store(("b",), spikes, weights, state)  # pushes "a" out
        stats = tier.stats()
        assert stats.stores == 2
        assert stats.evictions >= 1
        assert stats.entries == 1
        assert stats.total_bytes > 0

    def test_session_cache_stats_shape(self, tmp_path):
        from repro.engine import clear_default_cache

        session = Session(cache_dir=tmp_path / "tier")
        clear_default_cache()  # force a miss so the run spills to the tier
        session.run("layers", layers=("V-L8",), scale=SCALE, seed=SEED)
        snapshot = session.cache_stats()
        assert isinstance(snapshot["lru"], CacheStats)
        assert isinstance(snapshot["disk"], CacheStats)
        assert snapshot["disk"].entries >= 1  # the serial run spilled tensors


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #
class TestCli:
    def test_list_names_every_scenario(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig13-traffic", "table2-workloads", "networks"):
            assert name in out

    def test_describe_shows_defaults_and_streaming(self, capsys):
        assert cli_main(["describe", "fig13-traffic"]) == 0
        out = capsys.readouterr().out
        assert "sweep scenario" in out
        assert "networks = ('alexnet', 'vgg16', 'resnet19')" in out
        assert "--stream" in out

    def test_run_json_emits_a_decodable_record(self, capsys):
        assert cli_main(["run", "table2-workloads", "--scale", "0.05", "--json"]) == 0
        out = capsys.readouterr().out
        record = ScenarioResult.from_json(out)
        assert record.scenario == "table2-workloads"
        assert record.params["scale"] == 0.05
        assert record.provenance["package_version"] == repro.__version__

    def test_run_stream_reports_partitions_on_stderr(self, capsys):
        code = cli_main(
            [
                "run",
                "fig5-psum-traffic",
                "--scale",
                str(SCALE),
                "--set",
                "layers=('V-L8',)",
                "--stream",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "[2/2]" in captured.err
        payload = json.loads(captured.out)
        assert "V-L8" in payload

    def test_run_payload_matches_session(self, capsys):
        assert cli_main(["run", "fig5-psum-traffic", "--scale", str(SCALE)]) == 0
        cli_payload = json.loads(capsys.readouterr().out)
        session_payload = Session().run("fig5-psum-traffic", scale=SCALE).payload
        assert cli_payload == session_payload

    def test_unknown_scenario_exits_2_with_message(self, capsys):
        assert cli_main(["run", "fig99-nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_reserved_set_keys_exit_2(self, capsys):
        assert cli_main(["run", "fig18-snn-vs-ann", "--set", "workers=2"]) == 2
        assert "--workers flag" in capsys.readouterr().err

    def test_unsupported_option_on_bespoke_exits_2(self, capsys):
        assert cli_main(["run", "table1-capabilities", "--workers", "2"]) == 2
        assert "does not support" in capsys.readouterr().err
        assert cli_main(["run", "table1-capabilities", "--stream"]) == 2
        assert "bespoke" in capsys.readouterr().err

    def test_unknown_scenario_param_exits_2(self, capsys):
        assert cli_main(["run", "fig5-psum-traffic", "--set", "no_such_param=1"]) == 2
        assert "does not accept parameter 'no_such_param'" in capsys.readouterr().err
        # Bespoke scenarios with undeclared-but-accepted params still work.
        assert cli_main(["run", "table2-workloads", "--seed", "3", "--scale", "0.05"]) == 0
        capsys.readouterr()

    def test_library_errors_keep_their_traceback(self):
        # A well-named param with a nonsense value fails inside the plan
        # builder: that is a real exception with a traceback, not a
        # flattened exit-2 one-liner.
        with pytest.raises(TypeError):
            cli_main(["run", "fig5-psum-traffic", "--set", "layers=3"])

    def test_cache_stats_and_clear(self, tmp_path, capsys):
        tier = str(tmp_path / "tier")
        assert cli_main(["cache", "stats", "--cache-dir", tier]) == 0
        out = capsys.readouterr().out
        assert "lru (this process):" in out
        assert "total_bytes" in out
        assert cli_main(["cache", "clear", "--cache-dir", tier]) == 0
        assert "removed 0 disk entries" in capsys.readouterr().out
        # Without a disk tier there is nothing a fresh process could clear.
        assert cli_main(["cache", "clear"]) == 2
        assert "nothing to clear" in capsys.readouterr().err
