"""Unit tests for LIF dynamics, the functional layer and spike encodings."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.snn.encoding import direct_encode, poisson_encode, rate_decode
from repro.snn.layers import SNNLinearLayer, spmspm_reference
from repro.snn.lif import LIFNeuron, LIFParameters, lif_fire, lif_step


class TestLIFParameters:
    def test_defaults(self):
        params = LIFParameters()
        assert params.threshold == 1.0
        assert 0 < params.leak <= 1

    def test_invalid_leak_rejected(self):
        with pytest.raises(ValueError):
            LIFParameters(leak=0.0)
        with pytest.raises(ValueError):
            LIFParameters(leak=1.5)


class TestLIFStep:
    def test_fires_above_threshold(self):
        spikes, membrane = lif_step(np.array([2.0]), np.array([0.0]), LIFParameters(threshold=1.0))
        assert spikes[0] == 1
        assert membrane[0] == 0.0  # hard reset

    def test_no_fire_below_threshold(self):
        spikes, membrane = lif_step(np.array([0.4]), np.array([0.0]), LIFParameters(threshold=1.0, leak=0.5))
        assert spikes[0] == 0
        assert membrane[0] == pytest.approx(0.2)

    def test_membrane_carry_over_triggers_fire(self):
        params = LIFParameters(threshold=1.0, leak=1.0)
        spikes, membrane = lif_step(np.array([0.6]), np.array([0.6]), params)
        assert spikes[0] == 1

    def test_exactly_at_threshold_does_not_fire(self):
        spikes, _ = lif_step(np.array([1.0]), np.array([0.0]), LIFParameters(threshold=1.0))
        assert spikes[0] == 0


class TestLIFFire:
    def test_output_shape_and_dtype(self):
        currents = np.zeros((3, 5, 4))
        spikes = lif_fire(currents)
        assert spikes.shape == (3, 5, 4)
        assert spikes.dtype == np.uint8

    def test_constant_super_threshold_input_fires_every_step(self):
        currents = np.full((1, 1, 4), 5.0)
        assert lif_fire(currents, LIFParameters(threshold=1.0)).sum() == 4

    def test_subthreshold_accumulation_with_no_leak(self):
        currents = np.full((1, 1, 4), 0.6)
        spikes = lif_fire(currents, LIFParameters(threshold=1.0, leak=1.0))
        # Fires on every second timestep: 0.6, 1.2->fire, 0.6, 1.2->fire.
        assert spikes[0, 0].tolist() == [0, 1, 0, 1]

    def test_zero_input_never_fires(self):
        assert lif_fire(np.zeros((2, 2, 3))).sum() == 0


class TestLIFNeuron:
    def test_stateful_forward_matches_lif_fire(self):
        rng = np.random.default_rng(0)
        currents = rng.normal(size=(4, 6, 5))
        neuron = LIFNeuron((4, 6))
        stepped = np.stack([neuron.forward(currents[:, :, t]) for t in range(5)], axis=-1)
        assert np.array_equal(stepped, lif_fire(currents))

    def test_reset_clears_membrane(self):
        neuron = LIFNeuron((2,), LIFParameters(threshold=1.0, leak=1.0))
        neuron.forward(np.array([0.6, 0.6]))
        neuron.reset()
        assert np.all(neuron.membrane == 0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LIFNeuron((2,)).forward(np.zeros(3))


class TestSpMspMReference:
    def test_matches_manual_matmul(self, rng):
        spikes = (rng.random((3, 7, 2)) > 0.5).astype(np.uint8)
        weights = rng.integers(-5, 5, size=(7, 4))
        expected = np.stack([spikes[:, :, t] @ weights for t in range(2)], axis=-1)
        assert np.array_equal(spmspm_reference(spikes, weights), expected)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            spmspm_reference(np.zeros((2, 3, 1)), np.zeros((4, 2)))

    def test_rejects_bad_ranks(self):
        with pytest.raises(ValueError):
            spmspm_reference(np.zeros((2, 3)), np.zeros((3, 2)))
        with pytest.raises(ValueError):
            spmspm_reference(np.zeros((2, 3, 1)), np.zeros((3,)))


class TestSNNLinearLayer:
    def test_forward_shapes(self, small_layer):
        spikes, weights = small_layer
        layer = SNNLinearLayer(weights)
        output = layer(spikes)
        assert output.full_sums.shape == (8, 24, 4)
        assert output.spikes.shape == (8, 24, 4)

    def test_spikes_are_unary(self, small_layer):
        spikes, weights = small_layer
        output = SNNLinearLayer(weights)(spikes)
        assert set(np.unique(output.spikes)).issubset({0, 1})

    def test_input_output_size_properties(self, small_layer):
        _, weights = small_layer
        layer = SNNLinearLayer(weights)
        assert layer.input_size == 96
        assert layer.output_size == 24

    def test_rejects_1d_weights(self):
        with pytest.raises(ValueError):
            SNNLinearLayer(np.zeros(4))

    def test_matches_reference_pipeline(self, small_layer):
        spikes, weights = small_layer
        layer = SNNLinearLayer(weights)
        output = layer(spikes)
        assert np.array_equal(output.spikes, lif_fire(spmspm_reference(spikes, weights), layer.lif))


class TestEncoding:
    def test_direct_encode_shape(self, rng):
        inputs = rng.random((5, 8))
        weights = rng.normal(size=(8, 12))
        spikes = direct_encode(inputs, weights, timesteps=4)
        assert spikes.shape == (5, 12, 4)
        assert set(np.unique(spikes)).issubset({0, 1})

    def test_direct_encode_dimension_check(self, rng):
        with pytest.raises(ValueError):
            direct_encode(rng.random((5, 8)), rng.random((9, 12)), 4)

    def test_poisson_encode_rates(self, rng):
        inputs = np.array([0.0, 1.0])
        spikes = poisson_encode(inputs, timesteps=200, rng=rng)
        assert spikes[0].sum() == 0
        assert spikes[1].sum() == 200

    def test_poisson_encode_intermediate_rate(self, rng):
        spikes = poisson_encode(np.full(50, 0.5), timesteps=100, rng=rng)
        assert spikes.mean() == pytest.approx(0.5, abs=0.05)

    def test_rate_decode_inverts_rates(self, rng):
        spikes = poisson_encode(np.full(20, 0.3), timesteps=400, rng=rng)
        assert rate_decode(spikes).mean() == pytest.approx(0.3, abs=0.05)

    @settings(max_examples=20, deadline=None)
    @given(arrays(np.float64, st.tuples(st.integers(1, 4), st.integers(1, 6)), elements=st.floats(0, 1)))
    def test_poisson_encode_is_unary(self, inputs):
        spikes = poisson_encode(inputs, timesteps=3, rng=np.random.default_rng(0))
        assert set(np.unique(spikes)).issubset({0, 1})
