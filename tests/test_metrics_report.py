"""Unit tests for the reporting helpers."""

import pytest

from repro.metrics.report import format_ratio, format_series, format_table, normalise


class TestFormatTable:
    def test_contains_headers_and_rows(self):
        text = format_table(["a", "b"], [[1, 2], [3, 4]])
        assert "a" in text and "b" in text
        assert "3" in text and "4" in text

    def test_title_is_first_line(self):
        text = format_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_floats_are_compact(self):
        text = format_table(["x"], [[1.23456789]])
        assert "1.235" in text

    def test_column_alignment(self):
        text = format_table(["col"], [["short"], ["a-much-longer-cell"]])
        lines = text.splitlines()
        assert len(lines[-1]) >= len("a-much-longer-cell")


class TestFormatSeries:
    def test_series_layout(self):
        text = format_series({"LoAS": {"vgg16": 1.0, "alexnet": 2.0}, "SparTen": {"vgg16": 0.5}})
        assert "LoAS" in text and "SparTen" in text
        assert "vgg16" in text and "alexnet" in text

    def test_missing_values_are_nan(self):
        text = format_series({"a": {"x": 1.0}, "b": {"y": 2.0}})
        assert "nan" in text


class TestNormalise:
    def test_normalise_to_reference(self):
        values = {"a": 10.0, "b": 5.0}
        assert normalise(values, "a") == {"a": 1.0, "b": 0.5}

    def test_missing_reference_rejected(self):
        with pytest.raises(KeyError):
            normalise({"a": 1.0}, "b")

    def test_zero_reference_rejected(self):
        with pytest.raises(ZeroDivisionError):
            normalise({"a": 0.0}, "a")


class TestFormatRatio:
    def test_basic(self):
        assert format_ratio(3.2545) == "3.25x"
        assert format_ratio(3.2545, precision=1) == "3.3x"
