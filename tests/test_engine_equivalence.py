"""Equivalence suite for the shared workload-evaluation engine.

Two families of guarantees are asserted here:

1. **Statistics equivalence** -- every vectorised quantity the engine
   computes (full sums, matches, true accumulations, activity profiles,
   packed-format accounting) is bit-identical to a straightforward
   loop-based reference that mirrors the seed implementation.
2. **Simulator equivalence** -- every accelerator produces a
   ``SimulationResult`` through the cached-engine path
   (``simulate_workload`` / ``simulate_network``) that is bit-identical to
   simulating the very same tensors through the raw ``simulate_layer``
   entry point, and repeated cached evaluations replay the generator
   stream exactly.
"""

import numpy as np
import pytest

from repro.baselines import (
    GammaANN,
    GammaSNN,
    GoSPASNN,
    PTBSimulator,
    SparTenANN,
    SparTenSNN,
)
from repro.baselines.stellar import StellarSimulator
from repro.core import LoASSimulator
from repro.engine import (
    LayerEvaluation,
    WorkloadEvaluationCache,
    default_cache,
    workload_fingerprint,
)
from repro.snn.lif import lif_fire
from repro.snn.network import LayerShape
from repro.snn.workloads import LayerWorkload, SparsityProfile, get_layer_workload
from repro.sparse.matrix import (
    mask_low_activity_neurons,
    random_spike_tensor,
    random_weight_matrix,
)

ALL_SNN_SIMULATORS = [
    LoASSimulator,
    SparTenSNN,
    GoSPASNN,
    GammaSNN,
    PTBSimulator,
    StellarSimulator,
]

REPRESENTATIVE_LAYERS = ("A-L4", "V-L8", "R-L19", "T-HFF")


# --------------------------------------------------------------------- #
# Loop-based references mirroring the seed implementation
# --------------------------------------------------------------------- #
def reference_full_sums(spikes, weights):
    """Per-timestep float64 GEMM loop (the seed ``full_sums`` computation)."""
    m, k, t = spikes.shape
    n = weights.shape[1]
    full_sums = np.zeros((m, n, t), dtype=np.float64)
    for ti in range(t):
        full_sums[:, :, ti] = spikes[:, :, ti].astype(np.float64) @ weights.astype(np.float64)
    return full_sums


def reference_statistics(spikes, weights):
    """Seed-style loop computation of the per-layer statistics."""
    m, k, t = spikes.shape
    n = weights.shape[1]
    weight_mask = (weights != 0).astype(np.float64)
    nonsilent = spikes.any(axis=2)
    matches = nonsilent.astype(np.float64) @ weight_mask
    true_acs = np.zeros((m, n), dtype=np.float64)
    true_acs_per_t = np.zeros(t, dtype=np.float64)
    active_columns = np.zeros(t, dtype=np.int64)
    true_accumulations = 0.0
    for ti in range(t):
        spikes_t = spikes[:, :, ti].astype(np.float64)
        acs_t = spikes_t @ weight_mask
        true_acs += acs_t
        true_acs_per_t[ti] = acs_t.sum()
        active_columns[ti] = int(spikes[:, :, ti].any(axis=0).sum())
        true_accumulations += float(acs_t.sum())
    return {
        "nnz_weights": int(weight_mask.sum()),
        "nnz_spikes": int(spikes.sum()),
        "nonsilent_neurons": int(nonsilent.sum()),
        "matches": matches,
        "true_acs": true_acs,
        "true_acs_per_t": true_acs_per_t,
        "true_accumulations": true_accumulations,
        "active_columns_per_t": active_columns,
        "weight_row_nnz": (weights != 0).sum(axis=1).astype(np.int64),
        "spikes_per_row_t": spikes.sum(axis=1).astype(np.int64),
        "spikes_per_column_t": spikes.sum(axis=0).astype(np.int64),
        "active_column_mask": spikes.any(axis=0),
    }


def assert_results_identical(a, b):
    """Field-by-field bit-exact comparison of two SimulationResults."""
    assert a.accelerator == b.accelerator
    assert a.workload == b.workload
    assert a.cycles == b.cycles
    assert a.compute_cycles == b.compute_cycles
    assert a.memory_cycles == b.memory_cycles
    assert a.dram.as_dict() == b.dram.as_dict()
    assert a.sram.as_dict() == b.sram.as_dict()
    assert dict(a.energy.entries) == dict(b.energy.entries)
    assert a.ops == b.ops
    assert a.sram_miss_rate == b.sram_miss_rate
    assert a.extra == b.extra


@pytest.fixture
def layer_pair(rng):
    spikes = random_spike_tensor(24, 320, 4, 0.8, silent_fraction=0.66, rng=rng)
    weights = random_weight_matrix(320, 48, 0.93, rng=rng)
    return spikes, weights


class TestStatisticsEquivalence:
    def test_full_sums_bit_identical_to_gemm_loop(self, layer_pair):
        spikes, weights = layer_pair
        evaluation = LayerEvaluation(spikes, weights)
        assert np.array_equal(evaluation.full_sums, reference_full_sums(spikes, weights))

    def test_output_spikes_match_lif_on_loop_sums(self, layer_pair):
        spikes, weights = layer_pair
        evaluation = LayerEvaluation(spikes, weights)
        expected = lif_fire(reference_full_sums(spikes, weights))
        assert np.array_equal(evaluation.output_spikes(), expected)

    def test_statistics_bit_identical_to_loop_reference(self, layer_pair):
        spikes, weights = layer_pair
        evaluation = LayerEvaluation(spikes, weights)
        ref = reference_statistics(spikes, weights)
        stats = evaluation.statistics
        assert stats.nnz_weights == ref["nnz_weights"]
        assert stats.nnz_spikes == ref["nnz_spikes"]
        assert stats.nonsilent_neurons == ref["nonsilent_neurons"]
        assert np.array_equal(stats.matches, ref["matches"])
        assert np.array_equal(stats.true_acs, ref["true_acs"])
        assert np.array_equal(stats.true_acs_per_t, ref["true_acs_per_t"])
        assert np.array_equal(stats.active_columns_per_t, ref["active_columns_per_t"])
        assert np.array_equal(stats.weight_row_nnz, ref["weight_row_nnz"])
        assert np.array_equal(stats.spikes_per_row_t, ref["spikes_per_row_t"])
        assert np.array_equal(stats.spikes_per_column_t, ref["spikes_per_column_t"])
        assert np.array_equal(stats.active_column_mask, ref["active_column_mask"])
        assert evaluation.true_accumulations == ref["true_accumulations"]

    def test_preprocessed_matches_masking_helper(self, layer_pair):
        spikes, weights = layer_pair
        evaluation = LayerEvaluation(spikes, weights)
        derived = evaluation.preprocessed(max_spikes=1)
        masked = mask_low_activity_neurons(spikes, max_spikes=1)
        assert np.array_equal(derived.spikes, masked)
        assert np.array_equal(
            derived.packed_words, LayerEvaluation(masked, weights).packed_words
        )

    def test_packed_accounting_matches_per_fiber_sums(self, layer_pair):
        spikes, weights = layer_pair
        packed = LayerEvaluation(spikes, weights).packed
        assert packed.nnz == sum(f.nnz for f in packed.fibers)
        assert packed.payload_bits() == sum(f.payload_bits() for f in packed.fibers)
        assert packed.bitmask_bits() == sum(f.bitmask_bits() for f in packed.fibers)
        assert packed.storage_bits() == sum(f.storage_bits() for f in packed.fibers)
        assert packed.captured_spikes() == int(
            sum(int(bin(int(v)).count("1")) for f in packed.fibers for v in f.values)
        )

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            LayerEvaluation(np.zeros((2, 3)), np.zeros((3, 2)))
        with pytest.raises(ValueError):
            LayerEvaluation(np.zeros((2, 3, 4)), np.zeros((2, 2)))


class TestSimulatorEquivalence:
    """Cached-engine path == raw-tensor path for every accelerator."""

    @pytest.mark.parametrize("simulator_cls", ALL_SNN_SIMULATORS)
    @pytest.mark.parametrize("layer_name", REPRESENTATIVE_LAYERS)
    def test_workload_path_matches_raw_tensor_path(self, simulator_cls, layer_name):
        workload = get_layer_workload(layer_name).scaled(0.05)
        spikes, weights = workload.generate(rng=np.random.default_rng(7))
        via_tensors = simulator_cls().simulate_layer(spikes, weights, name=workload.name)
        via_engine = simulator_cls().simulate_workload(
            workload, rng=np.random.default_rng(7)
        )
        assert_results_identical(via_tensors, via_engine)

    @pytest.mark.parametrize("layer_name", REPRESENTATIVE_LAYERS)
    def test_loas_finetuned_preprocess_path(self, layer_name):
        workload = get_layer_workload(layer_name).scaled(0.05)
        spikes, weights = workload.generate(rng=np.random.default_rng(7), finetuned=True)
        via_tensors = LoASSimulator().simulate_layer(
            spikes, weights, name=workload.name, preprocess=True
        )
        via_engine = LoASSimulator().simulate_workload(
            workload, rng=np.random.default_rng(7), finetuned=True, preprocess=True
        )
        assert_results_identical(via_tensors, via_engine)

    def test_cache_hits_are_bit_identical_across_simulators(self, tiny_workload):
        cache = default_cache()
        cache.clear()
        results = {}
        for simulator_cls in ALL_SNN_SIMULATORS:
            results[simulator_cls.name] = simulator_cls().simulate_workload(
                tiny_workload, rng=np.random.default_rng(3)
            )
        assert cache.misses == 1
        assert cache.hits == len(ALL_SNN_SIMULATORS) - 1
        # Fresh uncached runs reproduce every cached result exactly.
        for simulator_cls in ALL_SNN_SIMULATORS:
            spikes, weights = tiny_workload.generate(rng=np.random.default_rng(3))
            raw = simulator_cls().simulate_layer(spikes, weights, name=tiny_workload.name)
            assert_results_identical(raw, results[simulator_cls.name])

    @pytest.mark.parametrize("simulator_cls", [SparTenANN, GammaANN])
    def test_ann_shared_evaluation_matches_raw_path(self, simulator_cls, rng):
        from repro.baselines import generate_ann_activations
        from repro.engine import AnnLayerEvaluation

        activations = generate_ann_activations(16, 128, rng=rng)
        weights = random_weight_matrix(128, 24, 0.9, rng=rng)
        raw = simulator_cls().simulate_layer(activations, weights, name="ann")
        shared = simulator_cls().simulate_layer(
            activations, weights, name="ann", evaluation=AnnLayerEvaluation(activations, weights)
        )
        assert_results_identical(raw, shared)


class TestCacheSemantics:
    def _workload(self, name="tiny", m=6, k=64, n=12, t=4):
        profile = SparsityProfile(0.8, 0.7, 0.75, 0.9)
        return LayerWorkload(LayerShape(name, m=m, k=k, n=n, t=t), profile)

    def test_hit_restores_generator_state(self):
        cache = WorkloadEvaluationCache()
        workload = self._workload()
        rng_a = np.random.default_rng(11)
        cache.evaluate(workload, rng_a)
        state_after_generation = rng_a.bit_generator.state
        rng_b = np.random.default_rng(11)
        cache.evaluate(workload, rng_b)
        assert rng_b.bit_generator.state == state_after_generation

    def test_sequences_cache_layer_by_layer(self):
        cache = WorkloadEvaluationCache()
        workload = self._workload()
        rng = np.random.default_rng(5)
        first = cache.evaluate(workload, rng)
        second = cache.evaluate(workload, rng)  # same workload, advanced state
        assert first is not second
        assert cache.misses == 2
        rng = np.random.default_rng(5)
        assert cache.evaluate(workload, rng) is first
        assert cache.evaluate(workload, rng) is second
        assert cache.hits == 2

    def test_finetuned_flag_is_part_of_the_key(self):
        cache = WorkloadEvaluationCache()
        workload = self._workload()
        plain = cache.evaluate(workload, np.random.default_rng(2))
        finetuned = cache.evaluate(workload, np.random.default_rng(2), finetuned=True)
        assert plain is not finetuned
        assert cache.misses == 2

    def test_fingerprint_ignores_name_but_not_shape(self):
        base = self._workload(name="a")
        renamed = self._workload(name="b")
        resized = self._workload(name="a", k=65)
        assert workload_fingerprint(base) == workload_fingerprint(renamed)
        assert workload_fingerprint(base) != workload_fingerprint(resized)

    def test_design_points_never_enter_the_cache_key(self):
        # Hardware design points are pure cost parameters: simulating one
        # workload on arbitrarily many archs shares a single evaluation,
        # and the evaluation object handed to each simulator is identical.
        from repro.arch import default_arch
        from repro.core import LoASSimulator

        cache = WorkloadEvaluationCache()
        workload = self._workload()
        evaluations = []
        for overrides in (
            {},
            {"pe.num_tppes": 4},
            {"memory.global_cache_bytes": 32 * 1024},
            {"energy.dram_per_byte": 10.0},
        ):
            spec = default_arch().with_overrides(**overrides)
            LoASSimulator(spec)  # arch construction must not touch the key
            evaluations.append(cache.evaluate(workload, np.random.default_rng(3)))
        assert cache.misses == 1
        assert cache.hits == len(evaluations) - 1
        assert all(evaluation is evaluations[0] for evaluation in evaluations)

    def test_simulation_on_shared_evaluation_reprices_costs_only(self, tiny_workload):
        # Two design points, one evaluation: the cost models read the same
        # tensors and statistics but charge them to different constants.
        from repro.arch import default_arch
        from repro.core import LoASSimulator

        default_cache().clear()
        rng_a = np.random.default_rng(4)
        rng_b = np.random.default_rng(4)
        baseline = LoASSimulator().simulate_workload(tiny_workload, rng=rng_a)
        cheap_dram = default_arch().with_overrides(**{"energy.dram_per_byte": 6.0})
        repriced = LoASSimulator(cheap_dram).simulate_workload(tiny_workload, rng=rng_b)
        assert default_cache().misses == 1 and default_cache().hits == 1
        # identical activity counts, traffic and cycles; energy re-priced
        assert repriced.cycles == baseline.cycles
        assert repriced.ops == baseline.ops
        assert repriced.dram.as_dict() == baseline.dram.as_dict()
        assert repriced.energy.entries["dram"] == pytest.approx(
            baseline.energy.entries["dram"] * 6.0 / 60.0
        )

    def test_lru_eviction(self):
        cache = WorkloadEvaluationCache(maxsize=2)
        workloads = [self._workload(m=m) for m in (4, 5, 6)]
        for workload in workloads:
            cache.evaluate(workload, np.random.default_rng(0))
        assert len(cache) == 2
        # The oldest entry was evicted: evaluating it again is a miss.
        misses = cache.misses
        cache.evaluate(workloads[0], np.random.default_rng(0))
        assert cache.misses == misses + 1

    def test_cached_tensors_are_read_only(self):
        cache = WorkloadEvaluationCache()
        evaluation = cache.evaluate(self._workload(), np.random.default_rng(0))
        with pytest.raises(ValueError):
            evaluation.spikes[0, 0, 0] = 1
        with pytest.raises(ValueError):
            evaluation.weights[0, 0] = 1

    def test_network_simulation_is_unchanged_by_cache_state(self, tiny_workload):
        from repro.snn.workloads import NetworkWorkload

        network = NetworkWorkload("net", [tiny_workload, tiny_workload])
        simulator = LoASSimulator()
        default_cache().clear()
        cold = simulator.simulate_network(network, rng=np.random.default_rng(9))
        warm = simulator.simulate_network(network, rng=np.random.default_rng(9))
        assert_results_identical(cold, warm)
