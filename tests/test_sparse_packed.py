"""Unit tests for the FTP-friendly packed-temporal spike compression."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.sparse.packed import PackedSpikeMatrix, pack_spike_words, unpack_spike_words


class TestPackUnpack:
    def test_pack_example_from_paper(self):
        # a00 fires at t0 and t2 -> word 0b0101 = 5 (LSB = t0).
        spikes = np.array([1, 0, 1, 0])
        assert pack_spike_words(spikes) == 5

    def test_unpack_example(self):
        assert unpack_spike_words(np.array(5), 4).tolist() == [1, 0, 1, 0]

    def test_pack_all_ones(self):
        assert pack_spike_words(np.ones(4, dtype=np.uint8)) == 15

    def test_pack_silent(self):
        assert pack_spike_words(np.zeros(4, dtype=np.uint8)) == 0

    def test_pack_rejects_too_many_timesteps(self):
        with pytest.raises(ValueError):
            pack_spike_words(np.zeros(64, dtype=np.uint8))

    @settings(max_examples=40, deadline=None)
    @given(arrays(np.uint8, st.tuples(st.integers(1, 5), st.integers(1, 9), st.integers(1, 8)), elements=st.integers(0, 1)))
    def test_pack_unpack_roundtrip(self, spikes):
        t = spikes.shape[-1]
        words = pack_spike_words(spikes)
        assert np.array_equal(unpack_spike_words(words, t), spikes)


class TestPackedSpikeMatrix:
    @pytest.fixture
    def spikes(self, rng):
        spikes = (rng.random((6, 32, 4)) > 0.8).astype(np.uint8)
        spikes[:, :10, :] = 0  # guarantee some silent neurons
        return spikes

    def test_roundtrip(self, spikes):
        packed = PackedSpikeMatrix.from_dense(spikes)
        assert np.array_equal(packed.to_dense(), spikes)

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            PackedSpikeMatrix.from_dense(np.zeros((4, 4)))

    def test_shape_properties(self, spikes):
        packed = PackedSpikeMatrix.from_dense(spikes)
        assert packed.num_rows == 6
        assert packed.num_neurons == 32
        assert packed.timesteps == 4

    def test_nnz_counts_nonsilent_neurons(self, spikes):
        packed = PackedSpikeMatrix.from_dense(spikes)
        assert packed.nnz == int((spikes.sum(axis=2) > 0).sum())

    def test_silent_fraction(self, spikes):
        packed = PackedSpikeMatrix.from_dense(spikes)
        expected = float((spikes.sum(axis=2) == 0).mean())
        assert packed.silent_fraction == pytest.approx(expected)

    def test_nonsilent_matrix_matches_dense(self, spikes):
        packed = PackedSpikeMatrix.from_dense(spikes)
        assert np.array_equal(packed.nonsilent_matrix(), spikes.sum(axis=2) > 0)

    def test_payload_bits(self, spikes):
        packed = PackedSpikeMatrix.from_dense(spikes)
        assert packed.payload_bits() == packed.nnz * 4

    def test_bitmask_bits(self, spikes):
        packed = PackedSpikeMatrix.from_dense(spikes)
        assert packed.bitmask_bits() == 6 * 32

    def test_dense_bits(self, spikes):
        packed = PackedSpikeMatrix.from_dense(spikes)
        assert packed.dense_bits() == spikes.size

    def test_captured_spikes_equals_total_spikes(self, spikes):
        packed = PackedSpikeMatrix.from_dense(spikes)
        assert packed.captured_spikes() == int(spikes.sum())

    def test_compression_efficiency_silent_tensor(self):
        packed = PackedSpikeMatrix.from_dense(np.zeros((2, 4, 4), dtype=np.uint8))
        assert packed.compression_efficiency() == float("inf")

    def test_compression_efficiency_definition(self, spikes):
        packed = PackedSpikeMatrix.from_dense(spikes)
        expected = packed.captured_spikes() / packed.payload_bits()
        assert packed.compression_efficiency() == pytest.approx(expected)

    def test_fiber_accessor(self, spikes):
        packed = PackedSpikeMatrix.from_dense(spikes)
        fiber = packed.fiber(0)
        assert fiber.length == 32
        assert fiber.value_bits == 4

    def test_storage_smaller_than_dense_plus_bitmask_for_sparse_input(self):
        spikes = np.zeros((8, 128, 4), dtype=np.uint8)
        spikes[:, 0, 0] = 1  # one non-silent neuron per row
        packed = PackedSpikeMatrix.from_dense(spikes)
        # Payload is tiny (one word per row); the bitmask dominates.
        assert packed.payload_bits() == 8 * 4
        assert packed.storage_bits() < spikes.size + 8 * 64

    @settings(max_examples=25, deadline=None)
    @given(arrays(np.uint8, st.tuples(st.integers(1, 5), st.integers(1, 16), st.integers(1, 6)), elements=st.integers(0, 1)))
    def test_roundtrip_property(self, spikes):
        packed = PackedSpikeMatrix.from_dense(spikes)
        assert np.array_equal(packed.to_dense(), spikes)
        assert packed.nnz + int((spikes.sum(axis=2) == 0).sum()) == spikes.shape[0] * spikes.shape[1]
