"""Unit tests for the bitmask (SparTen-style) matrix compression."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.sparse.bitmask import BitmaskMatrix, compress_columns, compress_rows


@pytest.fixture
def matrix():
    return np.array(
        [
            [0, 5, 0, -3],
            [0, 0, 0, 0],
            [7, 0, 2, 0],
        ],
        dtype=np.int32,
    )


class TestCompressFunctions:
    def test_compress_rows_count(self, matrix):
        assert len(compress_rows(matrix)) == 3

    def test_compress_columns_count(self, matrix):
        assert len(compress_columns(matrix)) == 4

    def test_row_fiber_contents(self, matrix):
        fibers = compress_rows(matrix)
        assert fibers[0].values.tolist() == [5, -3]
        assert fibers[1].nnz == 0
        assert fibers[2].coordinates.tolist() == [0, 2]

    def test_column_fiber_contents(self, matrix):
        fibers = compress_columns(matrix)
        assert fibers[0].values.tolist() == [7]
        assert fibers[3].values.tolist() == [-3]

    def test_pointers_are_cumulative(self, matrix):
        fibers = compress_rows(matrix)
        assert [f.pointer for f in fibers] == [0, 2, 2]

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            compress_rows(np.zeros((2, 2, 2)))


class TestBitmaskMatrix:
    def test_from_dense_row_roundtrip(self, matrix):
        compressed = BitmaskMatrix.from_dense(matrix, axis="row")
        assert np.array_equal(compressed.to_dense(), matrix)

    def test_from_dense_column_roundtrip(self, matrix):
        compressed = BitmaskMatrix.from_dense(matrix, axis="column")
        assert np.array_equal(compressed.to_dense(), matrix)

    def test_invalid_axis_rejected(self, matrix):
        with pytest.raises(ValueError):
            BitmaskMatrix.from_dense(matrix, axis="diagonal")

    def test_nnz(self, matrix):
        compressed = BitmaskMatrix.from_dense(matrix)
        assert compressed.nnz == 4

    def test_num_fibers(self, matrix):
        assert BitmaskMatrix.from_dense(matrix, axis="row").num_fibers == 3
        assert BitmaskMatrix.from_dense(matrix, axis="column").num_fibers == 4

    def test_fiber_accessor(self, matrix):
        compressed = BitmaskMatrix.from_dense(matrix, axis="row")
        assert compressed.fiber(2).values.tolist() == [7, 2]

    def test_bitmask_bits(self, matrix):
        compressed = BitmaskMatrix.from_dense(matrix, axis="row")
        assert compressed.bitmask_bits() == 3 * 4

    def test_payload_bits(self, matrix):
        compressed = BitmaskMatrix.from_dense(matrix, value_bits=8)
        assert compressed.payload_bits() == 4 * 8

    def test_dense_bits(self, matrix):
        compressed = BitmaskMatrix.from_dense(matrix, value_bits=8)
        assert compressed.dense_bits() == 12 * 8

    def test_compression_ratio_improves_with_sparsity(self):
        dense = np.ones((16, 128), dtype=np.int8)
        sparse = np.zeros((16, 128), dtype=np.int8)
        sparse[:, 0] = 1
        ratio_dense = BitmaskMatrix.from_dense(dense).compression_ratio()
        ratio_sparse = BitmaskMatrix.from_dense(sparse).compression_ratio()
        assert ratio_sparse > ratio_dense

    def test_storage_bits_formula(self, matrix):
        compressed = BitmaskMatrix.from_dense(matrix, value_bits=8)
        expected = sum(f.storage_bits(32) for f in compressed.fibers)
        assert compressed.storage_bits(32) == expected

    @settings(max_examples=25, deadline=None)
    @given(
        arrays(
            np.int16,
            st.tuples(st.integers(1, 8), st.integers(1, 12)),
            elements=st.integers(-20, 20),
        )
    )
    def test_roundtrip_property(self, dense):
        for axis in ("row", "column"):
            compressed = BitmaskMatrix.from_dense(dense, axis=axis)
            assert np.array_equal(compressed.to_dense(), dense)
