"""Integration tests of the experiment modules (run at small scale).

These tests check structure and the qualitative claims each table / figure
makes, at a workload scale small enough to keep the suite fast; the
benchmarks regenerate the paper-scale numbers.
"""

import pytest

from repro.experiments import (
    format_fig5,
    format_fig11,
    format_fig12,
    format_fig14,
    format_fig16,
    format_fig17,
    format_fig18,
    format_fig19,
    format_table1,
    format_table2,
    format_table4,
    run_fig5,
    run_fig11,
    run_fig12,
    run_fig13,
    run_fig14,
    run_fig16,
    run_fig17,
    run_fig18,
    run_fig19,
    run_table1,
    run_table2,
    run_table4,
)

SCALE = 0.2
NETWORKS = ("vgg16",)
LAYERS = ("V-L8",)


class TestTableExperiments:
    def test_table1_rows(self):
        data = run_table1()
        assert set(data) == {"SpinalFlow", "PTB", "Stellar", "LoAS"}
        assert data["LoAS"]["weight_sparsity"] is True
        assert data["SpinalFlow"]["weight_sparsity"] is False

    def test_table1_format(self):
        assert "LoAS" in format_table1()

    def test_table2_measured_close_to_published(self):
        data = run_table2(scale=0.25, seed=0)
        for layer in ("A-L4", "V-L8", "R-L19"):
            stats = data[layer]
            assert stats["measured_spike_sparsity"] == pytest.approx(stats["target_spike_sparsity"], abs=0.03)
            assert stats["measured_silent_fraction"] == pytest.approx(stats["target_silent_fraction"], abs=0.03)
            assert stats["measured_weight_sparsity"] == pytest.approx(stats["target_weight_sparsity"], abs=0.02)

    def test_table2_includes_networks(self):
        data = run_table2(scale=0.25)
        assert "alexnet" in data and "vgg16" in data and "resnet19" in data

    def test_table2_format(self):
        assert "AvSpA" in format_table2(scale=0.2)

    def test_table4_totals(self):
        data = run_table4()
        assert data["system_area_mm2"]["total"] == pytest.approx(2.08, abs=0.02)
        assert data["system_power_mw"]["total"] == pytest.approx(188.9, abs=0.5)

    def test_table4_fig15_fractions(self):
        data = run_table4()
        assert data["system_power_fraction"]["global_cache"] == pytest.approx(0.659, abs=0.01)
        assert data["tppe_power_fraction"]["fast_prefix"] == pytest.approx(0.518, abs=0.01)

    def test_table4_format(self):
        assert "Global" in format_table4() or "global" in format_table4()


class TestMotivationAndAblation:
    def test_fig5_psum_traffic_grows_with_t(self):
        # Full-size layer: the psum matrix must exceed GoSPA's psum buffer
        # for the spill (and hence the T scaling of Figure 5) to appear.
        data = run_fig5(layers=("V-L8",), scale=1.0)
        assert data["V-L8"]["T=4"] > data["V-L8"]["T=1"]

    def test_fig5_format(self):
        assert "psum" in format_fig5(scale=0.3).lower()

    def test_fig16_area_power_scaling(self):
        data = run_fig16()
        assert data["tppe_area_ratio"]["T=4"] == pytest.approx(1.0)
        assert data["tppe_area_ratio"]["T=16"] == pytest.approx(1.37, abs=0.02)
        assert data["tppe_power_ratio"]["T=16"] == pytest.approx(1.25, abs=0.02)

    def test_fig16_silent_ratio_declines_with_t(self):
        data = run_fig16()
        assert data["silent_ratio_origin"]["T=16"] < data["silent_ratio_origin"]["T=4"]
        assert data["silent_ratio_finetuned"]["T=8"] >= data["silent_ratio_origin"]["T=8"]

    def test_fig16_format(self):
        assert "T=8" in format_fig16()

    def test_fig17_weight_sparsity_sensitivity(self):
        data = run_fig17(scale=0.15)
        sweep = data["weight_sparsity"]
        assert sweep["B=98.2%"] == pytest.approx(1.0)
        assert sweep["B=25.0%"] < sweep["B=68.4%"] < sweep["B=98.2%"]

    def test_fig17_timestep_scaling_is_mild(self):
        data = run_fig17(scale=0.15)
        assert data["timesteps"]["T=8"] > 0.6

    def test_fig17_has_layer_size_sweep(self):
        data = run_fig17(scale=0.1)
        assert "T-HFF" in data["layer_size"]

    def test_fig17_format(self):
        assert "weight_sparsity" in format_fig17(scale=0.1)


class TestComparisonExperiments:
    def test_fig11_accuracy_recovers(self):
        data = run_fig11(num_samples=240, epochs=6, finetune_epochs=(1, 4), seed=0)
        assert 0.0 <= data["mask"] <= data["origin"] + 1e-9
        assert data["ft_e4"] >= data["mask"] - 0.05
        assert data["ft_e4"] >= data["origin"] - 0.15

    def test_fig11_format(self):
        assert "Accuracy" in format_fig11()

    def test_fig12_loas_wins(self):
        data = run_fig12(networks=NETWORKS, scale=SCALE)
        per = data["vgg16"]
        assert per["LoAS"]["speedup"] > 1.0
        assert per["LoAS-FT"]["speedup"] >= per["LoAS"]["speedup"] * 0.99
        assert per["SparTen-SNN"]["speedup"] == pytest.approx(1.0)

    def test_fig13_structure(self):
        data = run_fig13(networks=NETWORKS, scale=SCALE)
        per = data["vgg16"]
        for accel in ("LoAS", "SparTen-SNN", "GoSPA-SNN", "Gamma-SNN"):
            assert per[accel]["offchip_kb"] > 0
            assert per[accel]["onchip_mb"] > 0
        assert per["LoAS"]["onchip_mb"] < per["SparTen-SNN"]["onchip_mb"]

    def test_fig14_normalised_to_loas(self):
        data = run_fig14(layers=LAYERS, scale=0.4)
        per = data["V-L8"]
        assert per["LoAS"]["total"] == pytest.approx(1.0)
        assert per["LoAS"]["normalized_miss_rate"] == pytest.approx(1.0)
        for accel in per:
            assert per[accel]["total"] > 0

    def test_fig12_format(self):
        assert "speedup" in format_fig12(scale=0.15).lower()

    def test_fig14_format(self):
        assert "breakdown" in format_fig14(scale=0.3).lower()

    def test_fig18_snn_wins_energy(self):
        data = run_fig18(network="vgg16", scale=SCALE)
        assert data["LoAS (SNN)"]["normalized_energy"] == pytest.approx(1.0)
        assert data["SparTen-ANN (ANN)"]["normalized_energy"] > 1.0

    def test_fig18_format(self):
        assert "ANN" in format_fig18(scale=0.15)

    def test_fig19_loas_beats_dense_baselines(self):
        data = run_fig19(network="vgg16", scale=SCALE)
        assert data["LoAS"]["speedup_vs_ptb"] > 1.0
        assert data["Stellar"]["speedup_vs_ptb"] > 1.0
        assert data["PTB"]["normalized_energy"] > 1.0
        assert data["Stellar"]["normalized_energy"] > 1.0

    def test_fig19_format(self):
        assert "PTB" in format_fig19(scale=0.15)
