"""Unit tests for the Fiber abstraction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sparse.fiber import Fiber


def make_fiber(dense, value_bits=8):
    dense = np.asarray(dense)
    bitmask = dense != 0
    return Fiber(bitmask=bitmask, values=dense[bitmask], value_bits=value_bits)


class TestFiberBasics:
    def test_length_matches_bitmask(self):
        fiber = make_fiber([0, 3, 0, 5])
        assert fiber.length == 4
        assert len(fiber) == 4

    def test_nnz_counts_set_bits(self):
        fiber = make_fiber([0, 3, 0, 5, 7])
        assert fiber.nnz == 3

    def test_density(self):
        fiber = make_fiber([0, 3, 0, 5])
        assert fiber.density == pytest.approx(0.5)

    def test_density_of_empty_fiber(self):
        fiber = Fiber(bitmask=np.zeros(0, dtype=bool), values=np.array([]))
        assert fiber.density == 0.0
        assert fiber.length == 0

    def test_coordinates_are_sorted_positions(self):
        fiber = make_fiber([0, 3, 0, 5, 0, 9])
        assert fiber.coordinates.tolist() == [1, 3, 5]

    def test_mismatched_values_raise(self):
        with pytest.raises(ValueError):
            Fiber(bitmask=np.array([True, False, True]), values=np.array([1]))

    def test_value_at_present_coordinate(self):
        fiber = make_fiber([0, 3, 0, 5])
        assert fiber.value_at(1) == 3
        assert fiber.value_at(3) == 5

    def test_value_at_absent_coordinate_is_none(self):
        fiber = make_fiber([0, 3, 0, 5])
        assert fiber.value_at(0) is None

    def test_equality(self):
        assert make_fiber([0, 3, 0, 5]) == make_fiber([0, 3, 0, 5])
        assert make_fiber([0, 3, 0, 5]) != make_fiber([0, 3, 5, 0])

    def test_equality_against_other_type(self):
        assert make_fiber([1]) != "not a fiber"


class TestFiberStorage:
    def test_bitmask_bits_equal_length(self):
        fiber = make_fiber([0, 3, 0, 5, 0, 0, 0, 1])
        assert fiber.bitmask_bits() == 8

    def test_payload_bits_scale_with_value_bits(self):
        fiber = make_fiber([0, 3, 0, 5], value_bits=4)
        assert fiber.payload_bits() == 8

    def test_storage_bits_sum(self):
        fiber = make_fiber([0, 3, 0, 5], value_bits=8)
        assert fiber.storage_bits(pointer_width=32) == 4 + 16 + 32

    def test_storage_bytes(self):
        fiber = make_fiber([0, 3, 0, 5], value_bits=8)
        assert fiber.storage_bytes(pointer_width=32) == pytest.approx((4 + 16 + 32) / 8)


class TestFiberDecompress:
    def test_roundtrip_simple(self):
        dense = np.array([0, 3, 0, 5, 0, 9])
        assert np.array_equal(make_fiber(dense).decompress(), dense)

    def test_decompress_with_fill_value(self):
        fiber = make_fiber([0, 3])
        assert np.array_equal(fiber.decompress(fill_value=0), np.array([0, 3]))

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=-127, max_value=127), min_size=0, max_size=64))
    def test_roundtrip_property(self, values):
        dense = np.asarray(values, dtype=np.int64)
        fiber = make_fiber(dense)
        assert np.array_equal(fiber.decompress(), dense)
        assert fiber.nnz == int(np.count_nonzero(dense))
