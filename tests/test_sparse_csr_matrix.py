"""Unit tests for CSR/CSC formats and the random tensor generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.sparse.csr import CSCMatrix, CSRMatrix, csr_storage_bits_for_spikes
from repro.sparse.matrix import (
    density,
    mask_low_activity_neurons,
    random_spike_tensor,
    random_weight_matrix,
    silent_neuron_fraction,
    silent_neuron_mask,
    sparsity,
    spike_sparsity_per_timestep,
)


@pytest.fixture
def matrix():
    return np.array([[0, 5, 0], [7, 0, 0], [0, 0, 0], [1, 2, 3]], dtype=np.int32)


class TestCSR:
    def test_roundtrip(self, matrix):
        assert np.array_equal(CSRMatrix.from_dense(matrix).to_dense(), matrix)

    def test_nnz(self, matrix):
        assert CSRMatrix.from_dense(matrix).nnz == 5

    def test_row_access(self, matrix):
        csr = CSRMatrix.from_dense(matrix)
        cols, vals = csr.row(3)
        assert cols.tolist() == [0, 1, 2]
        assert vals.tolist() == [1, 2, 3]

    def test_empty_row(self, matrix):
        cols, vals = CSRMatrix.from_dense(matrix).row(2)
        assert cols.size == 0 and vals.size == 0

    def test_coordinate_bits(self, matrix):
        assert CSRMatrix.from_dense(matrix).coordinate_bits() == 2

    def test_storage_bits(self, matrix):
        csr = CSRMatrix.from_dense(matrix, value_bits=8)
        assert csr.storage_bits(32) == 5 * 8 + 5 * 2 + 5 * 32

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            CSRMatrix.from_dense(np.zeros((2, 2, 2)))


class TestCSC:
    def test_roundtrip(self, matrix):
        assert np.array_equal(CSCMatrix.from_dense(matrix).to_dense(), matrix)

    def test_column_access(self, matrix):
        csc = CSCMatrix.from_dense(matrix)
        rows, vals = csc.column(0)
        assert rows.tolist() == [1, 3]
        assert vals.tolist() == [7, 1]

    def test_coordinate_bits_uses_rows(self, matrix):
        assert CSCMatrix.from_dense(matrix).coordinate_bits() == 2

    @settings(max_examples=25, deadline=None)
    @given(arrays(np.int16, st.tuples(st.integers(1, 7), st.integers(1, 9)), elements=st.integers(-9, 9)))
    def test_roundtrip_property(self, dense):
        assert np.array_equal(CSRMatrix.from_dense(dense).to_dense(), dense)
        assert np.array_equal(CSCMatrix.from_dense(dense).to_dense(), dense)


class TestCSRForSpikes:
    def test_more_expensive_than_packed_for_multi_timestep_spikes(self, rng):
        spikes = random_spike_tensor(8, 64, 4, spike_sparsity=0.8, silent_fraction=0.6, rng=rng)
        from repro.sparse.packed import PackedSpikeMatrix

        csr_bits = csr_storage_bits_for_spikes(spikes)
        packed_bits = PackedSpikeMatrix.from_dense(spikes).storage_bits()
        assert csr_bits > 0
        assert packed_bits < csr_bits * 2  # packed is competitive

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            csr_storage_bits_for_spikes(np.zeros((2, 2)))


class TestSparsityHelpers:
    def test_sparsity_and_density(self):
        x = np.array([0, 1, 0, 2])
        assert sparsity(x) == pytest.approx(0.5)
        assert density(x) == pytest.approx(0.5)

    def test_sparsity_of_empty(self):
        assert sparsity(np.array([])) == 0.0


class TestRandomWeightMatrix:
    def test_shape_and_dtype(self, rng):
        weights = random_weight_matrix(50, 30, 0.9, rng=rng)
        assert weights.shape == (50, 30)
        assert np.issubdtype(weights.dtype, np.integer)

    def test_sparsity_close_to_target(self, rng):
        weights = random_weight_matrix(200, 200, 0.9, rng=rng)
        assert sparsity(weights) == pytest.approx(0.9, abs=0.02)

    def test_invalid_sparsity_rejected(self, rng):
        with pytest.raises(ValueError):
            random_weight_matrix(4, 4, 1.5, rng=rng)

    def test_values_within_bitwidth(self, rng):
        weights = random_weight_matrix(64, 64, 0.5, rng=rng, weight_bits=8)
        assert weights.max() <= 127 and weights.min() >= -128


class TestRandomSpikeTensor:
    def test_shape(self, rng):
        spikes = random_spike_tensor(4, 10, 3, 0.5, rng=rng)
        assert spikes.shape == (4, 10, 3)

    def test_unary_values(self, rng):
        spikes = random_spike_tensor(4, 10, 3, 0.5, rng=rng)
        assert set(np.unique(spikes)).issubset({0, 1})

    def test_sparsity_close_to_target_without_silent_control(self, rng):
        spikes = random_spike_tensor(40, 100, 4, 0.8, rng=rng)
        assert sparsity(spikes) == pytest.approx(0.8, abs=0.03)

    def test_silent_fraction_close_to_target(self, rng):
        spikes = random_spike_tensor(40, 100, 4, 0.8, silent_fraction=0.7, rng=rng)
        assert silent_neuron_fraction(spikes) == pytest.approx(0.7, abs=0.03)

    def test_sparsity_close_to_target_with_silent_control(self, rng):
        spikes = random_spike_tensor(40, 100, 4, 0.8, silent_fraction=0.7, rng=rng)
        assert sparsity(spikes) == pytest.approx(0.8, abs=0.03)

    def test_nonsilent_neurons_fire_at_least_once(self, rng):
        spikes = random_spike_tensor(20, 50, 4, 0.8, silent_fraction=0.6, rng=rng)
        silent = silent_neuron_mask(spikes)
        counts = spikes.sum(axis=2)
        assert np.all(counts[~silent] >= 1)

    def test_all_silent(self, rng):
        spikes = random_spike_tensor(4, 10, 4, 0.99, silent_fraction=1.0, rng=rng)
        assert spikes.sum() == 0

    def test_invalid_sparsity_rejected(self, rng):
        with pytest.raises(ValueError):
            random_spike_tensor(4, 4, 4, -0.1, rng=rng)

    def test_invalid_silent_fraction_rejected(self, rng):
        with pytest.raises(ValueError):
            random_spike_tensor(4, 4, 4, 0.5, silent_fraction=2.0, rng=rng)


class TestMaskingHelpers:
    def test_silent_neuron_mask_requires_3d(self):
        with pytest.raises(ValueError):
            silent_neuron_mask(np.zeros((2, 2)))

    def test_spike_sparsity_per_timestep_shape(self, rng):
        spikes = random_spike_tensor(4, 10, 3, 0.5, rng=rng)
        assert spike_sparsity_per_timestep(spikes).shape == (3,)

    def test_mask_low_activity_removes_single_spike_neurons(self):
        spikes = np.zeros((1, 3, 4), dtype=np.uint8)
        spikes[0, 0, 1] = 1  # fires once -> masked
        spikes[0, 1, 0] = 1
        spikes[0, 1, 2] = 1  # fires twice -> kept
        masked = mask_low_activity_neurons(spikes, max_spikes=1)
        assert masked[0, 0].sum() == 0
        assert masked[0, 1].sum() == 2

    def test_mask_low_activity_does_not_modify_input(self, rng):
        spikes = random_spike_tensor(4, 20, 4, 0.7, rng=rng)
        before = spikes.copy()
        mask_low_activity_neurons(spikes)
        assert np.array_equal(spikes, before)

    def test_mask_increases_silent_fraction(self, rng):
        spikes = random_spike_tensor(20, 100, 4, 0.8, silent_fraction=0.6, rng=rng)
        masked = mask_low_activity_neurons(spikes)
        assert silent_neuron_fraction(masked) >= silent_neuron_fraction(spikes)
