"""Unit tests for the hardware substrates (energy, area, memory, circuits)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.area import (
    SYSTEM_COMPONENTS,
    TPPE_COMPONENTS,
    loas_system_cost,
    system_power_breakdown,
    tppe_cost,
    tppe_power_breakdown,
    tppe_scaling,
)
from repro.arch.cache import FiberCache
from repro.arch.crossbar import Crossbar
from repro.arch.energy import EnergyAccount, EnergyModel
from repro.arch.memory import CacheSimulator, DRAMModel, SRAMModel, TrafficCounter
from repro.arch.prefix_sum import FastPrefixSum, LaggyPrefixSum, exclusive_prefix_sum
from repro.arch.systolic import SystolicArray


class TestEnergyAccount:
    def test_add_and_total(self):
        account = EnergyAccount()
        account.add("dram", 100.0)
        account.add("sram", 50.0)
        account.add("dram", 25.0)
        assert account.total() == pytest.approx(175.0)
        assert account.entries["dram"] == pytest.approx(125.0)

    def test_negative_energy_rejected(self):
        with pytest.raises(ValueError):
            EnergyAccount().add("dram", -1.0)

    def test_fraction(self):
        account = EnergyAccount({"dram": 75.0, "compute": 25.0})
        assert account.fraction("dram") == pytest.approx(0.75)
        assert account.fraction("missing") == 0.0

    def test_data_movement_fraction(self):
        account = EnergyAccount({"dram": 40.0, "sram": 20.0, "compute": 40.0})
        assert account.data_movement_fraction() == pytest.approx(0.6)

    def test_merged_with(self):
        merged = EnergyAccount({"dram": 10.0}).merged_with(EnergyAccount({"dram": 5.0, "lif": 1.0}))
        assert merged.entries == {"dram": 15.0, "lif": 1.0}

    def test_total_microjoules(self):
        account = EnergyAccount({"dram": 2e6})
        assert account.total_microjoules() == pytest.approx(2.0)

    def test_empty_total_is_zero(self):
        assert EnergyAccount().total() == 0.0
        assert EnergyAccount().data_movement_fraction() == 0.0

    def test_energy_model_orderings(self):
        model = EnergyModel()
        assert model.dram_per_byte > model.sram_per_byte > model.buffer_per_byte
        assert model.fast_prefix_sum > model.laggy_prefix_sum
        assert model.multiply_accumulate > model.accumulate


class TestAreaModel:
    def test_tppe_total_matches_table4(self):
        cost = tppe_cost(4)
        assert cost.area_mm2 == pytest.approx(0.06, abs=0.01)
        assert cost.power_mw == pytest.approx(2.82, abs=0.01)

    def test_tppe_scaling_matches_fig16(self):
        area_ratio, power_ratio = tppe_scaling(16)
        assert area_ratio == pytest.approx(1.37, abs=0.02)
        assert power_ratio == pytest.approx(1.25, abs=0.02)

    def test_tppe_scaling_monotone(self):
        ratios = [tppe_scaling(t)[0] for t in (4, 8, 16, 32)]
        assert ratios == sorted(ratios)

    def test_tppe_invalid_timesteps(self):
        with pytest.raises(ValueError):
            tppe_cost(0)

    def test_system_total_matches_table4(self):
        total = loas_system_cost()["total"]
        assert total.area_mm2 == pytest.approx(2.08, abs=0.02)
        assert total.power_mw == pytest.approx(188.9, abs=0.5)

    def test_global_cache_dominates_system_power(self):
        breakdown = system_power_breakdown()
        assert max(breakdown, key=breakdown.get) == "global_cache"
        assert breakdown["global_cache"] == pytest.approx(0.659, abs=0.01)

    def test_fast_prefix_dominates_tppe_power(self):
        breakdown = tppe_power_breakdown()
        assert max(breakdown, key=breakdown.get) == "fast_prefix"
        assert breakdown["fast_prefix"] == pytest.approx(0.518, abs=0.01)

    def test_breakdown_fractions_sum_to_one(self):
        assert sum(system_power_breakdown().values()) == pytest.approx(1.0)
        assert sum(tppe_power_breakdown().values()) == pytest.approx(1.0)

    def test_laggy_prefix_much_cheaper_than_fast(self):
        assert TPPE_COMPONENTS["laggy_prefix"].power_mw < TPPE_COMPONENTS["fast_prefix"].power_mw / 3
        assert TPPE_COMPONENTS["laggy_prefix"].area_mm2 < TPPE_COMPONENTS["fast_prefix"].area_mm2 / 3

    def test_component_cost_arithmetic(self):
        total = SYSTEM_COMPONENTS["plifs"] + SYSTEM_COMPONENTS["others"]
        assert total.area_mm2 == pytest.approx(0.32)
        scaled = SYSTEM_COMPONENTS["plifs"].scaled(2)
        assert scaled.power_mw == pytest.approx(2.4)


class TestTrafficCounter:
    def test_add_and_total(self):
        counter = TrafficCounter()
        counter.add("input", 10)
        counter.add("weight", 5)
        counter.add("input", 2)
        assert counter.total() == 17
        assert counter.get("input") == 12
        assert counter.get("missing") == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TrafficCounter().add("input", -1)

    def test_merged_with(self):
        merged = TrafficCounter({"a": 1.0}).merged_with(TrafficCounter({"a": 2.0, "b": 3.0}))
        assert merged.as_dict() == {"a": 3.0, "b": 3.0}


class TestDRAMAndSRAM:
    def test_dram_bytes_per_cycle(self):
        dram = DRAMModel(bandwidth_gbps=128.0, clock_ghz=0.8)
        assert dram.bytes_per_cycle == pytest.approx(160.0)

    def test_dram_cycles_for_bytes(self):
        dram = DRAMModel(bandwidth_gbps=128.0, clock_ghz=0.8)
        assert dram.cycles_for_bytes(1600) == pytest.approx(10.0)

    def test_dram_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            DRAMModel().cycles_for_bytes(-1)

    def test_sram_bandwidth(self):
        sram = SRAMModel(num_banks=16, bytes_per_bank_per_cycle=16)
        assert sram.bytes_per_cycle == 256
        assert sram.cycles_for_bytes(2560) == pytest.approx(10.0)

    def test_sram_fits(self):
        sram = SRAMModel(capacity_bytes=1024)
        assert sram.fits(1000)
        assert not sram.fits(2000)


class TestCacheSimulator:
    def test_hit_after_install(self):
        cache = CacheSimulator(capacity_bytes=1024, num_sets=1)
        assert cache.access("a", 100) is False
        assert cache.access("a", 100) is True
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction(self):
        cache = CacheSimulator(capacity_bytes=200, num_sets=1)
        cache.access("a", 100)
        cache.access("b", 100)
        cache.access("c", 100)  # evicts "a"
        assert cache.access("b", 100) is True
        assert cache.access("a", 100) is False

    def test_oversized_blocks_are_streamed(self):
        cache = CacheSimulator(capacity_bytes=100, num_sets=1)
        cache.access("big", 1000)
        assert cache.access("big", 1000) is False  # never resident

    def test_miss_rate(self):
        cache = CacheSimulator(capacity_bytes=1024, num_sets=2)
        cache.access("a", 10)
        cache.access("a", 10)
        cache.access("b", 10)
        assert cache.miss_rate == pytest.approx(2 / 3)

    def test_reset_statistics(self):
        cache = CacheSimulator(capacity_bytes=1024)
        cache.access("a", 10)
        cache.reset_statistics()
        assert cache.hits == 0 and cache.misses == 0
        assert cache.access("a", 10) is True  # contents preserved

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            CacheSimulator(0)


class TestFiberCache:
    def test_miss_then_hit_traffic(self):
        cache = FiberCache(capacity_bytes=4096, num_banks=1)
        cache.access_fiber("A", 0, 100)
        cache.access_fiber("A", 0, 100)
        assert cache.sram_traffic.total() == 200
        assert cache.dram_traffic.total() == 100
        assert cache.hits == 1 and cache.misses == 1

    def test_write_back(self):
        cache = FiberCache()
        cache.write_back(64)
        assert cache.dram_traffic.get("output") == 64
        assert cache.sram_traffic.get("output") == 64

    def test_category_override(self):
        cache = FiberCache()
        cache.access_fiber("A", 0, 10, category="format")
        assert cache.sram_traffic.get("format") == 10


class TestPrefixSumCircuits:
    def test_exclusive_prefix_sum_example(self):
        bitmask = np.array([1, 0, 1, 1, 0], dtype=bool)
        assert exclusive_prefix_sum(bitmask).tolist() == [0, 1, 1, 2, 3]

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.booleans(), min_size=1, max_size=200))
    def test_offsets_match_cumsum(self, bits):
        bitmask = np.array(bits, dtype=bool)
        fast = FastPrefixSum().offsets(bitmask)
        laggy = LaggyPrefixSum().offsets(bitmask)
        expected = np.concatenate(([0], np.cumsum(bitmask)[:-1]))
        assert np.array_equal(fast, expected)
        assert np.array_equal(laggy, expected)

    def test_fast_cycles(self):
        fast = FastPrefixSum(width=128, latency_cycles=1)
        assert fast.invocations(128) == 1
        assert fast.invocations(129) == 2
        assert fast.cycles(512) == 4

    def test_laggy_latency_matches_paper(self):
        laggy = LaggyPrefixSum(width=128, num_adders=16)
        assert laggy.latency_cycles == 8
        assert laggy.cycles(128) == 8
        assert laggy.cycles(256) == 16

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            FastPrefixSum().invocations(-1)
        with pytest.raises(ValueError):
            LaggyPrefixSum().invocations(-1)


class TestCrossbar:
    def test_unicast_energy(self):
        xbar = Crossbar(energy_per_byte=0.2)
        assert xbar.unicast_energy(100) == pytest.approx(20.0)

    def test_broadcast_energy_between_unicast_and_full(self):
        xbar = Crossbar(num_outputs=16, energy_per_byte=0.2)
        unicast = xbar.unicast_energy(100)
        broadcast = xbar.broadcast_energy(100)
        assert unicast < broadcast < unicast * 16

    def test_invalid_fanout(self):
        with pytest.raises(ValueError):
            Crossbar().broadcast_energy(10, fanout=0)

    def test_cycles(self):
        assert Crossbar(bytes_per_cycle=256).cycles_for_bytes(512) == pytest.approx(2.0)


class TestSystolicArray:
    def test_dense_gemm_cycles_scale_with_size(self):
        array = SystolicArray(rows=16, cols=4)
        small = array.dense_gemm(16, 128, 64)
        big = array.dense_gemm(32, 128, 64)
        assert big.cycles > small.cycles

    def test_spike_skipping_reduces_cycles(self):
        array = SystolicArray(rows=16, cols=4)
        dense = array.dense_gemm(16, 256, 64, activation_density=0.2, skip_zero_activations=False)
        skipped = array.dense_gemm(16, 256, 64, activation_density=0.2, skip_zero_activations=True)
        assert skipped.cycles < dense.cycles

    def test_utilization_bounded(self):
        estimate = SystolicArray().dense_gemm(8, 64, 8)
        assert 0.0 < estimate.utilization <= 1.0

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            SystolicArray().dense_gemm(0, 1, 1)
        with pytest.raises(ValueError):
            SystolicArray().dense_gemm(1, 1, 1, activation_density=1.5)

    def test_temporal_copies_multiply_cycles(self):
        array = SystolicArray()
        one = array.dense_gemm(16, 128, 64, temporal_copies=1)
        four = array.dense_gemm(16, 128, 64, temporal_copies=4)
        assert four.cycles == pytest.approx(one.cycles * 4)
