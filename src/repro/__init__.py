"""Reproduction of *LoAS: Fully Temporal-Parallel Dataflow for Dual-Sparse
Spiking Neural Networks* (MICRO 2024).

The package is organised bottom-up:

* :mod:`repro.sparse` -- compression formats (bitmask fibers, the
  FTP-friendly packed-temporal spike format, CSR/CSC),
* :mod:`repro.snn` -- LIF neurons, the functional spMspM + LIF reference,
  Table II workloads, a toy surrogate-gradient trainer, LTH pruning and the
  fine-tuned silent-neuron preprocessing,
* :mod:`repro.arch` -- energy/area models, memory hierarchy, prefix-sum
  circuits, crossbar and systolic-array substrates,
* :mod:`repro.dataflow` -- loop-nest analysis of spMspM dataflows with a
  temporal dimension,
* :mod:`repro.engine` -- the shared workload-evaluation engine: per-layer
  tensors and statistics computed once and cached across simulators,
* :mod:`repro.core` -- the FTP dataflow, the FTP-friendly inner join, TPPE,
  P-LIF and the LoAS accelerator simulator,
* :mod:`repro.baselines` -- SparTen/GoSPA/Gamma "-SNN" baselines, the ANN
  originals, and the dense PTB / Stellar baselines,
* :mod:`repro.experiments` -- one scenario per paper table / figure,
* :mod:`repro.api` -- the public surface: :class:`Session`, typed
  :class:`ScenarioResult` records and the ``python -m repro`` CLI.

Quick start -- configure resources once, then run or stream any scenario::

    from repro import Session

    session = Session(workers=2, cache_dir=".eval-cache", scale=0.25)
    result = session.run("fig12-overall")          # ScenarioResult
    print(result.payload["vgg16"]["LoAS"]["speedup"])
    print(result.provenance["cache"])              # hit/miss counters

    stream = session.stream("fig13-traffic")       # partitions as they land
    for partition in stream:
        print(f"{partition.workload_label}: {partition.index + 1}/{partition.total}")
    merged = stream.result                         # == session.run(...), bit-for-bit

    print(session.run("table2-workloads").to_json(indent=2))

The same surface is scriptable from a shell::

    python -m repro list
    python -m repro run fig13-traffic --scale 0.25 --workers 2 --stream

Low-level access stays available for single workloads::

    from repro import LoASSimulator, get_layer_workload

    sim = LoASSimulator()
    result = sim.simulate_workload(get_layer_workload("V-L8"))
    print(result.cycles, result.dram_bytes, result.energy_pj)
"""

__version__ = "0.3.0"

from .api import PartitionResult, ScenarioResult, Session, default_session
from .core import LoASConfig, LoASSimulator, ftp_layer
from .engine import LayerEvaluation, WorkloadEvaluationCache, default_cache
from .snn import (
    LIFParameters,
    get_layer_workload,
    get_network_workload,
    lif_fire,
    spmspm_reference,
)
from .sparse import PackedSpikeMatrix

__all__ = [
    "LIFParameters",
    "LayerEvaluation",
    "LoASConfig",
    "LoASSimulator",
    "PackedSpikeMatrix",
    "PartitionResult",
    "ScenarioResult",
    "Session",
    "WorkloadEvaluationCache",
    "__version__",
    "default_cache",
    "default_session",
    "ftp_layer",
    "get_layer_workload",
    "get_network_workload",
    "lif_fire",
    "spmspm_reference",
]
