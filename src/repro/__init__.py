"""Reproduction of *LoAS: Fully Temporal-Parallel Dataflow for Dual-Sparse
Spiking Neural Networks* (MICRO 2024).

The package is organised bottom-up:

* :mod:`repro.sparse` -- compression formats (bitmask fibers, the
  FTP-friendly packed-temporal spike format, CSR/CSC),
* :mod:`repro.snn` -- LIF neurons, the functional spMspM + LIF reference,
  Table II workloads, a toy surrogate-gradient trainer, LTH pruning and the
  fine-tuned silent-neuron preprocessing,
* :mod:`repro.arch` -- energy/area models, memory hierarchy, prefix-sum
  circuits, crossbar and systolic-array substrates,
* :mod:`repro.dataflow` -- loop-nest analysis of spMspM dataflows with a
  temporal dimension,
* :mod:`repro.engine` -- the shared workload-evaluation engine: per-layer
  tensors and statistics computed once and cached across simulators,
* :mod:`repro.core` -- the FTP dataflow, the FTP-friendly inner join, TPPE,
  P-LIF and the LoAS accelerator simulator,
* :mod:`repro.baselines` -- SparTen/GoSPA/Gamma "-SNN" baselines, the ANN
  originals, and the dense PTB / Stellar baselines,
* :mod:`repro.experiments` -- one module per paper table / figure.

Quick start::

    from repro import LoASSimulator, get_layer_workload

    sim = LoASSimulator()
    result = sim.simulate_workload(get_layer_workload("V-L8"))
    print(result.cycles, result.dram_bytes, result.energy_pj)
"""

from .core import LoASConfig, LoASSimulator, ftp_layer
from .engine import LayerEvaluation, WorkloadEvaluationCache, default_cache
from .snn import (
    LIFParameters,
    get_layer_workload,
    get_network_workload,
    lif_fire,
    spmspm_reference,
)
from .sparse import PackedSpikeMatrix

__all__ = [
    "LIFParameters",
    "LayerEvaluation",
    "LoASConfig",
    "LoASSimulator",
    "PackedSpikeMatrix",
    "WorkloadEvaluationCache",
    "__version__",
    "default_cache",
    "ftp_layer",
    "get_layer_workload",
    "get_network_workload",
    "lif_fire",
    "spmspm_reference",
]

__version__ = "0.1.0"
