"""Leaky-Integrate-and-Fire (LIF) neuron dynamics.

Implements Equations (1)-(3) of the LoAS paper with the hard-reset scheme the
paper focuses on:

* Step 1: matrix multiplication produces the per-timestep input current
  ``O[m, n, t]``.
* Step 2: the membrane potential ``X[t] = O[t] + U[t-1]`` is compared against
  the threshold ``v_th`` and a spike ``C[t] = 1`` is emitted when it exceeds
  the threshold.
* Step 3: the membrane potential is updated with a leak factor ``tau`` and a
  hard reset: ``U[t] = tau * X[t] * (1 - C[t])``.

The functions are written to operate on whole output tensors at once so the
functional reference can be compared bit-for-bit against every hardware model
in this repository.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LIFParameters", "lif_fire", "lif_step", "LIFNeuron"]


@dataclass(frozen=True)
class LIFParameters:
    """Parameters of the LIF neuron model.

    Attributes
    ----------
    threshold:
        Firing threshold ``v_th``.
    leak:
        Leak factor ``tau`` in ``(0, 1]`` applied to the retained membrane
        potential after each timestep.
    """

    threshold: float = 1.0
    leak: float = 0.5

    def __post_init__(self) -> None:
        if self.leak <= 0.0 or self.leak > 1.0:
            raise ValueError("leak factor must lie in (0, 1]")


def lif_step(
    current: np.ndarray,
    membrane: np.ndarray,
    params: LIFParameters,
) -> tuple[np.ndarray, np.ndarray]:
    """Advance the LIF dynamics by one timestep.

    Parameters
    ----------
    current:
        Input current ``O[..., t]`` for this timestep.
    membrane:
        Membrane potential carried over from the previous timestep
        (``U[t-1]``), same shape as ``current``.
    params:
        Neuron parameters.

    Returns
    -------
    spikes, new_membrane:
        The emitted unary spikes ``C[t]`` and the updated potential ``U[t]``.
    """
    potential = current + membrane
    spikes = (potential > params.threshold).astype(np.uint8)
    new_membrane = params.leak * potential * (1 - spikes)
    return spikes, new_membrane


def lif_fire(currents: np.ndarray, params: LIFParameters | None = None) -> np.ndarray:
    """Run the LIF dynamics over a full ``... x T`` current tensor.

    The trailing axis is the temporal axis.  Returns the unary spike tensor
    of the same shape.  The membrane potential starts at zero, matching the
    per-layer reset used in direct-coded SNN inference.
    """
    params = params or LIFParameters()
    currents = np.asarray(currents, dtype=np.float64)
    timesteps = currents.shape[-1]
    spikes = np.zeros_like(currents, dtype=np.uint8)
    membrane = np.zeros(currents.shape[:-1], dtype=np.float64)
    for t in range(timesteps):
        spikes[..., t], membrane = lif_step(currents[..., t], membrane, params)
    return spikes


class LIFNeuron:
    """Stateful single-population LIF neuron used by the trainer and examples.

    The class keeps the membrane potential across successive :meth:`forward`
    calls (one call per timestep) so it can be embedded in an explicitly
    time-stepped simulation, e.g. the surrogate-gradient trainer.
    """

    def __init__(self, shape: tuple[int, ...], params: LIFParameters | None = None):
        self.params = params or LIFParameters()
        self.shape = tuple(shape)
        self.membrane = np.zeros(self.shape, dtype=np.float64)

    def reset(self) -> None:
        """Reset the membrane potential to zero (start of a new inference)."""
        self.membrane = np.zeros(self.shape, dtype=np.float64)

    def forward(self, current: np.ndarray) -> np.ndarray:
        """Integrate one timestep of input current and return the spikes."""
        current = np.asarray(current, dtype=np.float64)
        if current.shape != self.shape:
            raise ValueError(
                "current shape %s does not match neuron shape %s" % (current.shape, self.shape)
            )
        spikes, self.membrane = lif_step(current, self.membrane, self.params)
        return spikes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "LIFNeuron(shape=%s, threshold=%.3f, leak=%.3f)" % (
            self.shape,
            self.params.threshold,
            self.params.leak,
        )
