"""Spiking-neural-network substrate: neurons, layers, workloads and training.

This subpackage provides everything the accelerator models need from the
algorithm side of the paper:

* LIF neuron dynamics and the functional spMspM + LIF reference
  (:mod:`repro.snn.lif`, :mod:`repro.snn.layers`),
* the evaluated network shapes and Table II workload statistics
  (:mod:`repro.snn.network`, :mod:`repro.snn.workloads`),
* spike encoding front ends (:mod:`repro.snn.encoding`), and
* a toy surrogate-gradient trainer, LTH pruner and the fine-tuned
  silent-neuron preprocessing (:mod:`repro.snn.training`,
  :mod:`repro.snn.pruning`, :mod:`repro.snn.preprocessing`).
"""

from .encoding import direct_encode, poisson_encode, rate_decode
from .layers import LayerOutput, SNNLinearLayer, spmspm_reference
from .lif import LIFNeuron, LIFParameters, lif_fire, lif_step
from .network import (
    LayerShape,
    REPRESENTATIVE_LAYERS,
    alexnet_layers,
    representative_layer,
    resnet19_layers,
    vgg16_layers,
)
from .preprocessing import (
    PreprocessingResult,
    apply_low_activity_mask,
    finetuned_preprocessing_experiment,
)
from .pruning import (
    PruningConfig,
    PruningRoundResult,
    lottery_ticket_prune,
    magnitude_prune_masks,
    weight_sparsity,
)
from .training import (
    SpikingMLP,
    TrainingConfig,
    evaluate_accuracy,
    make_synthetic_classification,
    train,
)
from .workloads import (
    LayerWorkload,
    NetworkWorkload,
    SparsityProfile,
    TABLE2_LAYER_PROFILES,
    TABLE2_NETWORK_PROFILES,
    get_layer_workload,
    get_network_workload,
    list_layer_names,
    list_network_names,
)

__all__ = [
    "LIFNeuron",
    "LIFParameters",
    "LayerOutput",
    "LayerShape",
    "LayerWorkload",
    "NetworkWorkload",
    "PreprocessingResult",
    "PruningConfig",
    "PruningRoundResult",
    "REPRESENTATIVE_LAYERS",
    "SNNLinearLayer",
    "SparsityProfile",
    "SpikingMLP",
    "TABLE2_LAYER_PROFILES",
    "TABLE2_NETWORK_PROFILES",
    "TrainingConfig",
    "alexnet_layers",
    "apply_low_activity_mask",
    "direct_encode",
    "evaluate_accuracy",
    "finetuned_preprocessing_experiment",
    "get_layer_workload",
    "get_network_workload",
    "lif_fire",
    "lif_step",
    "list_layer_names",
    "list_network_names",
    "lottery_ticket_prune",
    "magnitude_prune_masks",
    "make_synthetic_classification",
    "poisson_encode",
    "rate_decode",
    "representative_layer",
    "resnet19_layers",
    "spmspm_reference",
    "train",
    "vgg16_layers",
    "weight_sparsity",
]
