"""Lottery-ticket-hypothesis (LTH) style pruning for the toy spiking MLP.

The LoAS workloads are pruned with the open-source LTH toolchain of
Kim et al. (ECCV'22): iterative magnitude pruning with weight rewinding to
the original initialisation, repeated for several rounds until the target
weight sparsity (up to ~98 %) is reached.  This module implements that
procedure for :class:`repro.snn.training.SpikingMLP` so the full algorithmic
pipeline of the paper (train -> prune -> preprocess -> accelerate) can be run
at laptop scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .training import SpikingMLP, TrainingConfig, evaluate_accuracy, train

__all__ = ["PruningConfig", "PruningRoundResult", "magnitude_prune_masks", "lottery_ticket_prune", "weight_sparsity"]


@dataclass
class PruningConfig:
    """Configuration of the iterative LTH pruning loop.

    Attributes
    ----------
    rounds:
        Number of prune-retrain rounds (the paper uses 15).
    prune_fraction:
        Fraction of the currently remaining weights removed each round.
    training:
        Training hyper-parameters used to retrain after each round.
    rewind:
        Rewind surviving weights to their initial values after each round
        (the defining step of the lottery-ticket procedure).
    """

    rounds: int = 5
    prune_fraction: float = 0.4
    training: TrainingConfig = field(default_factory=TrainingConfig)
    rewind: bool = True


@dataclass
class PruningRoundResult:
    """Outcome of one pruning round."""

    round_index: int
    weight_sparsity: float
    accuracy: float


def weight_sparsity(model: SpikingMLP) -> float:
    """Overall fraction of pruned weights across all layers of the model."""
    total = sum(mask.size for mask in model.masks)
    kept = sum(int(mask.sum()) for mask in model.masks)
    if total == 0:
        return 0.0
    return 1.0 - kept / total


def magnitude_prune_masks(model: SpikingMLP, prune_fraction: float) -> list[np.ndarray]:
    """Compute new pruning masks removing the smallest surviving weights.

    Pruning is global across layers: the ``prune_fraction`` smallest-magnitude
    weights among the currently surviving ones are removed.
    """
    if not 0.0 <= prune_fraction < 1.0:
        raise ValueError("prune_fraction must lie in [0, 1)")
    magnitudes = []
    for w, m in zip(model.weights, model.masks):
        magnitudes.append(np.abs(w[m]))
    surviving = np.concatenate(magnitudes) if magnitudes else np.array([])
    if surviving.size == 0:
        return [m.copy() for m in model.masks]
    k = int(np.floor(prune_fraction * surviving.size))
    if k == 0:
        return [m.copy() for m in model.masks]
    threshold = np.partition(surviving, k - 1)[k - 1]
    new_masks = []
    for w, m in zip(model.weights, model.masks):
        new_mask = m & (np.abs(w) > threshold)
        new_masks.append(new_mask)
    return new_masks


def lottery_ticket_prune(
    model: SpikingMLP,
    inputs: np.ndarray,
    labels: np.ndarray,
    config: PruningConfig | None = None,
    rng: np.random.Generator | None = None,
) -> list[PruningRoundResult]:
    """Run iterative magnitude pruning with rewinding on a spiking MLP.

    The model is trained, pruned, (optionally) rewound to its initial
    weights, and retrained, for ``config.rounds`` rounds.  Returns the
    per-round sparsity and accuracy history; the model is modified in place.
    """
    config = config or PruningConfig()
    rng = np.random.default_rng() if rng is None else rng
    initial_weights = [w.copy() for w in model.weights]

    history: list[PruningRoundResult] = []
    train(model, inputs, labels, config.training, rng=rng)
    history.append(
        PruningRoundResult(0, weight_sparsity(model), evaluate_accuracy(model, inputs, labels))
    )

    for round_index in range(1, config.rounds + 1):
        model.masks = magnitude_prune_masks(model, config.prune_fraction)
        if config.rewind:
            for w, init in zip(model.weights, initial_weights):
                w[...] = init
        train(model, inputs, labels, config.training, rng=rng)
        history.append(
            PruningRoundResult(
                round_index,
                weight_sparsity(model),
                evaluate_accuracy(model, inputs, labels),
            )
        )
    return history
