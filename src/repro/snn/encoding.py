"""Spike encoding front ends.

Recent SNN works (including every workload evaluated by LoAS) use *direct
encoding*: the analog input first passes through one ANN layer whose output
current is fed to LIF neurons at every timestep, producing a spike train in
very few timesteps.  A classic Poisson rate encoder is also provided for the
examples and for property tests of the temporal statistics.
"""

from __future__ import annotations

import numpy as np

from .lif import LIFParameters, lif_fire

__all__ = ["direct_encode", "poisson_encode", "rate_decode"]


def direct_encode(
    inputs: np.ndarray,
    encoder_weights: np.ndarray,
    timesteps: int,
    lif: LIFParameters | None = None,
) -> np.ndarray:
    """Direct (rate) encoding through one ANN layer followed by LIF neurons.

    Parameters
    ----------
    inputs:
        Analog input matrix of shape ``(M, F)`` (e.g. flattened pixels).
    encoder_weights:
        Weights of the encoding ANN layer, shape ``(F, K)``.
    timesteps:
        Number of timesteps ``T`` to unroll.
    lif:
        Parameters of the encoding LIF neurons.

    Returns
    -------
    Unary spike tensor of shape ``(M, K, T)``.
    """
    inputs = np.asarray(inputs, dtype=np.float64)
    encoder_weights = np.asarray(encoder_weights, dtype=np.float64)
    if inputs.ndim != 2 or encoder_weights.ndim != 2:
        raise ValueError("inputs must be (M, F) and encoder_weights must be (F, K)")
    if inputs.shape[1] != encoder_weights.shape[0]:
        raise ValueError("feature dimension mismatch between inputs and encoder weights")
    currents = inputs @ encoder_weights
    # The same current is injected at every timestep; the LIF dynamics turn
    # it into a rate-coded spike train.
    repeated = np.repeat(currents[:, :, None], timesteps, axis=2)
    return lif_fire(repeated, lif or LIFParameters())


def poisson_encode(
    inputs: np.ndarray,
    timesteps: int,
    rng: np.random.Generator | None = None,
    max_rate: float = 1.0,
) -> np.ndarray:
    """Poisson (Bernoulli-per-timestep) rate encoding of values in ``[0, 1]``.

    Each input value ``p`` fires independently at each timestep with
    probability ``p * max_rate``.
    """
    rng = np.random.default_rng() if rng is None else rng
    inputs = np.clip(np.asarray(inputs, dtype=np.float64), 0.0, 1.0)
    probabilities = inputs * max_rate
    draws = rng.random(inputs.shape + (timesteps,))
    return (draws < probabilities[..., None]).astype(np.uint8)


def rate_decode(spikes: np.ndarray) -> np.ndarray:
    """Decode a spike train back to a rate: mean firing over the time axis."""
    spikes = np.asarray(spikes)
    if spikes.ndim < 1:
        raise ValueError("expected a spike tensor with a trailing time axis")
    return spikes.mean(axis=-1)
