"""Fine-tuned silent-neuron preprocessing (Section V, Figure 11).

LoAS's packed compression benefits from a high fraction of *silent* neurons.
The paper therefore adds a preprocessing step: pre-synaptic neurons that fire
only once throughout all timesteps are masked (forced silent); a handful of
fine-tuning epochs then fully recovers the accuracy lost to the masking.

Two levels of API are provided:

* tensor-level helpers that operate directly on spike tensors (used by the
  hardware workload generation), re-exported from :mod:`repro.sparse.matrix`;
* a model-level experiment, :func:`finetuned_preprocessing_experiment`, that
  reproduces the shape of Figure 11 with the toy trainer: train, mask, then
  fine-tune for 1 / 5 / 10 epochs and record the accuracy trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..sparse.matrix import mask_low_activity_neurons, silent_neuron_fraction
from .training import SpikingMLP, TrainingConfig, evaluate_accuracy, train

__all__ = [
    "mask_low_activity_neurons",
    "silent_neuron_fraction",
    "PreprocessingResult",
    "apply_low_activity_mask",
    "finetuned_preprocessing_experiment",
]


@dataclass
class PreprocessingResult:
    """Accuracy trajectory of the fine-tuned preprocessing experiment.

    Attributes
    ----------
    original_accuracy:
        Accuracy of the trained model before any masking.
    masked_accuracy:
        Accuracy immediately after masking low-activity neurons.
    finetuned_accuracy:
        Accuracy after each recorded number of fine-tuning epochs, keyed by
        epoch count (e.g. ``{1: ..., 5: ..., 10: ...}``).
    masked_fraction:
        Fraction of hidden neurons masked by the preprocessing.
    """

    original_accuracy: float
    masked_accuracy: float
    finetuned_accuracy: dict[int, float] = field(default_factory=dict)
    masked_fraction: float = 0.0


def apply_low_activity_mask(
    model: SpikingMLP,
    inputs: np.ndarray,
    max_spikes: int = 1,
) -> float:
    """Mask hidden neurons firing at most ``max_spikes`` times on ``inputs``.

    The spike counts are measured over the whole calibration set and all
    timesteps; neurons at or below the threshold are forced silent through
    the model's hidden-neuron masks.  Returns the fraction of hidden neurons
    masked.
    """
    counts = model.hidden_spike_counts(np.asarray(inputs, dtype=np.float64))
    masked = 0
    total = 0
    samples = max(1, np.asarray(inputs).shape[0])
    for layer_index, layer_counts in enumerate(counts):
        per_sample = layer_counts / samples
        low_activity = (per_sample > 0) & (per_sample <= max_spikes)
        model.hidden_neuron_masks[layer_index] = model.hidden_neuron_masks[layer_index] & ~low_activity
        masked += int(low_activity.sum())
        total += layer_counts.size
    return masked / total if total else 0.0


def finetuned_preprocessing_experiment(
    model: SpikingMLP,
    train_inputs: np.ndarray,
    train_labels: np.ndarray,
    test_inputs: np.ndarray,
    test_labels: np.ndarray,
    finetune_epochs: tuple[int, ...] = (1, 5, 10),
    training: TrainingConfig | None = None,
    max_spikes: int = 1,
    rng: np.random.Generator | None = None,
) -> PreprocessingResult:
    """Reproduce the Figure 11 experiment with an already-trained model.

    The model is evaluated, low-activity hidden neurons are masked, the
    masked model is evaluated again, and the model is then fine-tuned with
    the masks in place, recording the accuracy after each requested number of
    epochs.
    """
    training = training or TrainingConfig(epochs=1)
    rng = np.random.default_rng() if rng is None else rng

    original = evaluate_accuracy(model, test_inputs, test_labels)
    masked_fraction = apply_low_activity_mask(model, train_inputs, max_spikes=max_spikes)
    masked = evaluate_accuracy(model, test_inputs, test_labels)

    finetuned: dict[int, float] = {}
    epochs_done = 0
    for target in sorted(finetune_epochs):
        step = TrainingConfig(
            epochs=target - epochs_done,
            learning_rate=training.learning_rate,
            batch_size=training.batch_size,
            surrogate_width=training.surrogate_width,
        )
        if step.epochs > 0:
            train(model, train_inputs, train_labels, step, rng=rng)
            epochs_done = target
        finetuned[target] = evaluate_accuracy(model, test_inputs, test_labels)

    return PreprocessingResult(
        original_accuracy=original,
        masked_accuracy=masked,
        finetuned_accuracy=finetuned,
        masked_fraction=masked_fraction,
    )
