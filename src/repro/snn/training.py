"""Toy-scale surrogate-gradient BPTT trainer for spiking MLPs.

The LoAS paper trains its workloads with backpropagation-through-time and a
surrogate gradient, then applies lottery-ticket pruning and the fine-tuned
silent-neuron preprocessing.  Real CIFAR training is out of scope for an
offline reproduction, so this module provides a small NumPy implementation of
the same training pipeline on synthetic classification data.  It is used to:

* demonstrate the algorithmic pipeline end to end (examples),
* reproduce the *shape* of Figure 11 (accuracy drop after masking low
  activity neurons and recovery after a few fine-tuning epochs), and
* feed realistic (trained, not random) sparsity structure into the pruning
  and preprocessing tests.

The implementation is intentionally simple: fully-connected layers, LIF
neurons with a piecewise-linear surrogate derivative, spike-count readout,
softmax cross-entropy loss and plain SGD.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .lif import LIFParameters

__all__ = [
    "TrainingConfig",
    "SpikingMLP",
    "make_synthetic_classification",
    "train",
    "evaluate_accuracy",
]


@dataclass
class TrainingConfig:
    """Hyper-parameters of the toy BPTT trainer."""

    epochs: int = 10
    learning_rate: float = 0.05
    batch_size: int = 32
    surrogate_width: float = 1.0


def make_synthetic_classification(
    num_samples: int,
    num_features: int,
    num_classes: int,
    rng: np.random.Generator | None = None,
    cluster_spread: float = 0.6,
) -> tuple[np.ndarray, np.ndarray]:
    """Gaussian-cluster classification data in ``[0, 1]`` feature space.

    Returns ``(inputs, labels)`` where ``inputs`` has shape
    ``(num_samples, num_features)`` and labels are integers in
    ``[0, num_classes)``.
    """
    rng = np.random.default_rng() if rng is None else rng
    centers = rng.random((num_classes, num_features))
    labels = rng.integers(0, num_classes, size=num_samples)
    inputs = centers[labels] + rng.normal(0.0, cluster_spread / num_classes, size=(num_samples, num_features))
    inputs = np.clip(inputs, 0.0, 1.0)
    return inputs, labels


def _surrogate_grad(potential: np.ndarray, threshold: float, width: float) -> np.ndarray:
    """Piecewise-linear surrogate derivative of the spike function."""
    return np.clip(1.0 - np.abs(potential - threshold) / width, 0.0, None)


class SpikingMLP:
    """A fully-connected spiking network trained with surrogate-gradient BPTT.

    Parameters
    ----------
    layer_sizes:
        Sizes of the layers including input and output, e.g.
        ``[64, 128, 10]``.
    timesteps:
        Number of timesteps the input current is presented for.
    lif:
        LIF parameters shared by the hidden layers.  The output layer
        accumulates membrane potential without firing (standard readout).
    rng:
        Source of randomness for weight initialisation.
    """

    def __init__(
        self,
        layer_sizes: list[int],
        timesteps: int = 4,
        lif: LIFParameters | None = None,
        rng: np.random.Generator | None = None,
    ):
        if len(layer_sizes) < 2:
            raise ValueError("need at least an input and an output layer")
        rng = np.random.default_rng() if rng is None else rng
        self.layer_sizes = list(layer_sizes)
        self.timesteps = timesteps
        self.lif = lif or LIFParameters(threshold=1.0, leak=0.5)
        self.weights: list[np.ndarray] = []
        self.masks: list[np.ndarray] = []
        for fan_in, fan_out in zip(layer_sizes[:-1], layer_sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self.weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self.masks.append(np.ones((fan_in, fan_out), dtype=bool))
        self.input_neuron_mask = np.ones(layer_sizes[0], dtype=bool)
        self.hidden_neuron_masks = [np.ones(size, dtype=bool) for size in layer_sizes[1:-1]]

    # ------------------------------------------------------------------ #
    # Forward / backward
    # ------------------------------------------------------------------ #
    @property
    def num_layers(self) -> int:
        """Number of weight matrices."""
        return len(self.weights)

    def effective_weights(self) -> list[np.ndarray]:
        """Weights with the pruning masks applied."""
        return [w * m for w, m in zip(self.weights, self.masks)]

    def forward(self, inputs: np.ndarray, record: bool = False):
        """Run the network over all timesteps.

        Parameters
        ----------
        inputs:
            Analog input batch of shape ``(batch, input_size)``; the same
            current is injected every timestep (direct encoding).
        record:
            When ``True`` the full state needed for backpropagation (and for
            spike-activity statistics) is returned alongside the logits.

        Returns
        -------
        ``logits`` of shape ``(batch, num_classes)``; when ``record`` is set,
        a ``(logits, trace)`` pair where ``trace`` holds per-timestep spikes
        and membrane potentials.
        """
        inputs = np.asarray(inputs, dtype=np.float64)
        batch = inputs.shape[0]
        weights = self.effective_weights()
        hidden_count = self.num_layers - 1
        membranes = [np.zeros((batch, w.shape[1])) for w in weights]
        spikes_by_layer: list[list[np.ndarray]] = [[] for _ in range(hidden_count)]
        potentials_by_layer: list[list[np.ndarray]] = [[] for _ in range(hidden_count)]
        input_spikes: list[np.ndarray] = []
        readout = np.zeros((batch, weights[-1].shape[1]))

        masked_inputs = inputs * self.input_neuron_mask
        for _ in range(self.timesteps):
            activation = masked_inputs
            input_spikes.append(activation)
            for layer in range(hidden_count):
                current = activation @ weights[layer]
                potential = membranes[layer] + current
                layer_spikes = (potential > self.lif.threshold).astype(np.float64)
                if self.hidden_neuron_masks:
                    layer_spikes = layer_spikes * self.hidden_neuron_masks[layer]
                membranes[layer] = self.lif.leak * potential * (1.0 - layer_spikes)
                potentials_by_layer[layer].append(potential)
                spikes_by_layer[layer].append(layer_spikes)
                activation = layer_spikes
            readout += activation @ weights[-1]

        logits = readout / self.timesteps
        if not record:
            return logits
        trace = {
            "input_spikes": input_spikes,
            "spikes": spikes_by_layer,
            "potentials": potentials_by_layer,
        }
        return logits, trace

    def hidden_spike_counts(self, inputs: np.ndarray) -> list[np.ndarray]:
        """Per-neuron spike counts of each hidden layer, summed over time."""
        _, trace = self.forward(inputs, record=True)
        counts = []
        for layer_spikes in trace["spikes"]:
            stacked = np.stack(layer_spikes, axis=-1)  # batch x neurons x T
            counts.append(stacked.sum(axis=(0, 2)))
        return counts

    def _backward(self, inputs, labels, config: TrainingConfig):
        """One BPTT backward pass; returns gradients and the batch loss."""
        logits, trace = self.forward(inputs, record=True)
        batch = inputs.shape[0]
        weights = self.effective_weights()
        hidden_count = self.num_layers - 1

        # Softmax cross-entropy on the rate readout.
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=1, keepdims=True)
        loss = float(-np.log(probs[np.arange(batch), labels] + 1e-12).mean())
        dlogits = probs.copy()
        dlogits[np.arange(batch), labels] -= 1.0
        dlogits /= batch

        grads = [np.zeros_like(w) for w in self.weights]

        # Readout layer gradient: accumulated over timesteps (divided by T in
        # the forward pass, so each timestep contributes dlogits / T).
        dreadout = dlogits / self.timesteps
        # Gradient flowing back into the last hidden layer's spikes at each t.
        for t in range(self.timesteps):
            last_spikes = trace["spikes"][-1][t] if hidden_count else trace["input_spikes"][t]
            grads[-1] += last_spikes.T @ dreadout

        # Back-propagate through hidden layers, timestep by timestep.
        # We use a truncated-through-membrane approximation: the temporal
        # credit through the membrane carry-over is dropped (standard
        # practice for short direct-coded sequences) while the spatial path
        # through the surrogate derivative is exact.
        for layer in reversed(range(hidden_count)):
            w_next = weights[layer + 1]
            for t in range(self.timesteps):
                if layer == hidden_count - 1:
                    dspike = dreadout @ w_next.T
                else:
                    dspike = self._dspike_cache[layer + 1][t] @ w_next.T
                potential = trace["potentials"][layer][t]
                surrogate = _surrogate_grad(potential, self.lif.threshold, config.surrogate_width)
                dpotential = dspike * surrogate
                pre = trace["input_spikes"][t] if layer == 0 else trace["spikes"][layer - 1][t]
                grads[layer] += pre.T @ dpotential
                self._dspike_cache[layer][t] = dpotential
        return grads, loss

    def train_batch(self, inputs, labels, config: TrainingConfig) -> float:
        """Run one SGD step on a batch; returns the batch loss."""
        hidden_count = self.num_layers - 1
        self._dspike_cache = [
            [np.zeros((inputs.shape[0], self.layer_sizes[layer + 1])) for _ in range(self.timesteps)]
            for layer in range(hidden_count)
        ]
        grads, loss = self._backward(np.asarray(inputs, dtype=np.float64), labels, config)
        for w, g, m in zip(self.weights, grads, self.masks):
            w -= config.learning_rate * g * m
        return loss

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Class predictions for a batch of inputs."""
        logits = self.forward(inputs)
        return np.argmax(logits, axis=1)


def train(
    model: SpikingMLP,
    inputs: np.ndarray,
    labels: np.ndarray,
    config: TrainingConfig | None = None,
    rng: np.random.Generator | None = None,
) -> list[float]:
    """Train ``model`` with mini-batch SGD; returns the per-epoch mean loss."""
    config = config or TrainingConfig()
    rng = np.random.default_rng() if rng is None else rng
    inputs = np.asarray(inputs, dtype=np.float64)
    labels = np.asarray(labels)
    num_samples = inputs.shape[0]
    losses = []
    for _ in range(config.epochs):
        order = rng.permutation(num_samples)
        epoch_losses = []
        for start in range(0, num_samples, config.batch_size):
            batch_idx = order[start : start + config.batch_size]
            loss = model.train_batch(inputs[batch_idx], labels[batch_idx], config)
            epoch_losses.append(loss)
        losses.append(float(np.mean(epoch_losses)))
    return losses


def evaluate_accuracy(model: SpikingMLP, inputs: np.ndarray, labels: np.ndarray) -> float:
    """Classification accuracy of ``model`` on the given data."""
    predictions = model.predict(np.asarray(inputs, dtype=np.float64))
    return float((predictions == np.asarray(labels)).mean())
