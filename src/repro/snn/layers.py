"""Functional SNN layer: dual-sparse spMspM followed by LIF firing.

This module is the *golden reference* for everything the accelerators
compute.  ``spmspm_reference`` implements Equation (1) with plain NumPy, and
:class:`SNNLinearLayer` chains it with the LIF dynamics of
:mod:`repro.snn.lif` to produce the output spike tensor ``C``.

Every hardware model in :mod:`repro.core` and :mod:`repro.baselines` is
validated against these functions in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .lif import LIFParameters, lif_fire

__all__ = ["spmspm_reference", "SNNLinearLayer", "LayerOutput"]


def spmspm_reference(spikes: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Dense reference of Equation (1): ``O[m, n, t] = sum_k A[m, k, t] B[k, n]``.

    Parameters
    ----------
    spikes:
        Unary input spike tensor ``A`` with shape ``(M, K, T)``.
    weights:
        Weight matrix ``B`` with shape ``(K, N)``.

    Returns
    -------
    The full-sum tensor ``O`` with shape ``(M, N, T)``.
    """
    spikes = np.asarray(spikes)
    weights = np.asarray(weights)
    if spikes.ndim != 3:
        raise ValueError("spikes must have shape (M, K, T)")
    if weights.ndim != 2:
        raise ValueError("weights must have shape (K, N)")
    if spikes.shape[1] != weights.shape[0]:
        raise ValueError(
            "contraction dimension mismatch: spikes K=%d, weights K=%d"
            % (spikes.shape[1], weights.shape[0])
        )
    # einsum contracts over k; the temporal axis rides along untouched.
    return np.einsum("mkt,kn->mnt", spikes.astype(np.int64), weights.astype(np.int64))


@dataclass
class LayerOutput:
    """Result of running one SNN layer.

    Attributes
    ----------
    full_sums:
        The accumulated currents ``O`` of shape ``(M, N, T)``.
    spikes:
        The output spike tensor ``C`` of shape ``(M, N, T)``.
    """

    full_sums: np.ndarray
    spikes: np.ndarray


@dataclass
class SNNLinearLayer:
    """A fully-connected (GEMM-lowered) SNN layer.

    Convolutions in the evaluated networks are lowered to GEMM, so a single
    linear layer with shape ``(K, N)`` covers every layer type the paper
    evaluates.

    Attributes
    ----------
    weights:
        Weight matrix ``B`` of shape ``(K, N)``.
    lif:
        LIF neuron parameters applied to the accumulated currents.
    """

    weights: np.ndarray
    lif: LIFParameters = field(default_factory=LIFParameters)

    def __post_init__(self) -> None:
        self.weights = np.asarray(self.weights)
        if self.weights.ndim != 2:
            raise ValueError("weights must be a 2-D (K, N) matrix")

    @property
    def input_size(self) -> int:
        """Contraction dimension ``K``."""
        return int(self.weights.shape[0])

    @property
    def output_size(self) -> int:
        """Number of output neurons ``N``."""
        return int(self.weights.shape[1])

    def forward(self, spikes: np.ndarray) -> LayerOutput:
        """Run the layer on an ``(M, K, T)`` spike tensor."""
        full_sums = spmspm_reference(spikes, self.weights)
        out_spikes = lif_fire(full_sums, self.lif)
        return LayerOutput(full_sums=full_sums, spikes=out_spikes)

    def __call__(self, spikes: np.ndarray) -> LayerOutput:
        return self.forward(spikes)
