"""Synthetic dual-sparse workloads matching Table II of the LoAS paper.

The accelerator results in the paper depend only on the layer shapes and on
three sparsity statistics per workload:

* ``AvSpA-origin`` -- average spike sparsity across timesteps,
* ``AvSpA-packed`` -- density of *silent* neurons (neurons that never fire),
  with and without the fine-tuned preprocessing, and
* ``AvSpB`` -- weight sparsity after lottery-ticket pruning.

This module records those statistics exactly as published and generates
random tensors that reproduce them, so every hardware experiment can be run
without the original trained checkpoints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..sparse.matrix import random_spike_tensor, random_weight_matrix
from .network import (
    LayerShape,
    REPRESENTATIVE_LAYERS,
    alexnet_layers,
    resnet19_layers,
    vgg16_layers,
)

__all__ = [
    "SparsityProfile",
    "LayerWorkload",
    "NetworkWorkload",
    "TABLE2_NETWORK_PROFILES",
    "TABLE2_LAYER_PROFILES",
    "get_network_workload",
    "get_layer_workload",
    "list_network_names",
    "list_layer_names",
]


@dataclass(frozen=True)
class SparsityProfile:
    """Sparsity statistics of one workload (one row of Table II).

    All values are fractions in ``[0, 1]`` (the paper reports percentages).

    Attributes
    ----------
    spike_sparsity:
        ``AvSpA-origin``: fraction of zero entries in the spike tensor.
    silent_fraction:
        ``AvSpA-packed``: fraction of pre-synaptic neurons that never fire.
    silent_fraction_finetuned:
        ``AvSpA-packed (+FT)``: silent fraction after the fine-tuned
        preprocessing that masks neurons firing only once.
    weight_sparsity:
        ``AvSpB``: fraction of pruned (zero) weights.
    """

    spike_sparsity: float
    silent_fraction: float
    silent_fraction_finetuned: float
    weight_sparsity: float

    def silent(self, finetuned: bool) -> float:
        """Silent-neuron fraction with or without preprocessing."""
        return self.silent_fraction_finetuned if finetuned else self.silent_fraction


TABLE2_NETWORK_PROFILES: dict[str, SparsityProfile] = {
    "alexnet": SparsityProfile(0.812, 0.713, 0.767, 0.982),
    "vgg16": SparsityProfile(0.823, 0.741, 0.796, 0.982),
    "resnet19": SparsityProfile(0.686, 0.596, 0.661, 0.968),
}
"""Network-level sparsity statistics (Table II, top half)."""


TABLE2_LAYER_PROFILES: dict[str, SparsityProfile] = {
    "A-L4": SparsityProfile(0.758, 0.632, 0.697, 0.989),
    "V-L8": SparsityProfile(0.881, 0.765, 0.868, 0.968),
    "R-L19": SparsityProfile(0.579, 0.514, 0.557, 0.991),
    # The paper leaves the origin / non-FT columns of T-HFF blank; the
    # fine-tuned silent fraction (86.8 %) and weight sparsity (96.8 %) are
    # published, the remaining values reuse the V-L8 statistics, which share
    # the same published numbers.
    "T-HFF": SparsityProfile(0.881, 0.765, 0.868, 0.968),
}
"""Representative-layer sparsity statistics (Table II, bottom half)."""


@dataclass
class LayerWorkload:
    """One GEMM-lowered layer plus its sparsity statistics.

    :meth:`generate` materialises random tensors that match the profile so
    the accelerator models can be driven end to end.
    """

    shape: LayerShape
    profile: SparsityProfile
    weight_bits: int = 8

    @property
    def name(self) -> str:
        """Layer name, e.g. ``"V-L8"``."""
        return self.shape.name

    def scaled(self, scale: float) -> "LayerWorkload":
        """Proportionally smaller copy (same sparsity profile) for quick runs."""
        return LayerWorkload(self.shape.scaled(scale), self.profile, self.weight_bits)

    def generate(
        self,
        rng: np.random.Generator | None = None,
        finetuned: bool = False,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Generate ``(spikes A, weights B)`` tensors matching the profile.

        Parameters
        ----------
        rng:
            Source of randomness; a fresh default generator when ``None``.
        finetuned:
            Use the fine-tuned (preprocessed) silent-neuron fraction.
        """
        rng = np.random.default_rng() if rng is None else rng
        s = self.shape
        spikes = random_spike_tensor(
            s.m,
            s.k,
            s.t,
            spike_sparsity=self.profile.spike_sparsity,
            silent_fraction=self.profile.silent(finetuned),
            rng=rng,
        )
        weights = random_weight_matrix(
            s.k, s.n, self.profile.weight_sparsity, rng=rng, weight_bits=self.weight_bits
        )
        return spikes, weights


@dataclass
class NetworkWorkload:
    """A full SNN workload: a list of layers sharing one sparsity profile."""

    name: str
    layers: list[LayerWorkload] = field(default_factory=list)

    @property
    def profile(self) -> SparsityProfile:
        """The shared sparsity profile of the network's layers."""
        return self.layers[0].profile

    @property
    def num_layers(self) -> int:
        """Number of layers in the network."""
        return len(self.layers)

    def scaled(self, scale: float) -> "NetworkWorkload":
        """Proportionally smaller copy of every layer, for quick runs."""
        return NetworkWorkload(self.name, [layer.scaled(scale) for layer in self.layers])

    def total_macs(self) -> int:
        """Dense MAC count of the whole network across all timesteps."""
        return sum(layer.shape.total_macs for layer in self.layers)


_NETWORK_LAYER_FACTORIES = {
    "alexnet": alexnet_layers,
    "vgg16": vgg16_layers,
    "resnet19": resnet19_layers,
}


def list_network_names() -> list[str]:
    """Names of the full-network workloads of Table II."""
    return sorted(_NETWORK_LAYER_FACTORIES)


def list_layer_names() -> list[str]:
    """Names of the representative single-layer workloads of Table II."""
    return sorted(TABLE2_LAYER_PROFILES)


def get_network_workload(
    name: str, timesteps: int = 4, weight_bits: int = 8
) -> NetworkWorkload:
    """Build the full-network workload (``alexnet``, ``vgg16``, ``resnet19``)."""
    key = name.lower()
    if key not in _NETWORK_LAYER_FACTORIES:
        raise KeyError(
            "unknown network %r (expected one of %s)" % (name, list_network_names())
        )
    profile = TABLE2_NETWORK_PROFILES[key]
    shapes = _NETWORK_LAYER_FACTORIES[key](timesteps)
    layers = [LayerWorkload(shape, profile, weight_bits) for shape in shapes]
    return NetworkWorkload(name=key, layers=layers)


def get_layer_workload(name: str, timesteps: int | None = None, weight_bits: int = 8) -> LayerWorkload:
    """Build a representative single-layer workload (``A-L4``, ``V-L8``, ...)."""
    if name not in TABLE2_LAYER_PROFILES:
        raise KeyError(
            "unknown layer %r (expected one of %s)" % (name, list_layer_names())
        )
    shape = REPRESENTATIVE_LAYERS[name]
    if timesteps is not None:
        shape = LayerShape(shape.name, shape.m, shape.k, shape.n, timesteps)
    return LayerWorkload(shape, TABLE2_LAYER_PROFILES[name], weight_bits)
