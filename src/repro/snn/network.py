"""GEMM-lowered layer shapes of the evaluated SNN workloads.

The LoAS evaluation uses three CIFAR-scale SNNs (AlexNet with 7 layers,
VGG16 with 14 layers, ResNet19 with 19 layers), three representative single
layers (A-L4, V-L8, R-L19) and the hidden feed-forward layer of a Spike
Transformer (T-HFF).  Table II of the paper gives the representative layer
shapes exactly; the remaining per-layer shapes are reconstructed from the
standard CIFAR versions of each network with convolutions lowered to GEMM
(``M`` = output spatial positions, ``K`` = input channels x kernel area,
``N`` = output channels).

Only shapes live here -- sparsity statistics and tensor generation live in
:mod:`repro.snn.workloads`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "LayerShape",
    "alexnet_layers",
    "vgg16_layers",
    "resnet19_layers",
    "representative_layer",
    "REPRESENTATIVE_LAYERS",
]


@dataclass(frozen=True)
class LayerShape:
    """Shape of one GEMM-lowered SNN layer.

    Attributes
    ----------
    name:
        Human-readable layer name (e.g. ``"A-L4"``).
    m:
        Number of rows of the input spike matrix (output spatial positions,
        or batch size for fully-connected layers).
    k:
        Contraction dimension (input channels x kernel area).
    n:
        Number of output neurons (output channels).
    t:
        Number of timesteps.
    """

    name: str
    m: int
    k: int
    n: int
    t: int = 4

    @property
    def macs(self) -> int:
        """Dense multiply-accumulate count for one timestep."""
        return self.m * self.k * self.n

    @property
    def total_macs(self) -> int:
        """Dense multiply-accumulate count across all timesteps."""
        return self.macs * self.t

    def scaled(self, scale: float) -> "LayerShape":
        """Return a proportionally smaller shape for quick tests.

        ``m``, ``k`` and ``n`` are multiplied by ``scale`` (minimum 1);
        ``t`` is unchanged so temporal behaviour is preserved.
        """
        if scale <= 0:
            raise ValueError("scale must be positive")
        return LayerShape(
            name=self.name,
            m=max(1, int(round(self.m * scale))),
            k=max(1, int(round(self.k * scale))),
            n=max(1, int(round(self.n * scale))),
            t=self.t,
        )


def alexnet_layers(timesteps: int = 4) -> list[LayerShape]:
    """The 7 GEMM-lowered layers of the CIFAR AlexNet SNN.

    Layer 4 matches the A-L4 representative layer of Table II exactly
    (``M=64, N=256, K=3456``).
    """
    shapes = [
        ("A-L1", 1024, 27, 96),
        ("A-L2", 256, 864, 256),
        ("A-L3", 64, 2304, 384),
        ("A-L4", 64, 3456, 256),
        ("A-L5", 64, 2304, 256),
        ("A-L6", 1, 4096, 1024),
        ("A-L7", 1, 1024, 10),
    ]
    return [LayerShape(name, m, k, n, timesteps) for name, m, k, n in shapes]


def vgg16_layers(timesteps: int = 4) -> list[LayerShape]:
    """The 14 GEMM-lowered layers of the CIFAR VGG16 SNN.

    Layer 8 matches the V-L8 representative layer of Table II exactly
    (``M=16, N=512, K=2304``).
    """
    shapes = [
        ("V-L1", 1024, 27, 64),
        ("V-L2", 1024, 576, 64),
        ("V-L3", 256, 576, 128),
        ("V-L4", 256, 1152, 128),
        ("V-L5", 64, 1152, 256),
        ("V-L6", 64, 2304, 256),
        ("V-L7", 64, 2304, 256),
        ("V-L8", 16, 2304, 512),
        ("V-L9", 16, 4608, 512),
        ("V-L10", 16, 4608, 512),
        ("V-L11", 4, 4608, 512),
        ("V-L12", 4, 4608, 512),
        ("V-L13", 4, 4608, 512),
        ("V-L14", 1, 512, 10),
    ]
    return [LayerShape(name, m, k, n, timesteps) for name, m, k, n in shapes]


def resnet19_layers(timesteps: int = 4) -> list[LayerShape]:
    """The 19 GEMM-lowered layers of the CIFAR ResNet19 SNN.

    Layer 19 matches the R-L19 representative layer of Table II exactly
    (``M=16, N=512, K=2304``).
    """
    shapes = [
        ("R-L1", 1024, 27, 128),
        ("R-L2", 1024, 1152, 128),
        ("R-L3", 1024, 1152, 128),
        ("R-L4", 1024, 1152, 128),
        ("R-L5", 1024, 1152, 128),
        ("R-L6", 1024, 1152, 128),
        ("R-L7", 256, 1152, 256),
        ("R-L8", 256, 2304, 256),
        ("R-L9", 256, 2304, 256),
        ("R-L10", 256, 2304, 256),
        ("R-L11", 256, 2304, 256),
        ("R-L12", 256, 2304, 256),
        ("R-L13", 64, 2304, 512),
        ("R-L14", 64, 4608, 512),
        ("R-L15", 64, 4608, 512),
        ("R-L16", 64, 4608, 512),
        ("R-L17", 64, 4608, 512),
        ("R-L18", 16, 4608, 512),
        ("R-L19", 16, 2304, 512),
    ]
    return [LayerShape(name, m, k, n, timesteps) for name, m, k, n in shapes]


REPRESENTATIVE_LAYERS: dict[str, LayerShape] = {
    "A-L4": LayerShape("A-L4", m=64, k=3456, n=256, t=4),
    "V-L8": LayerShape("V-L8", m=16, k=2304, n=512, t=4),
    "R-L19": LayerShape("R-L19", m=16, k=2304, n=512, t=4),
    "T-HFF": LayerShape("T-HFF", m=784, k=3072, n=3072, t=4),
}
"""The four representative single-layer workloads of Table II."""


def representative_layer(name: str) -> LayerShape:
    """Look up one of the representative layers (``A-L4``, ``V-L8``, ...)."""
    try:
        return REPRESENTATIVE_LAYERS[name]
    except KeyError as exc:
        raise KeyError(
            "unknown representative layer %r (expected one of %s)"
            % (name, sorted(REPRESENTATIVE_LAYERS))
        ) from exc
