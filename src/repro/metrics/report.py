"""Plain-text reporting helpers used by the benchmark harness.

The harness regenerates the paper's tables and figure series as ASCII tables
printed to stdout (matplotlib is intentionally not a dependency).  These
helpers keep the formatting consistent across the experiment modules.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_series", "format_sweep", "normalise", "format_ratio"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str | None = None) -> str:
    """Render ``rows`` under ``headers`` as a fixed-width ASCII table."""
    string_rows = [[_stringify(cell) for cell in row] for row in rows]
    widths = [len(str(h)) for h in headers]
    for row in string_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in string_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(series: Mapping[str, Mapping[str, float]], title: str | None = None, precision: int = 3) -> str:
    """Render a nested mapping ``{series_name: {x_label: value}}`` as a table."""
    x_labels: list[str] = []
    for values in series.values():
        for label in values:
            if label not in x_labels:
                x_labels.append(label)
    headers = ["series"] + list(x_labels)
    rows = []
    for name, values in series.items():
        rows.append([name] + [round(values.get(label, float("nan")), precision) for label in x_labels])
    return format_table(headers, rows, title=title)


def format_sweep(
    data: Mapping[str, Mapping[str, Mapping[str, float]]],
    columns: Sequence[tuple[str, str]] | None = None,
    title: str | None = None,
    row_header: str = "Accelerator",
) -> str:
    """Render a sweep result ``{workload: {series: {metric: value}}}``.

    This is the shared formatter for the orchestrated experiment sweeps:
    one fixed-width table per workload, one row per series (accelerator),
    one column per metric.  ``columns`` maps display headers to metric keys
    (``[("Off-chip (KB)", "offchip_kb"), ...]``); when omitted, the metric
    keys of the first series are used verbatim.  ``title`` is suffixed with
    the workload name per block.
    """
    blocks = []
    for workload, series in data.items():
        block_columns = columns
        if block_columns is None:
            first = next(iter(series.values()), {})
            block_columns = [(key, key) for key in first]
        rows = [
            [name] + [values.get(key, float("nan")) for _, key in block_columns]
            for name, values in series.items()
        ]
        block_title = f"{title} ({workload})" if title else str(workload)
        blocks.append(
            format_table(
                [row_header] + [header for header, _ in block_columns],
                rows,
                title=block_title,
            )
        )
    return "\n\n".join(blocks)


def normalise(values: Mapping[str, float], reference: str) -> dict[str, float]:
    """Normalise a mapping of values to the entry named ``reference``."""
    if reference not in values:
        raise KeyError("reference %r not present in values" % reference)
    base = values[reference]
    if base == 0:
        raise ZeroDivisionError("reference value is zero")
    return {name: value / base for name, value in values.items()}


def format_ratio(value: float, precision: int = 2) -> str:
    """Format a ratio as e.g. ``"3.25x"``."""
    return f"{value:.{precision}f}x"


def _stringify(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)
