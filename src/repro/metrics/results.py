"""Result containers shared by every accelerator simulator.

Each accelerator model (LoAS and all baselines) returns a
:class:`SimulationResult` from its ``simulate_layer`` / ``simulate_network``
entry points so the experiment harness can sweep designs uniformly and
compute speedups, traffic ratios and energy-efficiency ratios the same way
the paper does (everything normalised to a chosen baseline).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..arch.energy import EnergyAccount
from ..arch.memory import TrafficCounter

__all__ = ["SimulationResult", "aggregate_results"]


@dataclass
class SimulationResult:
    """Outcome of simulating one workload on one accelerator.

    Attributes
    ----------
    accelerator:
        Name of the design (e.g. ``"LoAS"`` or ``"SparTen-SNN"``).
    workload:
        Name of the workload (layer or network).
    cycles:
        End-to-end cycle count (compute and memory overlapped; the larger of
        the two bounds per processing phase).
    compute_cycles:
        Cycle count of the compute/inner-join pipeline alone.
    memory_cycles:
        Cycle count the memory system needs at peak bandwidth.
    dram:
        Off-chip traffic by category (bytes).
    sram:
        On-chip global SRAM traffic by category (bytes).
    energy:
        Energy ledger (picojoules, by category).
    ops:
        Operation counts by category (accumulations, corrections, ...).
    sram_miss_rate:
        Miss rate of the global cache when the model tracks one.
    extra:
        Free-form per-design diagnostics.
    """

    accelerator: str
    workload: str
    cycles: float = 0.0
    compute_cycles: float = 0.0
    memory_cycles: float = 0.0
    dram: TrafficCounter = field(default_factory=TrafficCounter)
    sram: TrafficCounter = field(default_factory=TrafficCounter)
    energy: EnergyAccount = field(default_factory=EnergyAccount)
    ops: dict[str, float] = field(default_factory=dict)
    sram_miss_rate: float = 0.0
    extra: dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Totals
    # ------------------------------------------------------------------ #
    @property
    def dram_bytes(self) -> float:
        """Total off-chip traffic in bytes."""
        return self.dram.total()

    @property
    def sram_bytes(self) -> float:
        """Total on-chip SRAM traffic in bytes."""
        return self.sram.total()

    @property
    def energy_pj(self) -> float:
        """Total energy in picojoules."""
        return self.energy.total()

    def runtime_seconds(self, clock_ghz: float = 0.8) -> float:
        """Wall-clock runtime implied by the cycle count at ``clock_ghz``."""
        return self.cycles / (clock_ghz * 1e9)

    def add_ops(self, category: str, count: float) -> None:
        """Accumulate ``count`` operations under ``category``."""
        self.ops[category] = self.ops.get(category, 0.0) + count

    # ------------------------------------------------------------------ #
    # Serialisation (used by the repro.api JSON schema)
    # ------------------------------------------------------------------ #
    def as_dict(self) -> dict:
        """Plain-data copy of every field (ledgers flattened to dicts)."""
        return {
            "accelerator": self.accelerator,
            "workload": self.workload,
            "cycles": self.cycles,
            "compute_cycles": self.compute_cycles,
            "memory_cycles": self.memory_cycles,
            "dram": self.dram.as_dict(),
            "sram": self.sram.as_dict(),
            "energy": self.energy.as_dict(),
            "ops": dict(self.ops),
            "sram_miss_rate": self.sram_miss_rate,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationResult":
        """Rebuild a result from :meth:`as_dict` output (equal field-by-field)."""
        return cls(
            accelerator=data["accelerator"],
            workload=data["workload"],
            cycles=data["cycles"],
            compute_cycles=data["compute_cycles"],
            memory_cycles=data["memory_cycles"],
            dram=TrafficCounter(dict(data["dram"])),
            sram=TrafficCounter(dict(data["sram"])),
            energy=EnergyAccount(dict(data["energy"])),
            ops=dict(data["ops"]),
            sram_miss_rate=data["sram_miss_rate"],
            extra=dict(data["extra"]),
        )

    # ------------------------------------------------------------------ #
    # Comparisons (all defined so that larger = better for LoAS)
    # ------------------------------------------------------------------ #
    def speedup_over(self, other: "SimulationResult") -> float:
        """How many times faster this result is than ``other``."""
        if self.cycles == 0:
            return float("inf")
        return other.cycles / self.cycles

    def energy_efficiency_over(self, other: "SimulationResult") -> float:
        """How many times less energy this result uses than ``other``."""
        if self.energy_pj == 0:
            return float("inf")
        return other.energy_pj / self.energy_pj

    def dram_reduction_over(self, other: "SimulationResult") -> float:
        """How many times less DRAM traffic this result has than ``other``."""
        if self.dram_bytes == 0:
            return float("inf")
        return other.dram_bytes / self.dram_bytes

    def sram_reduction_over(self, other: "SimulationResult") -> float:
        """How many times less SRAM traffic this result has than ``other``."""
        if self.sram_bytes == 0:
            return float("inf")
        return other.sram_bytes / self.sram_bytes


def aggregate_results(results: list[SimulationResult], accelerator: str, workload: str) -> SimulationResult:
    """Sum per-layer results into one network-level result.

    Cycles, traffic, energy and operation counts add up; the miss rate is the
    traffic-weighted mean of the per-layer miss rates.
    """
    if not results:
        raise ValueError("cannot aggregate an empty result list")
    total = SimulationResult(accelerator=accelerator, workload=workload)
    weighted_miss = 0.0
    weight = 0.0
    for result in results:
        total.cycles += result.cycles
        total.compute_cycles += result.compute_cycles
        total.memory_cycles += result.memory_cycles
        total.dram = total.dram.merged_with(result.dram)
        total.sram = total.sram.merged_with(result.sram)
        total.energy = total.energy.merged_with(result.energy)
        for category, count in result.ops.items():
            total.add_ops(category, count)
        weighted_miss += result.sram_miss_rate * result.sram_bytes
        weight += result.sram_bytes
    total.sram_miss_rate = weighted_miss / weight if weight else 0.0
    return total
