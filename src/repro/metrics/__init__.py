"""Result containers and plain-text reporting for the experiment harness."""

from .report import format_ratio, format_series, format_sweep, format_table, normalise
from .results import SimulationResult, aggregate_results

__all__ = [
    "SimulationResult",
    "aggregate_results",
    "format_ratio",
    "format_series",
    "format_sweep",
    "format_table",
    "normalise",
]
