"""Workload scheduler: dispatching fibers to the TPPEs.

The LoAS scheduler broadcasts one weight fiber (a column of ``B``) to all
TPPEs through the swizzle-switch crossbar while each TPPE holds the bitmask
of a distinct spike fiber (a row of ``A``).  Rows are therefore processed in
groups of ``num_tppes``; all groups of one output column complete before the
next column's weight fiber is broadcast, which maximises reuse of the cached
weight fiber and keeps the output compressor operating on whole rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .config import LoASConfig

__all__ = ["Wave", "Scheduler"]


@dataclass(frozen=True)
class Wave:
    """One scheduling wave: a group of rows joined against one weight column.

    Attributes
    ----------
    column:
        Index of the broadcast weight fiber (output column ``n``).
    rows:
        Row indices (output neurons ``m``) assigned to the TPPEs.
    """

    column: int
    rows: tuple[int, ...]


@dataclass
class Scheduler:
    """Generates the wave schedule and its utilisation statistics."""

    config: LoASConfig = field(default_factory=LoASConfig)

    def waves(self, num_rows: int, num_columns: int) -> list[Wave]:
        """Full wave schedule for an ``(M, N)`` output grid."""
        if num_rows < 0 or num_columns < 0:
            raise ValueError("dimensions must be non-negative")
        group = self.config.num_tppes
        schedule: list[Wave] = []
        for column in range(num_columns):
            for start in range(0, num_rows, group):
                rows = tuple(range(start, min(start + group, num_rows)))
                schedule.append(Wave(column=column, rows=rows))
        return schedule

    def num_waves(self, num_rows: int, num_columns: int) -> int:
        """Number of waves without materialising the schedule."""
        group = self.config.num_tppes
        return (-(-num_rows // group)) * num_columns if num_rows and num_columns else 0

    def pe_utilization(self, num_rows: int, num_columns: int) -> float:
        """Fraction of TPPE slots that hold real work across the schedule."""
        waves = self.num_waves(num_rows, num_columns)
        if waves == 0:
            return 0.0
        total_slots = waves * self.config.num_tppes
        useful = num_rows * num_columns
        return useful / total_slots
