"""LoAS accelerator simulator: cycles, memory traffic and energy.

The model is analytical but exact with respect to the workload's sparsity
structure: all match / correction / operation counts are computed from the
actual tensors (not from expected densities), the wave schedule captures
load imbalance across the 16 TPPEs exactly, and the memory model charges the
compressed fiber bytes that the dataflow actually touches.

Modelled behaviour (Sections III and IV of the paper):

* FTP dataflow: each TPPE computes one output neuron for *all* timesteps;
  rows of ``A`` are processed in groups of ``num_tppes`` per output column.
* Compression: matrix ``A`` is stored in the packed-temporal format (silent
  neurons dropped), matrix ``B`` in column-wise bitmask fibers.
* Inner join: one cycle per 128-bit bitmask chunk plus one cycle per matched
  position through the fast prefix-sum, with a fixed per-fiber drain for the
  laggy circuit and pipeline hand-off.
* Memory: compressed ``A``, ``B`` and the compressed output cross DRAM once;
  the SRAM streams each TPPE's bitmask chunks per output column, broadcasts
  the weight fiber once per row group and delivers matched payload bytes.
* Energy: per-byte DRAM/SRAM/buffer constants plus per-operation costs for
  accumulations, prefix-sum invocations and LIF updates.
"""

from __future__ import annotations

import numpy as np

from ..engine import LayerEvaluation
from ..metrics.results import SimulationResult
from ..snn.layers import LayerOutput
from ..snn.lif import LIFParameters
from .base import SimulatorBase
from .compressor import OutputCompressor
from .config import LoASConfig
from .ftp import ftp_layer
from .scheduler import Scheduler

__all__ = ["LoASSimulator"]


class LoASSimulator(SimulatorBase):
    """Analytical simulator of the LoAS architecture."""

    name = "LoAS"

    def __init__(self, config: LoASConfig | None = None, lif: LIFParameters | None = None):
        super().__init__(config)
        self.lif = lif or LIFParameters()
        self.scheduler = Scheduler(self.config)
        self.compressor = OutputCompressor(self.config)

    # ------------------------------------------------------------------ #
    # Functional execution (correctness backbone)
    # ------------------------------------------------------------------ #
    def run_functional(self, spikes: np.ndarray, weights: np.ndarray) -> LayerOutput:
        """Run one layer functionally with the FTP dataflow."""
        return ftp_layer(spikes, weights, self.lif)

    # ------------------------------------------------------------------ #
    # Analytical cost model
    # ------------------------------------------------------------------ #
    def simulate_layer(
        self,
        spikes: np.ndarray,
        weights: np.ndarray,
        name: str = "layer",
        preprocess: bool = False,
        evaluation: LayerEvaluation | None = None,
        **kwargs,
    ) -> SimulationResult:
        """Simulate one layer of a dual-sparse SNN on LoAS.

        Parameters
        ----------
        spikes:
            Input spike tensor ``A`` of shape ``(M, K, T)``.
        weights:
            Weight matrix ``B`` of shape ``(K, N)``.
        name:
            Workload name recorded in the result.
        preprocess:
            Apply the fine-tuned preprocessing (mask input neurons firing
            only once, and drop such neurons from the produced output).
        evaluation:
            Pre-computed (possibly cached) evaluation of the tensor pair;
            built on the fly when driven with raw tensors.
        """
        if evaluation is None:
            evaluation = LayerEvaluation(spikes, weights)
        cfg = self.config
        energy_model = cfg.energy

        if preprocess:
            evaluation = evaluation.preprocessed(max_spikes=1)

        m_dim, k_dim, t_dim = evaluation.m, evaluation.k, evaluation.t
        n_dim = evaluation.n
        result = SimulationResult(accelerator=self.name, workload=name)

        packed = evaluation.packed
        nnz_weights = evaluation.nnz_weights

        # Matched positions per output neuron (non-silent spike AND non-zero
        # weight): the work each TPPE performs.
        matches = evaluation.matches  # (M, N)
        total_matches = evaluation.total_matches

        # True accumulations and the output full sums come from the shared
        # evaluation (single tensordot over k, exact integer arithmetic).
        true_accumulations = evaluation.true_accumulations
        corrections = total_matches * t_dim - true_accumulations

        compression = evaluation.compress_output(self.compressor, self.lif, preprocess=preprocess)

        # ---------------- compute cycles ---------------- #
        chunks = cfg.bitmask_chunks(k_dim)
        task_cycles = chunks + matches + cfg.task_overhead_cycles
        compute_cycles = self.grouped_wave_cycles(task_cycles, cfg.num_tppes)
        compute_cycles += compression.cycles

        # ---------------- traffic ---------------- #
        a_payload_bytes = packed.payload_bits() / 8.0
        a_bitmask_bytes = (packed.bitmask_bits() + m_dim * cfg.pointer_bits) / 8.0
        b_payload_bytes = nnz_weights * cfg.weight_bits / 8.0
        b_bitmask_bytes = (k_dim * n_dim + n_dim * cfg.pointer_bits) / 8.0
        row_groups = -(-m_dim // cfg.num_tppes)

        # Off-chip: each compressed operand crosses DRAM once; the compressed
        # output is written back once.
        result.dram.add("input", a_payload_bytes)
        result.dram.add("weight", b_payload_bytes)
        result.dram.add("format", a_bitmask_bytes + b_bitmask_bytes)
        result.dram.add("output", compression.output_bytes)

        # On-chip: spike bitmasks are re-streamed into the TPPEs once per
        # output column; the weight fiber is broadcast once per row group;
        # matched spike payload words are fetched on demand.
        sram_a_bitmask = m_dim * n_dim * k_dim / 8.0
        sram_b_bitmask = row_groups * n_dim * k_dim / 8.0
        sram_a_payload = total_matches * t_dim / 8.0
        sram_b_payload = row_groups * b_payload_bytes
        result.sram.add("input", sram_a_payload)
        result.sram.add("weight", sram_b_payload)
        result.sram.add("format", sram_a_bitmask + sram_b_bitmask)
        result.sram.add("output", compression.output_bytes)

        # Fiber-level miss statistics: every distinct fiber is fetched from
        # DRAM exactly once, while SRAM serves one spike fiber per output
        # column and one weight fiber per row group.
        fiber_accesses = m_dim * n_dim + row_groups * n_dim
        fiber_misses = m_dim + n_dim
        result.sram_miss_rate = fiber_misses / fiber_accesses if fiber_accesses else 0.0

        # ---------------- energy ---------------- #
        dram_bytes = result.dram.total()
        sram_bytes = result.sram.total()
        result.energy.add("dram", dram_bytes * energy_model.dram_per_byte)
        result.energy.add("sram", sram_bytes * energy_model.sram_per_byte)
        result.energy.add(
            "buffer",
            (sram_a_payload + sram_b_payload) * energy_model.buffer_per_byte,
        )
        result.energy.add(
            "compute", (total_matches + corrections) * energy_model.accumulate
        )
        prefix_invocations = m_dim * n_dim * chunks
        result.energy.add(
            "prefix_sum",
            prefix_invocations * (energy_model.fast_prefix_sum + energy_model.laggy_prefix_sum),
        )
        result.energy.add("lif", m_dim * n_dim * t_dim * energy_model.lif_update)
        result.energy.add(
            "crossbar", row_groups * b_payload_bytes * energy_model.crossbar_per_byte
        )

        # ---------------- roofline ---------------- #
        cycles, memory_cycles = self.roofline_cycles(compute_cycles, dram_bytes, sram_bytes)
        result.compute_cycles = compute_cycles
        result.memory_cycles = memory_cycles
        result.cycles = cycles

        # ---------------- bookkeeping ---------------- #
        result.add_ops("pseudo_accumulations", total_matches)
        result.add_ops("correction_accumulations", corrections)
        result.add_ops("true_accumulations", true_accumulations)
        result.add_ops("lif_updates", m_dim * n_dim * t_dim)
        result.add_ops("prefix_sum_invocations", prefix_invocations)
        result.extra["silent_fraction"] = packed.silent_fraction
        result.extra["pe_utilization"] = self.scheduler.pe_utilization(m_dim, n_dim)
        result.extra["output_silent_fraction"] = (
            compression.silent_output_neurons / (m_dim * n_dim) if m_dim * n_dim else 0.0
        )
        result.extra["dropped_output_neurons"] = float(compression.dropped_neurons)
        return result
