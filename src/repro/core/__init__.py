"""The paper's contribution: FTP dataflow and the LoAS accelerator model.

Public entry points:

* :func:`repro.core.ftp.ftp_layer` -- functional execution of Algorithm 1,
* :class:`repro.core.inner_join.InnerJoinUnit` -- the FTP-friendly inner
  join with pseudo / correction accumulation,
* :class:`repro.core.tppe.TPPE` -- one temporal-parallel processing element,
* :class:`repro.core.loas.LoASSimulator` -- the full analytical simulator
  producing cycles, traffic and energy for any dual-sparse SNN workload.
"""

from .base import DEFAULT_RNG_SEED, SimulatorBase
from .compressor import CompressorResult, OutputCompressor
from .config import LoASConfig
from .ftp import ftp_layer, ftp_spmspm
from .inner_join import InnerJoinResult, InnerJoinUnit
from .loas import LoASSimulator
from .plif import ParallelLIF
from .scheduler import Scheduler, Wave
from .tppe import TPPE, TPPEResult

__all__ = [
    "CompressorResult",
    "DEFAULT_RNG_SEED",
    "InnerJoinResult",
    "InnerJoinUnit",
    "LoASConfig",
    "LoASSimulator",
    "OutputCompressor",
    "ParallelLIF",
    "Scheduler",
    "SimulatorBase",
    "TPPE",
    "TPPEResult",
    "Wave",
    "ftp_layer",
    "ftp_spmspm",
]
