"""Parallel LIF (P-LIF) unit: all timesteps of one output neuron in one shot.

In LoAS, each TPPE produces the full sums of one output neuron for all
timesteps; the P-LIF unit then unrolls the LIF recurrence spatially (a chain
of adders, threshold comparators and shifters, see the purple box of
Figure 7) so the output spikes of all ``T`` timesteps emerge together.

Functionally the recurrence is still sequential in ``t`` (the membrane
potential carries over); the hardware simply evaluates the unrolled chain
combinationally.  The model therefore computes the exact LIF result while
charging a single pipeline slot per output neuron.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..snn.lif import LIFParameters, lif_fire

__all__ = ["ParallelLIF"]


@dataclass(frozen=True)
class ParallelLIF:
    """The parallel LIF firing unit.

    Attributes
    ----------
    params:
        LIF neuron parameters (threshold, leak).
    latency_cycles:
        Pipeline latency to produce the spikes of one output neuron for all
        timesteps (1 cycle: the chain is combinational and pipelined).
    """

    params: LIFParameters = LIFParameters()
    latency_cycles: int = 1

    def fire(self, full_sums: np.ndarray) -> np.ndarray:
        """Output spikes for full sums with a trailing temporal axis."""
        return lif_fire(np.asarray(full_sums, dtype=np.float64), self.params)

    def fire_neuron(self, sums_over_time: np.ndarray) -> np.ndarray:
        """Output spikes of a single neuron given its per-timestep sums."""
        sums_over_time = np.asarray(sums_over_time, dtype=np.float64)
        if sums_over_time.ndim != 1:
            raise ValueError("expected a 1-D per-timestep sum vector")
        return self.fire(sums_over_time[None, :])[0]

    def lif_operations(self, num_neurons: int, timesteps: int) -> int:
        """Number of elementary LIF updates performed."""
        return num_neurons * timesteps
