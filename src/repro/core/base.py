"""Shared simulator interface for LoAS and every baseline accelerator.

All accelerator models implement ``simulate_layer(spikes, weights, name)``
returning a :class:`~repro.metrics.results.SimulationResult`.  This base
class adds the common plumbing on top of that single method:

* evaluating a :class:`~repro.snn.workloads.LayerWorkload` through the
  shared workload-evaluation engine and simulating it
  (``simulate_workload``) -- tensors and statistics come from the
  process-wide :class:`~repro.engine.cache.WorkloadEvaluationCache`, so
  several simulators sweeping the same workloads share one evaluation,
* iterating a :class:`~repro.snn.workloads.NetworkWorkload` layer by layer
  and aggregating the results (``simulate_network``), and
* the roofline-style combination of compute cycles with DRAM / SRAM
  bandwidth bounds used by every analytical cost model.
"""

from __future__ import annotations

import numpy as np

from ..engine import LayerEvaluation, default_cache
from ..metrics.results import SimulationResult, aggregate_results
from ..snn.workloads import LayerWorkload, NetworkWorkload
from .config import LoASConfig

__all__ = ["DEFAULT_RNG_SEED", "SimulatorBase"]

#: Seed of the generator used when ``simulate_workload`` /
#: ``simulate_network`` are called without an explicit ``rng``.  This used
#: to be a silent ``default_rng(0)`` fallback buried in the drivers; it is
#: surfaced here so callers can reproduce the implicit stream explicitly
#: (``np.random.default_rng(DEFAULT_RNG_SEED)``).  The sweep orchestrator
#: (:mod:`repro.runner`) never relies on it -- the planner threads explicit
#: per-cell generators through every evaluation.
DEFAULT_RNG_SEED = 0


class SimulatorBase:
    """Common driver logic shared by all accelerator simulators.

    Every simulator charges cycles, traffic and energy to one injected
    hardware design point: ``config`` accepts a :class:`LoASConfig`, a raw
    :class:`~repro.arch.spec.ArchSpec` or a registered preset name
    (``"loas-32nm"``), all normalised to a :class:`LoASConfig` view.
    """

    #: Human-readable accelerator name; subclasses override.
    name: str = "abstract"

    def __init__(self, config: LoASConfig | None = None):
        if config is None:
            config = LoASConfig()
        elif not isinstance(config, LoASConfig):
            config = LoASConfig(config)  # an ArchSpec or a preset name
        self.config = config

    @property
    def arch(self):
        """The :class:`~repro.arch.spec.ArchSpec` design point being modelled."""
        return self.config.arch

    # ------------------------------------------------------------------ #
    # Interface implemented by subclasses
    # ------------------------------------------------------------------ #
    def simulate_layer(
        self, spikes: np.ndarray, weights: np.ndarray, name: str = "layer", **kwargs
    ) -> SimulationResult:
        """Simulate one layer given concrete tensors.  Must be overridden."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Workload / network drivers
    # ------------------------------------------------------------------ #
    def simulate_workload(
        self,
        workload: LayerWorkload,
        rng: np.random.Generator | None = None,
        finetuned: bool = False,
        evaluation: LayerEvaluation | None = None,
        **kwargs,
    ) -> SimulationResult:
        """Evaluate the workload through the shared engine and simulate it.

        The tensors (and every derived statistic) come from the process-wide
        workload-evaluation cache: simulating the same workload fingerprint
        with an equal generator state reuses the existing evaluation instead
        of regenerating.  Pass ``evaluation`` to simulate a pre-computed
        evaluation directly.
        """
        if evaluation is None:
            rng = np.random.default_rng(DEFAULT_RNG_SEED) if rng is None else rng
            evaluation = default_cache().evaluate(workload, rng, finetuned=finetuned)
        # The tensors travel as possibly-still-deferred handles: every
        # simulator reads the shared evaluation when one is passed, so a
        # statistics-warm cache hit never decodes the dense tensors.
        spikes, weights = evaluation.tensors
        return self.simulate_layer(
            spikes,
            weights,
            name=workload.name,
            evaluation=evaluation,
            **kwargs,
        )

    def simulate_network(
        self,
        network: NetworkWorkload,
        rng: np.random.Generator | None = None,
        finetuned: bool = False,
        **kwargs,
    ) -> SimulationResult:
        """Simulate every layer of a network and aggregate the results."""
        rng = np.random.default_rng(DEFAULT_RNG_SEED) if rng is None else rng
        results = [
            self.simulate_workload(layer, rng=rng, finetuned=finetuned, **kwargs)
            for layer in network.layers
        ]
        return aggregate_results(results, accelerator=self.name, workload=network.name)

    # ------------------------------------------------------------------ #
    # Shared modelling helpers
    # ------------------------------------------------------------------ #
    def roofline_cycles(self, compute_cycles: float, dram_bytes: float, sram_bytes: float) -> tuple[float, float]:
        """Combine compute cycles with memory bandwidth bounds.

        Returns ``(total_cycles, memory_cycles)`` where ``memory_cycles`` is
        the larger of the DRAM and SRAM service times and ``total_cycles``
        is the roofline maximum of compute and memory -- the same
        overlapped-transfer assumption the paper's analytical simulator uses.
        """
        dram_cycles = self.config.dram.cycles_for_bytes(dram_bytes)
        sram_cycles = self.config.sram.cycles_for_bytes(sram_bytes)
        memory_cycles = max(dram_cycles, sram_cycles)
        return max(compute_cycles, memory_cycles), memory_cycles

    @staticmethod
    def grouped_wave_cycles(task_cycles: np.ndarray, group_size: int) -> float:
        """Sum of per-wave maxima when rows are processed ``group_size`` at a time.

        ``task_cycles`` is an ``(M, N)`` array of per-output-neuron cycle
        counts; rows are dispatched to the parallel PEs in groups, one output
        column at a time, so each wave costs the maximum of its members
        (load imbalance is therefore captured exactly).
        """
        task_cycles = np.asarray(task_cycles, dtype=np.float64)
        if task_cycles.ndim != 2:
            raise ValueError("task_cycles must be an (M, N) array")
        m, n = task_cycles.shape
        if group_size < 1:
            raise ValueError("group_size must be at least 1")
        groups = -(-m // group_size)
        if m == groups * group_size:
            padded = np.ascontiguousarray(task_cycles)
        else:
            padded = np.zeros((groups * group_size, n))
            padded[:m] = task_cycles
        waves = padded.reshape(groups, group_size, n).max(axis=1)
        return float(waves.sum())
