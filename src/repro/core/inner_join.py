"""FTP-friendly inner-join unit (Section IV-C, Figures 9 and 10).

The inner join finds the positions where a spike fiber (matrix ``A``) and a
weight fiber (matrix ``B``) are both non-zero.  Conventional designs
(SparTen) pay for two fast prefix-sum circuits so both payload offsets are
available at full rate.  LoAS exploits the unary nature of spikes:

* the **fast** prefix-sum circuit produces the offset of the matched weight
  each cycle, and the weight is *optimistically* accumulated into the
  pseudo-accumulator as if the pre-synaptic neuron fired at every timestep;
* the **laggy** prefix-sum circuit produces the spike-word offset several
  cycles later; when the packed spike word turns out not to be all ones, the
  weight is replayed into the per-timestep **correction accumulators** for
  the timesteps whose spike bit is zero;
* the final per-timestep sum is ``pseudo - correction[t]``, which is exactly
  the true dot product (silent neurons are never stored, so every matched
  weight is accumulated at least once legitimately).

The model below is functional (the sums are exact) and carries the cycle /
operation counts used by the TPPE cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..sparse.fiber import Fiber
from ..sparse.packed import unpack_spike_words
from .config import LoASConfig

__all__ = ["InnerJoinResult", "InnerJoinUnit"]


@dataclass
class InnerJoinResult:
    """Outcome of joining one spike fiber with one weight fiber.

    Attributes
    ----------
    per_timestep_sums:
        Exact dot product of the fiber pair for every timestep (length ``T``).
    pseudo_sum:
        Content of the pseudo-accumulator (sum of all matched weights).
    corrections:
        Per-timestep correction-accumulator contents.
    matches:
        Number of matched (non-silent, non-zero-weight) positions.
    pseudo_accumulations:
        Additions performed by the pseudo-accumulator (= ``matches``).
    correction_accumulations:
        Additions performed by the correction accumulators (one per matched
        position per zero spike bit).
    perfect_predictions:
        Matched positions whose packed spike word was all ones (no
        correction needed -- the optimistic accumulation was already right).
    chunks:
        Bitmask chunks scanned (fast and laggy prefix-sum invocations).
    cycles:
        Cycle estimate for the join: one cycle per bitmask chunk to produce
        the AND result, one cycle per match through the fast prefix-sum /
        priority-encoder path, plus the trailing laggy-prefix drain.
    """

    per_timestep_sums: np.ndarray
    pseudo_sum: int
    corrections: np.ndarray
    matches: int
    pseudo_accumulations: int
    correction_accumulations: int
    perfect_predictions: int
    chunks: int
    cycles: int


@dataclass
class InnerJoinUnit:
    """One FTP-friendly inner-join unit (one per TPPE)."""

    config: LoASConfig = field(default_factory=LoASConfig)

    def join(self, spike_fiber: Fiber, weight_fiber: Fiber) -> InnerJoinResult:
        """Join a packed spike fiber with a bitmask weight fiber.

        Parameters
        ----------
        spike_fiber:
            Fiber of matrix ``A``: bitmask of non-silent neurons, payload of
            packed ``T``-bit spike words.
        weight_fiber:
            Fiber of matrix ``B``: bitmask of non-zero weights, payload of
            weight values.
        """
        if spike_fiber.length != weight_fiber.length:
            raise ValueError(
                "fiber lengths differ: %d vs %d" % (spike_fiber.length, weight_fiber.length)
            )
        timesteps = spike_fiber.value_bits
        and_result = spike_fiber.bitmask & weight_fiber.bitmask
        matched_positions = np.flatnonzero(and_result)
        matches = int(matched_positions.size)

        # Payload offsets: what the fast (weights) and laggy (spikes)
        # prefix-sum circuits compute.
        weight_offsets = np.cumsum(weight_fiber.bitmask) - 1
        spike_offsets = np.cumsum(spike_fiber.bitmask) - 1

        # Gather the matched payloads and unpack all spike words at once;
        # perfect (all-ones) words have no zero bits, so they naturally
        # contribute nothing to the corrections.
        all_ones = (1 << timesteps) - 1
        matched_weights = (
            np.asarray(weight_fiber.values)[weight_offsets[matched_positions]].astype(np.int64)
        )
        matched_words = (
            np.asarray(spike_fiber.values)[spike_offsets[matched_positions]].astype(np.int64)
        )
        pseudo_sum = int(matched_weights.sum())
        zero_bits = unpack_spike_words(matched_words, timesteps) == 0  # (matches, T)
        corrections = (matched_weights[:, None] * zero_bits).sum(axis=0, dtype=np.int64)
        correction_accumulations = int(zero_bits.sum())
        perfect = int((matched_words == all_ones).sum())

        per_timestep = pseudo_sum - corrections
        chunks = self.config.bitmask_chunks(spike_fiber.length)
        cycles = chunks + matches + self.config.task_overhead_cycles
        return InnerJoinResult(
            per_timestep_sums=per_timestep,
            pseudo_sum=pseudo_sum,
            corrections=corrections,
            matches=matches,
            pseudo_accumulations=matches,
            correction_accumulations=correction_accumulations,
            perfect_predictions=perfect,
            chunks=chunks,
            cycles=cycles,
        )
