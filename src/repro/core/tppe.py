"""Temporal-Parallel Processing Element (TPPE).

Each TPPE produces the full sums of one output neuron across all timesteps
(line 5 of Algorithm 1): it holds the bitmask of one spike fiber and the
broadcast weight fiber, runs the FTP-friendly inner join, accumulates the
matched weights into the pseudo / correction accumulators and hands the
corrected per-timestep sums to the P-LIF unit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..sparse.fiber import Fiber
from ..snn.lif import LIFParameters
from .config import LoASConfig
from .inner_join import InnerJoinResult, InnerJoinUnit
from .plif import ParallelLIF

__all__ = ["TPPEResult", "TPPE"]


@dataclass
class TPPEResult:
    """Result of processing one output neuron on a TPPE.

    Attributes
    ----------
    full_sums:
        Per-timestep full sums of the output neuron (length ``T``).
    output_spikes:
        Output spikes of the neuron for all timesteps (after P-LIF).
    join:
        Detailed inner-join statistics.
    cycles:
        TPPE-level cycle count for this neuron (inner join plus P-LIF
        hand-off).
    """

    full_sums: np.ndarray
    output_spikes: np.ndarray
    join: InnerJoinResult
    cycles: int


@dataclass
class TPPE:
    """One temporal-parallel processing element plus its P-LIF unit."""

    config: LoASConfig = field(default_factory=LoASConfig)
    lif: LIFParameters = field(default_factory=LIFParameters)

    def __post_init__(self) -> None:
        self.inner_join = InnerJoinUnit(self.config)
        self.plif = ParallelLIF(self.lif)

    def process(self, spike_fiber: Fiber, weight_fiber: Fiber) -> TPPEResult:
        """Process one (spike fiber, weight fiber) pair into one output neuron."""
        join = self.inner_join.join(spike_fiber, weight_fiber)
        spikes = self.plif.fire_neuron(join.per_timestep_sums.astype(np.float64))
        cycles = join.cycles + self.plif.latency_cycles
        return TPPEResult(
            full_sums=join.per_timestep_sums,
            output_spikes=spikes,
            join=join,
            cycles=cycles,
        )
