"""Output spike compressor (Section IV-D).

After the P-LIF units generate the output spikes of a group of output
neurons, the compressor packs them into the FTP-friendly format for the next
layer: silent output neurons are dropped, the surviving packed words are
stored contiguously and a bitmask + pointer marks their positions.  LoAS
uses an *inverted laggy* prefix-sum circuit for this step because, unlike the
inner join, compression is not on the critical path.

When the fine-tuned preprocessing is enabled the compressor additionally
discards output neurons that fire only once across all timesteps (the
masking the next layer was fine-tuned for).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..sparse.matrix import mask_low_activity_neurons
from ..sparse.packed import PackedSpikeMatrix
from .config import LoASConfig

__all__ = ["CompressorResult", "OutputCompressor"]


@dataclass
class CompressorResult:
    """Outcome of compressing one layer's output spikes.

    Attributes
    ----------
    packed:
        The compressed output (input format of the next layer).
    cycles:
        Cycles spent by the inverted laggy prefix-sum circuit.
    output_bytes:
        Compressed bytes written back to the global cache / DRAM.
    dropped_neurons:
        Output neurons discarded by the preprocessing rule (0 when
        preprocessing is disabled).
    """

    packed: PackedSpikeMatrix
    cycles: float
    output_bytes: float
    dropped_neurons: int


@dataclass
class OutputCompressor:
    """The output-spike compression unit."""

    config: LoASConfig = field(default_factory=LoASConfig)

    def compress(self, output_spikes: np.ndarray, preprocess: bool = False) -> CompressorResult:
        """Compress an ``(M, N, T)`` output spike tensor.

        Parameters
        ----------
        output_spikes:
            Output spikes produced by the P-LIF units.
        preprocess:
            Apply the fine-tuned preprocessing rule: neurons with zero or one
            spike across all timesteps are treated as silent.
        """
        output_spikes = np.asarray(output_spikes)
        if output_spikes.ndim != 3:
            raise ValueError("expected an (M, N, T) output spike tensor")
        before_silent = int((output_spikes.sum(axis=2) == 0).sum())
        if preprocess:
            output_spikes = mask_low_activity_neurons(output_spikes, max_spikes=1)
        after_silent = int((output_spikes.sum(axis=2) == 0).sum())
        packed = PackedSpikeMatrix.from_dense(output_spikes)

        # One inverted laggy prefix-sum pass per output-row bitmask chunk.
        m, n, _ = output_spikes.shape
        chunks_per_row = self.config.bitmask_chunks(n)
        cycles = m * chunks_per_row * self.config.laggy_latency_cycles
        output_bytes = packed.storage_bytes(self.config.pointer_bits)
        return CompressorResult(
            packed=packed,
            cycles=float(cycles),
            output_bytes=float(output_bytes),
            dropped_neurons=after_silent - before_silent,
        )
