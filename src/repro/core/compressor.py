"""Output spike compressor (Section IV-D).

After the P-LIF units generate the output spikes of a group of output
neurons, the compressor packs them into the FTP-friendly format for the next
layer: silent output neurons are dropped, the surviving packed words are
stored contiguously and a bitmask + pointer marks their positions.  LoAS
uses an *inverted laggy* prefix-sum circuit for this step because, unlike the
inner join, compression is not on the critical path.

When the fine-tuned preprocessing is enabled the compressor additionally
discards output neurons that fire only once across all timesteps (the
masking the next layer was fine-tuned for).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..sparse.packed import PackedSpikeMatrix, pack_spike_words, popcount
from .config import LoASConfig

__all__ = ["CompressorResult", "OutputCompressor"]


@dataclass
class CompressorResult:
    """Outcome of compressing one layer's output spikes.

    Attributes
    ----------
    packed:
        The compressed output (input format of the next layer).
    cycles:
        Cycles spent by the inverted laggy prefix-sum circuit.
    output_bytes:
        Compressed bytes written back to the global cache / DRAM.
    dropped_neurons:
        Output neurons discarded by the preprocessing rule (0 when
        preprocessing is disabled).
    silent_output_neurons:
        Output neurons that were silent *before* the preprocessing rule.
    """

    packed: PackedSpikeMatrix
    cycles: float
    output_bytes: float
    dropped_neurons: int
    silent_output_neurons: int = 0


@dataclass
class OutputCompressor:
    """The output-spike compression unit."""

    config: LoASConfig = field(default_factory=LoASConfig)

    def compress(self, output_spikes: np.ndarray, preprocess: bool = False) -> CompressorResult:
        """Compress an ``(M, N, T)`` output spike tensor.

        Parameters
        ----------
        output_spikes:
            Output spikes produced by the P-LIF units.
        preprocess:
            Apply the fine-tuned preprocessing rule: neurons with zero or one
            spike across all timesteps are treated as silent.
        """
        output_spikes = np.asarray(output_spikes)
        if output_spikes.ndim != 3:
            raise ValueError("expected an (M, N, T) output spike tensor")
        m, n, t = output_spikes.shape
        # Work directly on the packed words: the preprocessing rule (mask
        # neurons firing at most once) zeroes exactly the words whose
        # popcount is <= 1, so no dense masked tensor is ever materialised.
        words = pack_spike_words(output_spikes)
        counts = popcount(words.astype(np.uint64))
        before_silent = int((counts == 0).sum())
        if preprocess:
            words = np.where(counts <= 1, 0, words)
        nonsilent = words != 0
        after_silent = int(words.size - nonsilent.sum())
        packed = PackedSpikeMatrix(words=words, nonsilent=nonsilent, shape=(m, n, t))

        # One inverted laggy prefix-sum pass per output-row bitmask chunk.
        chunks_per_row = self.config.bitmask_chunks(n)
        cycles = m * chunks_per_row * self.config.laggy_latency_cycles
        output_bytes = packed.storage_bytes(self.config.pointer_bits)
        return CompressorResult(
            packed=packed,
            cycles=float(cycles),
            output_bytes=float(output_bytes),
            dropped_neurons=after_silent - before_silent,
            silent_output_neurons=before_silent,
        )
