"""LoAS hardware configuration (Table III of the paper)."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..arch.energy import EnergyModel
from ..arch.memory import DRAMModel, SRAMModel

__all__ = ["LoASConfig"]


@dataclass(frozen=True)
class LoASConfig:
    """Configuration of the LoAS accelerator and its memory system.

    Defaults follow Table III: 16 TPPEs with 8-bit weights, one inner-join
    unit per TPPE (one fast + one laggy prefix-sum circuit over 128-bit
    bitmask chunks, 16 adders in the laggy circuit), a 256 KB 16-bank global
    cache and a 128 GB/s HBM interface at 800 MHz.

    Attributes
    ----------
    num_tppes:
        Number of temporal-parallel processing elements.
    timesteps:
        Number of timesteps ``T`` the datapath is provisioned for (one
        pseudo-accumulator plus ``T`` correction accumulators per TPPE).
    weight_bits:
        Bit width of the weights of matrix ``B``.
    bitmask_chunk_bits:
        Width of the bitmask chunk processed per prefix-sum invocation.
    laggy_adders:
        Number of adders in the laggy prefix-sum circuit (latency =
        ``bitmask_chunk_bits / laggy_adders`` cycles).
    fifo_depth:
        Depth of the matched-position / matched-weight FIFOs.
    weight_buffer_bytes:
        Per-TPPE buffer holding the non-zero weights of the current fiber-B.
    pointer_bits:
        Width of the pointer stored after each fiber bitmask.
    task_overhead_cycles:
        Fixed per-output-neuron pipeline overhead (fiber hand-off, P-LIF
        hand-off, laggy-prefix drain at the end of a fiber).
    global_cache_bytes / cache_banks:
        Global SRAM (FiberCache) capacity and banking.
    dram / sram / energy:
        Memory timing and energy sub-models.
    clock_ghz:
        Accelerator clock frequency.
    """

    num_tppes: int = 16
    timesteps: int = 4
    weight_bits: int = 8
    bitmask_chunk_bits: int = 128
    laggy_adders: int = 16
    fifo_depth: int = 8
    weight_buffer_bytes: int = 128
    pointer_bits: int = 32
    task_overhead_cycles: int = 8
    global_cache_bytes: int = 256 * 1024
    cache_banks: int = 16
    clock_ghz: float = 0.8
    dram: DRAMModel = field(default_factory=DRAMModel)
    sram: SRAMModel = field(default_factory=SRAMModel)
    energy: EnergyModel = field(default_factory=EnergyModel)

    def __post_init__(self) -> None:
        if self.num_tppes < 1:
            raise ValueError("num_tppes must be at least 1")
        if self.timesteps < 1:
            raise ValueError("timesteps must be at least 1")
        if self.bitmask_chunk_bits < 1:
            raise ValueError("bitmask_chunk_bits must be at least 1")
        if self.laggy_adders < 1:
            raise ValueError("laggy_adders must be at least 1")

    @property
    def laggy_latency_cycles(self) -> int:
        """Cycles the laggy prefix-sum needs per bitmask chunk."""
        return -(-self.bitmask_chunk_bits // self.laggy_adders)

    @property
    def accumulators_per_tppe(self) -> int:
        """One pseudo-accumulator plus one correction accumulator per timestep."""
        return 1 + self.timesteps

    def bitmask_chunks(self, fiber_length: int) -> int:
        """Number of bitmask chunks needed to cover a fiber of ``fiber_length``."""
        if fiber_length < 0:
            raise ValueError("fiber length must be non-negative")
        return -(-fiber_length // self.bitmask_chunk_bits)

    def with_timesteps(self, timesteps: int) -> "LoASConfig":
        """Copy of the configuration provisioned for a different ``T``."""
        return LoASConfig(
            num_tppes=self.num_tppes,
            timesteps=timesteps,
            weight_bits=self.weight_bits,
            bitmask_chunk_bits=self.bitmask_chunk_bits,
            laggy_adders=self.laggy_adders,
            fifo_depth=self.fifo_depth,
            weight_buffer_bytes=self.weight_buffer_bytes,
            pointer_bits=self.pointer_bits,
            task_overhead_cycles=self.task_overhead_cycles,
            global_cache_bytes=self.global_cache_bytes,
            cache_banks=self.cache_banks,
            clock_ghz=self.clock_ghz,
            dram=self.dram,
            sram=self.sram,
            energy=self.energy,
        )
