"""LoAS hardware configuration: a view over an :class:`~repro.arch.ArchSpec`.

Historically this dataclass *owned* the Table III knobs; since the ArchSpec
refactor it is a thin, frozen view over one
:class:`~repro.arch.spec.ArchSpec` design point -- the single source of
every hardware parameter -- while keeping the historical field surface
(``config.num_tppes``, ``config.energy``, ...) so the simulators and tests
read the same names they always did.

Construction accepts the historical keyword overrides (mapped onto the spec
through its flat addressing) as well as a design point directly::

    LoASConfig()                          # the paper's Table III machine
    LoASConfig(timesteps=8)               # historical field override
    LoASConfig("loas-32nm-large")         # a registered preset by name
    LoASConfig(spec)                      # an explicit ArchSpec
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.energy import EnergyModel
from ..arch.memory import DRAMModel, SRAMModel
from ..arch.spec import ArchSpec, resolve_arch

__all__ = ["LoASConfig"]


@dataclass(frozen=True, init=False)
class LoASConfig:
    """Configuration of the LoAS accelerator and its memory system.

    Defaults follow Table III: 16 TPPEs with 8-bit weights, one inner-join
    unit per TPPE (one fast + one laggy prefix-sum circuit over 128-bit
    bitmask chunks, 16 adders in the laggy circuit), a 256 KB 16-bank global
    cache and a 128 GB/s HBM interface at 800 MHz.

    The only stored state is the :class:`~repro.arch.spec.ArchSpec` design
    point (``config.arch``); every historical field is a read-only view of
    it.  Two configurations are equal exactly when their specs are.

    One deliberate unification: the spec has a **single clock**.  The
    pre-ArchSpec dataclass carried an independent ``dram.clock_ghz`` next to
    ``config.clock_ghz`` (equal by default, divergible by hand); now
    ``config.dram`` is derived from the spec's bandwidth *and* clock, so a
    ``clock_ghz`` override moves the DRAM bytes-per-cycle with it.  A legacy
    ``dram=DRAMModel(...)`` keyword whose clock disagrees with the spec's is
    rejected loudly rather than silently re-clocked.
    """

    arch: ArchSpec

    def __init__(self, arch=None, **overrides):
        energy = overrides.pop("energy", None)
        dram = overrides.pop("dram", None)
        sram = overrides.pop("sram", None)
        spec = resolve_arch(arch)
        if energy is not None:
            overrides["energy"] = energy
        if dram is not None:
            overrides.setdefault("dram_bandwidth_gbps", dram.bandwidth_gbps)
        if sram is not None:
            overrides.setdefault("global_cache_bytes", sram.capacity_bytes)
            overrides.setdefault("cache_banks", sram.num_banks)
            overrides.setdefault(
                "sram_bytes_per_bank_per_cycle", sram.bytes_per_bank_per_cycle
            )
        if overrides:
            spec = spec.with_overrides(**overrides)
        if dram is not None and dram.clock_ghz != spec.clock_ghz:
            raise ValueError(
                "the ArchSpec has one clock (%.3g GHz) but the passed "
                "DRAMModel assumes %.3g GHz; override clock_ghz explicitly "
                "instead of passing a differently-clocked dram model"
                % (spec.clock_ghz, dram.clock_ghz)
            )
        object.__setattr__(self, "arch", spec)

    # ------------------------------------------------------------------ #
    # Historical field surface (views over the spec)
    # ------------------------------------------------------------------ #
    @property
    def num_tppes(self) -> int:
        """Number of temporal-parallel processing elements."""
        return self.arch.pe.num_tppes

    @property
    def timesteps(self) -> int:
        """Number of timesteps ``T`` the datapath is provisioned for."""
        return self.arch.pe.timesteps

    @property
    def weight_bits(self) -> int:
        """Bit width of the weights of matrix ``B``."""
        return self.arch.pe.weight_bits

    @property
    def bitmask_chunk_bits(self) -> int:
        """Width of the bitmask chunk processed per prefix-sum invocation."""
        return self.arch.pe.bitmask_chunk_bits

    @property
    def laggy_adders(self) -> int:
        """Number of adders in the laggy prefix-sum circuit."""
        return self.arch.pe.laggy_adders

    @property
    def fifo_depth(self) -> int:
        """Depth of the matched-position / matched-weight FIFOs."""
        return self.arch.pe.fifo_depth

    @property
    def weight_buffer_bytes(self) -> int:
        """Per-TPPE buffer holding the current fiber-B non-zero weights."""
        return self.arch.pe.weight_buffer_bytes

    @property
    def pointer_bits(self) -> int:
        """Width of the pointer stored after each fiber bitmask."""
        return self.arch.pe.pointer_bits

    @property
    def task_overhead_cycles(self) -> int:
        """Fixed per-output-neuron pipeline overhead."""
        return self.arch.pe.task_overhead_cycles

    @property
    def global_cache_bytes(self) -> int:
        """Global SRAM (FiberCache) capacity."""
        return self.arch.memory.global_cache_bytes

    @property
    def cache_banks(self) -> int:
        """Global SRAM banking."""
        return self.arch.memory.cache_banks

    @property
    def clock_ghz(self) -> float:
        """Accelerator clock frequency."""
        return self.arch.clock_ghz

    @property
    def dram(self) -> DRAMModel:
        """Off-chip memory timing model derived from the spec."""
        return self.arch.dram_model()

    @property
    def sram(self) -> SRAMModel:
        """Banked global-SRAM timing model derived from the spec."""
        return self.arch.sram_model()

    @property
    def energy(self) -> EnergyModel:
        """Per-event energy constants of the design point."""
        return self.arch.energy

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def laggy_latency_cycles(self) -> int:
        """Cycles the laggy prefix-sum needs per bitmask chunk."""
        return -(-self.bitmask_chunk_bits // self.laggy_adders)

    @property
    def accumulators_per_tppe(self) -> int:
        """One pseudo-accumulator plus one correction accumulator per timestep."""
        return 1 + self.timesteps

    def bitmask_chunks(self, fiber_length: int) -> int:
        """Number of bitmask chunks needed to cover a fiber of ``fiber_length``."""
        if fiber_length < 0:
            raise ValueError("fiber length must be non-negative")
        return -(-fiber_length // self.bitmask_chunk_bits)

    def with_timesteps(self, timesteps: int) -> "LoASConfig":
        """Copy of the configuration provisioned for a different ``T``."""
        return LoASConfig(self.arch.with_overrides(**{"pe.timesteps": timesteps}))
