"""Fully Temporal-Parallel (FTP) dataflow -- Algorithm 1 of the paper.

The FTP dataflow is the inner-product loop nest with the temporal dimension
placed at the innermost position and spatially unrolled: for every output
neuron ``(m, n)``, the reduction over ``k`` accumulates all ``T`` timesteps
in parallel, and a parallel LIF stage converts the ``T`` full sums into the
``T`` output spikes in one shot.

This module provides the *functional* execution of the dataflow (used as the
correctness backbone: it must agree exactly with the dense reference of
:mod:`repro.snn.layers`) -- the cycle-accurate cost model lives in
:mod:`repro.core.loas`.
"""

from __future__ import annotations

import numpy as np

from ..snn.layers import LayerOutput
from ..snn.lif import LIFParameters
from .plif import ParallelLIF

__all__ = ["ftp_spmspm", "ftp_layer"]


def ftp_spmspm(spikes: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Execute Algorithm 1 lines 1-6: the spMspM portion of the FTP dataflow.

    The algorithm's loop nest -- ``m`` and ``n`` over output neurons, a
    reduction over ``k`` restricted to matched (non-silent spike word AND
    non-zero weight) positions, and a ``parallel-for t`` accumulating all
    timesteps of a matched position at once -- collapses into a single
    contraction over ``k``: the inner-join mask is implicit because silent
    neurons contribute all-zero spike words and pruned weights contribute
    zero, so unmatched positions add nothing.  The contraction runs in int64,
    making the result bit-identical to the explicit O(M*N) Python loop it
    replaces.

    Returns the full-sum tensor ``O`` of shape ``(M, N, T)``.
    """
    spikes = np.asarray(spikes)
    weights = np.asarray(weights)
    if spikes.ndim != 3 or weights.ndim != 2:
        raise ValueError("expected spikes (M, K, T) and weights (K, N)")
    if spikes.shape[1] != weights.shape[0]:
        raise ValueError("contraction dimension mismatch")
    output = np.tensordot(
        spikes.astype(np.int64), weights.astype(np.int64), axes=([1], [0])
    )  # (M, T, N)
    return np.ascontiguousarray(output.transpose(0, 2, 1))


def ftp_layer(
    spikes: np.ndarray,
    weights: np.ndarray,
    lif: LIFParameters | None = None,
) -> LayerOutput:
    """Execute one full SNN layer with the FTP dataflow (Algorithm 1 lines 1-8).

    The spMspM stage runs with :func:`ftp_spmspm`; the LIF stage runs with
    the parallel LIF unit, which produces the output spikes of all timesteps
    for each output neuron in one shot.
    """
    full_sums = ftp_spmspm(spikes, weights)
    plif = ParallelLIF(lif or LIFParameters())
    out_spikes = plif.fire(full_sums)
    return LayerOutput(full_sums=full_sums, spikes=out_spikes)
