"""Scenario-driven sweep orchestration.

The runner subsystem splits every paper sweep into three layers:

* a **scenario layer** (:mod:`repro.runner.scenario`) declaring sweeps as
  data -- :class:`WorkloadSpec` x :class:`SimulatorSpec` x seeds (and,
  via ``SweepPlan.product(archs=...)``, x hardware design points from the
  :class:`repro.arch.ArchSpec` layer) composed into a :class:`SweepPlan`,
  and a registry of named :class:`Scenario` entries covering every figure
  and table of the paper plus the ``dse-*`` design-space sweeps,
* an **execution layer** (:mod:`repro.runner.executor`) -- the
  :class:`SweepRunner` partitions a plan into independent cells, runs them
  serially or across a ``multiprocessing`` pool, and batches network walks
  layer-major so one evaluation per layer drives every simulator, and
* a **cache-tier stack** below both: the in-process LRU
  (:func:`repro.engine.default_cache`) over any
  :class:`repro.engine.CacheBackend` stack -- the shared on-disk
  :class:`repro.engine.DiskEvaluationCache` and/or the network-addressed
  :class:`repro.engine.RemoteBackend`
  (``SweepRunner(cache_dir=..., cache_url=..., backends=...)``).

See the "Sweep orchestration" section of ``ROADMAP.md`` for the
architecture and the how-to-add-a-scenario recipe.
"""

from .executor import SweepResults, SweepRunner, run_ann_network
from .scenario import (
    SIMULATOR_FACTORIES,
    Scenario,
    SimulatorSpec,
    SweepCell,
    SweepPlan,
    WorkloadSpec,
    get_scenario,
    list_scenarios,
    register_scenario,
    run_scenario,
)

__all__ = [
    "SIMULATOR_FACTORIES",
    "Scenario",
    "SimulatorSpec",
    "SweepCell",
    "SweepPlan",
    "SweepResults",
    "SweepRunner",
    "WorkloadSpec",
    "get_scenario",
    "list_scenarios",
    "register_scenario",
    "run_ann_network",
    "run_scenario",
]
