"""Declarative experiment plans: workload/simulator specs and scenarios.

Every figure in the paper is a sweep -- accelerators x workloads x config
overrides x seeds.  This module turns those sweeps into *data*:

* :class:`WorkloadSpec` / :class:`SimulatorSpec` declare one workload (a
  named network or representative layer, possibly rescaled, re-timestepped
  or with sparsity-profile overrides) and one simulator job (an accelerator
  from the registry, possibly with the fine-tuned preprocessing or a
  re-provisioned configuration),
* :class:`SweepCell` is the atom of work -- one workload simulated by one
  simulator at one seed -- and :class:`SweepPlan` is an ordered tuple of
  cells plus an optional shared hardware configuration,
* :class:`Scenario` names a plan builder plus a result shaper, and the
  registry (:func:`register_scenario` / :func:`run_scenario`) makes every
  paper figure a named, composable entry point instead of a bespoke
  ``run(...)`` function.

Execution lives in :mod:`repro.runner.executor`; all the classes here are
plain frozen dataclasses, hashable and picklable, so a plan can be
partitioned and shipped to worker processes verbatim.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace as dataclass_replace
from typing import Callable, Iterable, Mapping

from ..arch.spec import (
    ArchSpec,
    arch_label,
    get_arch_spec,
    normalize_overrides,
    resolve_arch,
)
from ..baselines import (
    GammaSNN,
    GoSPASNN,
    PTBSimulator,
    SparTenSNN,
    StellarSimulator,
)
from ..core import LoASConfig, LoASSimulator
from ..engine import TENSOR_COUPLED_ARCH_FIELDS
from ..snn.workloads import (
    LayerWorkload,
    NetworkWorkload,
    get_layer_workload,
    get_network_workload,
)

__all__ = [
    "SIMULATOR_FACTORIES",
    "Scenario",
    "SimulatorSpec",
    "SweepCell",
    "SweepPlan",
    "WorkloadSpec",
    "get_scenario",
    "list_scenarios",
    "register_scenario",
    "run_scenario",
]


#: Accelerator registry the :class:`SimulatorSpec` keys resolve through.
SIMULATOR_FACTORIES: dict[str, type] = {
    "SparTen-SNN": SparTenSNN,
    "GoSPA-SNN": GoSPASNN,
    "Gamma-SNN": GammaSNN,
    "LoAS": LoASSimulator,
    "PTB": PTBSimulator,
    "Stellar": StellarSimulator,
}


@dataclass(frozen=True)
class WorkloadSpec:
    """Declaration of one workload: a named network or representative layer.

    Attributes
    ----------
    kind:
        ``"network"`` (Table II full network) or ``"layer"`` (representative
        single layer).
    name:
        Registry name, e.g. ``"vgg16"`` or ``"V-L8"``.
    scale:
        Proportional shrink factor applied after construction (1.0 = paper
        size), exactly as the experiment modules always applied it.
    timesteps:
        Override of the temporal dimension ``T`` (applied at construction,
        before scaling; scaling never touches ``T``).
    profile_overrides:
        ``(("field", value), ...)`` replacements on the sparsity profile
        (e.g. ``(("weight_sparsity", 0.25),)`` for the Figure 17 sweep),
        applied after scaling.
    """

    kind: str
    name: str
    scale: float = 1.0
    timesteps: int | None = None
    profile_overrides: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("network", "layer"):
            raise ValueError("kind must be 'network' or 'layer', got %r" % (self.kind,))

    @property
    def label(self) -> str:
        """Result-dictionary key for this workload (its registry name)."""
        return self.name

    def build(self) -> NetworkWorkload | LayerWorkload:
        """Materialise the declared workload."""
        if self.kind == "network":
            workload = (
                get_network_workload(self.name)
                if self.timesteps is None
                else get_network_workload(self.name, timesteps=self.timesteps)
            )
            if self.scale != 1.0:
                workload = workload.scaled(self.scale)
            if self.profile_overrides:
                profile = dataclass_replace(workload.profile, **dict(self.profile_overrides))
                workload = NetworkWorkload(
                    workload.name,
                    [
                        LayerWorkload(layer.shape, profile, layer.weight_bits)
                        for layer in workload.layers
                    ],
                )
            return workload
        workload = get_layer_workload(self.name, timesteps=self.timesteps)
        if self.scale != 1.0:
            workload = workload.scaled(self.scale)
        if self.profile_overrides:
            profile = dataclass_replace(workload.profile, **dict(self.profile_overrides))
            workload = LayerWorkload(workload.shape, profile, workload.weight_bits)
        return workload


@dataclass(frozen=True)
class SimulatorSpec:
    """Declaration of one simulator job.

    Attributes
    ----------
    key:
        Name in :data:`SIMULATOR_FACTORIES` (``"LoAS"``, ``"SparTen-SNN"``...).
    label:
        Result-dictionary key for the job; defaults to ``key``.  Distinct
        labels let one accelerator appear several times in a plan (e.g.
        ``"LoAS"`` and ``"LoAS-FT"``).
    finetuned:
        Evaluate the workload with the fine-tuned preprocessing profile.
    kwargs:
        Extra ``(("name", value), ...)`` keyword arguments forwarded to
        ``simulate_layer`` (e.g. ``(("preprocess", True),)``).
    config_timesteps:
        Re-provision the hardware configuration for a different ``T`` via
        ``LoASConfig.with_timesteps`` (Figure 17's timestep sweep).
    arch:
        Hardware design point the simulator is built over: a registered
        :class:`~repro.arch.spec.ArchSpec` preset name (``"loas-32nm"``) or
        an explicit spec.  ``None`` (the default) keeps the historical
        behaviour -- the plan-level ``config`` or the Table III defaults.
        Preset names are resolved to their spec **at declaration**: the cell
        then carries the full design point, so worker processes (including
        ``spawn``-context ones, whose fresh interpreters only know the
        shipped presets) never consult the preset registry.
    arch_overrides:
        Flat ``(("group.field", value), ...)`` replacements applied to the
        resolved ``arch`` (see :meth:`ArchSpec.with_overrides`); an arch
        axis built by :meth:`SweepPlan.product` lands here.
    """

    key: str
    label: str = ""
    finetuned: bool = False
    kwargs: tuple[tuple[str, object], ...] = ()
    config_timesteps: int | None = None
    arch: object = None
    arch_overrides: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.key not in SIMULATOR_FACTORIES:
            raise KeyError(
                "unknown simulator %r (expected one of %s)"
                % (self.key, sorted(SIMULATOR_FACTORIES))
            )
        if not self.label:
            object.__setattr__(self, "label", self.key)
        object.__setattr__(self, "arch_overrides", normalize_overrides(self.arch_overrides))
        if isinstance(self.arch, str):
            # Resolve at declaration: unknown presets fail here, and the
            # cell becomes self-contained for cross-process shipping.
            object.__setattr__(self, "arch", get_arch_spec(self.arch))
        elif self.arch is not None and not isinstance(self.arch, ArchSpec):
            raise TypeError(
                "arch must be None, a preset name or an ArchSpec, got %r"
                % (self.arch,)
            )

    def resolve_arch(self) -> ArchSpec | None:
        """The fully-resolved design point (``None`` when the spec has none)."""
        if self.arch is None and not self.arch_overrides:
            return None
        return resolve_arch(self.arch, self.arch_overrides)

    def build(self, config=None):
        """Instantiate the simulator (optionally over a shared config).

        A cell-level ``arch`` wins over the plan-level ``config``; the
        historical ``config_timesteps`` re-provisioning applies on top of
        either.
        """
        spec = self.resolve_arch()
        if spec is not None:
            config = LoASConfig(spec)
        if self.config_timesteps is not None:
            config = (config or LoASConfig()).with_timesteps(self.config_timesteps)
        return SIMULATOR_FACTORIES[self.key](config)


@dataclass(frozen=True)
class _ArchPoint:
    """One resolved point of a design-space axis (see ``SweepPlan.product``)."""

    arch: object
    overrides: tuple[tuple[str, object], ...]
    label: str
    #: ``pe.timesteps`` when the point moves it -- the one arch knob that
    #: must re-timestep the workload (tensor coupling).
    workload_timesteps: int | None
    #: The fully-resolved spec (base arch + overrides).
    resolved: object = None

    def apply(self, simulator: SimulatorSpec) -> SimulatorSpec:
        """The simulator spec pinned to this design point."""
        return dataclass_replace(
            simulator,
            arch=self.arch,
            arch_overrides=self.overrides,
            label="%s@%s" % (simulator.label, self.label),
        )

    def couple_workload(self, workload: WorkloadSpec) -> WorkloadSpec:
        """Re-timestep the workload when the point overrides ``pe.timesteps``."""
        if self.workload_timesteps is None:
            return workload
        return dataclass_replace(workload, timesteps=self.workload_timesteps)


def _coerce_arch_point(point) -> _ArchPoint:
    """Normalise one ``archs=`` axis entry (see ``SweepPlan.product``)."""
    if isinstance(point, (tuple, list)):
        if len(point) != 2:
            raise ValueError(
                "an arch point pair must be (arch, overrides), got %r" % (point,)
            )
        arch, overrides = point
    else:
        arch, overrides = point, ()
    overrides = normalize_overrides(overrides)
    base = resolve_arch(arch)
    resolved = resolve_arch(arch, overrides)  # validates preset names and paths
    # Coupling is decided by *values*, not override spelling: any override
    # that moves a tensor-coupled field (dotted path, bare name or a whole
    # pe=PESpec(...) replacement) re-timesteps the workload.  The coupling
    # channel is WorkloadSpec.timesteps, so only pe.timesteps can ride it;
    # the unpacking fails loudly if a second tensor-coupled field is ever
    # added without growing its own channel here.
    (timesteps_path,) = TENSOR_COUPLED_ARCH_FIELDS
    workload_timesteps = None
    if resolved.get(timesteps_path) != base.get(timesteps_path):
        workload_timesteps = resolved.get(timesteps_path)
    return _ArchPoint(
        arch=arch,
        overrides=overrides,
        label=arch_label(arch, overrides),
        workload_timesteps=workload_timesteps,
        resolved=resolved,
    )


def _normalize_arch_points(archs) -> tuple[_ArchPoint, ...]:
    """Coerce an ``archs=`` axis, enforcing coupling and distinct labels.

    Two whole-axis rules live here rather than per point:

    * **heterogeneous timesteps couple everywhere** -- when the resolved
      points disagree on a tensor-coupled field (e.g. two presets
      provisioned for different ``pe.timesteps``), every point re-timesteps
      its workload, however the value was spelled.  An axis whose points all
      agree leaves workloads alone (running a T=4 workload on T=8-provisioned
      hardware is legitimate and stays a pure-cost sweep).
    * **labels are de-duplicated** -- distinct :class:`ArchSpec` instances
      can share a ``name``; colliding labels get a ``#<ordinal>`` suffix so
      per-label result addressing (``nested()``) never collapses points.
    """
    points = [_coerce_arch_point(point) for point in archs]
    (timesteps_path,) = TENSOR_COUPLED_ARCH_FIELDS
    if len({point.resolved.get(timesteps_path) for point in points}) > 1:
        points = [
            dataclass_replace(
                point, workload_timesteps=point.resolved.get(timesteps_path)
            )
            for point in points
        ]
    seen: dict[str, int] = {}
    unique: list[_ArchPoint] = []
    for point in points:
        ordinal = seen.get(point.label, 0)
        seen[point.label] = ordinal + 1
        unique.append(
            point
            if ordinal == 0
            else dataclass_replace(point, label="%s#%d" % (point.label, ordinal + 1))
        )
    return tuple(unique)


@dataclass(frozen=True)
class SweepCell:
    """One unit of sweep work: ``workload`` x ``simulator`` x ``seed``.

    ``tag`` groups cells of one plan into sub-sweeps (e.g. the three
    Figure 17 panels) so a result shaper can slice them without guessing.
    """

    workload: WorkloadSpec
    simulator: SimulatorSpec
    seed: int = 0
    tag: str = ""


@dataclass(frozen=True)
class SweepPlan:
    """An ordered, partitionable set of sweep cells.

    Cells sharing ``(workload, seed)`` form one *partition*: the executor
    evaluates the workload once per partition and drives every simulator of
    the partition off the shared evaluation, layer by layer.  Partitions are
    independent and may run in separate worker processes.
    """

    name: str
    cells: tuple[SweepCell, ...]
    config: object | None = None

    @classmethod
    def product(
        cls,
        name: str,
        workloads: Iterable[WorkloadSpec],
        simulators: Iterable[SimulatorSpec],
        seeds: Iterable[int] = (0,),
        config=None,
        tag: str = "",
        archs: Iterable | None = None,
    ) -> "SweepPlan":
        """Cartesian plan: every workload x every seed x every simulator.

        ``archs`` adds a **hardware design-point axis**: each point is a
        preset name, an :class:`~repro.arch.spec.ArchSpec`, or an
        ``(arch, overrides)`` pair whose overrides are flat
        ``"group.field"`` replacements.  Every simulator is replicated per
        point (labels suffixed ``"@<arch label>"`` so results stay
        addressable), and the point's arch travels in the cell -- **not** in
        the evaluation cache key, so all points of one ``(workload, seed)``
        partition share a single cached evaluation per layer.  The one
        exception is the tensor-coupled fields
        (:data:`repro.engine.TENSOR_COUPLED_ARCH_FIELDS`): a point that
        overrides ``pe.timesteps`` also re-timesteps the workload, putting
        the value into the workload fingerprint exactly because it changes
        the generated tensors.
        """
        workloads = tuple(workloads)
        simulators = tuple(simulators)
        seeds = tuple(seeds)
        if archs is None:
            cells = tuple(
                SweepCell(workload, simulator, seed, tag)
                for workload in workloads
                for seed in seeds
                for simulator in simulators
            )
            return cls(name=name, cells=cells, config=config)
        points = _normalize_arch_points(archs)
        cells = tuple(
            SweepCell(
                point.couple_workload(workload),
                point.apply(simulator),
                seed,
                tag,
            )
            for workload in workloads
            for seed in seeds
            for point in points
            for simulator in simulators
        )
        return cls(name=name, cells=cells, config=config)

    def __add__(self, other: "SweepPlan") -> "SweepPlan":
        """Concatenate two plans (first plan's name and config win)."""
        return SweepPlan(self.name, self.cells + other.cells, self.config)

    def partitions(self) -> list[list[int]]:
        """Cell-index groups sharing ``(workload, seed)``, in plan order."""
        groups: OrderedDict[tuple, list[int]] = OrderedDict()
        for index, cell in enumerate(self.cells):
            groups.setdefault((cell.workload, cell.seed), []).append(index)
        return list(groups.values())


# --------------------------------------------------------------------- #
# Scenario registry
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class Scenario:
    """A named, parameterised experiment.

    Sweep-shaped scenarios declare ``build`` (``(**params) -> SweepPlan``)
    plus ``shape`` (``(results, **params) -> dict``); bespoke scenarios
    (training runs, static tables) declare ``run`` (``(**params) -> dict``)
    instead.  ``defaults`` are the parameter defaults merged under the
    caller's overrides by :func:`run_scenario`.
    """

    name: str
    description: str = ""
    build: Callable[..., SweepPlan] | None = None
    shape: Callable[..., Mapping] | None = None
    run: Callable[..., Mapping] | None = None
    defaults: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if (self.run is None) == (self.build is None):
            raise ValueError("a scenario declares either build(+shape) or run")


_SCENARIOS: dict[str, Scenario] = {}


def _scenario_signature(scenario: Scenario) -> tuple:
    """Identity of a scenario that survives ``importlib.reload``.

    Function objects are compared by ``(module, qualname)`` rather than
    identity: reloading an experiment module re-creates its functions and
    lambdas, and those re-registrations must not read as conflicts.
    """

    def function_id(fn):
        if fn is None:
            return None
        return (getattr(fn, "__module__", None), getattr(fn, "__qualname__", None))

    return (
        scenario.name,
        scenario.description,
        scenario.defaults,
        function_id(scenario.build),
        function_id(scenario.shape),
        function_id(scenario.run),
    )


def register_scenario(scenario: Scenario, replace: bool = False) -> Scenario:
    """Add ``scenario`` to the registry.

    Registering a *different* scenario under an already-taken name raises
    ``ValueError`` (a silent overwrite would make one figure's entry point
    run another figure's sweep); pass ``replace=True`` to overwrite on
    purpose.  Re-registering the same scenario -- including the fresh
    function objects an ``importlib.reload`` of its module produces -- is a
    harmless no-op.
    """
    existing = _SCENARIOS.get(scenario.name)
    if (
        existing is not None
        and not replace
        and _scenario_signature(existing) != _scenario_signature(scenario)
    ):
        raise ValueError(
            "scenario %r is already registered; pass replace=True to "
            "overwrite it" % (scenario.name,)
        )
    _SCENARIOS[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up a registered scenario by name."""
    try:
        return _SCENARIOS[name]
    except KeyError as exc:
        raise KeyError(
            "unknown scenario %r (expected one of %s)" % (name, list_scenarios())
        ) from exc


def list_scenarios() -> list[str]:
    """Sorted names of every registered scenario."""
    return sorted(_SCENARIOS)


def run_scenario(name: str, workers: int | None = None, cache_dir=None, **params):
    """Execute a registered scenario and return its shaped result dict.

    .. deprecated::
        ``run_scenario`` is a shim over the public API; use
        :meth:`repro.api.Session.run` (which additionally returns provenance
        and supports streaming) instead.  The returned payload is unchanged.
    """
    from ..api.session import _legacy_shim_warning, default_session  # late import: api imports runner

    _legacy_shim_warning("run_scenario", name)
    return default_session().run(
        name, workers=workers, cache_dir=cache_dir, **params
    ).payload
