"""Sweep execution: partitioning, batched evaluation and worker pools.

The :class:`SweepRunner` executes a :class:`~repro.runner.scenario.SweepPlan`
in three steps:

1. **Partition** -- cells sharing ``(workload, seed)`` form one partition;
   partitions are independent (each starts its own per-variant generators
   from the cell seed), so they can run in any order and in any process.
2. **Batch** -- inside a partition the workload is walked *layer-major*:
   each layer is evaluated once per fine-tuning variant and that one
   :class:`~repro.engine.LayerEvaluation` drives every simulator of the
   partition before the next layer is touched.  Correctness therefore never
   depends on the LRU holding more than the current layer (a ``maxsize=1``
   cache still gets full cross-simulator sharing), which bounds peak cache
   residency on very large networks.
3. **Execute** -- serially in-process, or across a ``multiprocessing`` pool
   (``workers >= 2``).  The runner owns a **stack of lower cache tiers**
   (the on-disk tier from ``cache_dir``, the network-addressed remote tier
   from ``cache_url``, or any explicit ``backends``): the serial path passes
   the stack per evaluation, worker processes reattach equivalent backends
   from picklable specs after ``fork``/``spawn`` (live backends hold locks
   and sockets and must not cross process boundaries), and after every layer
   the executor flushes the cache's write-backs so the stored entries carry
   the derived statistics the simulators just computed.

Execution is **incremental**: :meth:`SweepRunner.iter_partitions` yields each
partition's results the moment they are available (in plan order serially,
in completion order over a pool via ``imap_unordered``), and
:meth:`SweepRunner.run` is merely that stream drained into a
:class:`SweepResults`.  Because partitions are independent and results are
slotted back by cell index, the batch result is bit-identical whichever
order partitions complete in -- :class:`repro.api.Session.stream` builds the
public streaming surface on this hook.

Per-variant generators are seeded exactly like the historical serial loops
(one fresh ``default_rng(seed)`` per simulator walk), and cache keys include
the generator state, so serial, multi-process and legacy results are
bit-identical -- asserted by ``tests/test_runner.py``.
"""

from __future__ import annotations

import multiprocessing
from typing import Iterator, Sequence

import numpy as np

from ..baselines import ann_layer_tensors
from ..engine import (
    AnnLayerEvaluation,
    DiskEvaluationCache,
    RemoteBackend,
    build_backends,
    default_cache,
)
from ..engine.cache import ATTACHED_TIER
from ..metrics.results import SimulationResult, aggregate_results
from ..snn.workloads import NetworkWorkload
from .scenario import SweepCell, SweepPlan

__all__ = ["SweepResults", "SweepRunner", "run_ann_network"]


class SweepResults:
    """Results of one executed plan, addressable by cell or as nested dicts."""

    def __init__(self, plan: SweepPlan, results: Sequence[SimulationResult]):
        if len(results) != len(plan.cells):
            raise ValueError("one result per plan cell expected")
        self.plan = plan
        self._ordered: list[tuple[SweepCell, SimulationResult]] = list(
            zip(plan.cells, results)
        )
        self._by_cell = dict(self._ordered)

    def __len__(self) -> int:
        return len(self._ordered)

    def __iter__(self) -> Iterator[tuple[SweepCell, SimulationResult]]:
        return iter(self._ordered)

    def __getitem__(self, cell: SweepCell) -> SimulationResult:
        return self._by_cell[cell]

    def nested(self) -> dict[str, dict[str, SimulationResult]]:
        """``{workload label: {simulator label: result}}`` in plan order.

        Raises when two cells share the same ``(workload label, simulator
        label)`` pair (e.g. one layer swept at several timesteps): a nested
        dict would silently keep only the last result.  Plans like that are
        addressed per cell (``results[cell]``) or per tag
        (``results.tagged(...)``) instead.
        """
        out: dict[str, dict[str, SimulationResult]] = {}
        for cell, result in self._ordered:
            per_workload = out.setdefault(cell.workload.label, {})
            if cell.simulator.label in per_workload:
                raise ValueError(
                    "nested() would collapse duplicate cell (%r, %r); address "
                    "results by cell or by tag instead"
                    % (cell.workload.label, cell.simulator.label)
                )
            per_workload[cell.simulator.label] = result
        return out

    def tagged(self, tag: str) -> list[tuple[SweepCell, SimulationResult]]:
        """The ordered cell results belonging to one sub-sweep tag."""
        return [(cell, result) for cell, result in self._ordered if cell.tag == tag]


def _execute_partition(
    cells: Sequence[SweepCell], config, tiers=ATTACHED_TIER
) -> list[SimulationResult]:
    """Run one partition: all simulators of one ``(workload, seed)`` group.

    The workload is walked layer-major; each layer is evaluated once per
    fine-tuning variant (with that variant's own generator, seeded exactly
    like the historical per-simulator serial walks) and every simulator of
    the partition consumes the shared evaluation before the next layer.

    ``tiers`` is forwarded to :meth:`WorkloadEvaluationCache.evaluate`:
    worker processes leave the default (their process-wide attached stack),
    the serial path passes the runner's own tier stack explicitly so
    concurrent in-process runs with different tiers never interfere.  After
    each layer's simulators have run, the cache's write-backs are flushed:
    the evaluation is maximally enriched exactly then (statistics,
    compressions, preprocessed variants), so the lower tiers store derived
    state instead of bare tensors.
    """
    workload_spec = cells[0].workload
    seed = cells[0].seed
    workload = workload_spec.build()
    simulators = [cell.simulator.build(config) for cell in cells]
    cache = default_cache()
    variants = sorted({cell.simulator.finetuned for cell in cells})
    rngs = {variant: np.random.default_rng(seed) for variant in variants}
    layers = workload.layers if isinstance(workload, NetworkWorkload) else [workload]
    per_cell: list[list[SimulationResult]] = [[] for _ in cells]
    for layer in layers:
        evaluations = {
            variant: cache.evaluate(layer, rngs[variant], finetuned=variant, tiers=tiers)
            for variant in variants
        }
        for index, cell in enumerate(cells):
            per_cell[index].append(
                simulators[index].simulate_workload(
                    layer,
                    evaluation=evaluations[cell.simulator.finetuned],
                    **dict(cell.simulator.kwargs),
                )
            )
        cache.flush_writebacks()
    if isinstance(workload, NetworkWorkload):
        return [
            aggregate_results(results, accelerator=simulators[index].name, workload=workload.name)
            for index, results in enumerate(per_cell)
        ]
    return [results[0] for results in per_cell]


def _pool_task(payload) -> tuple[int, list[SimulationResult]]:
    """Worker-process entry point: reattach the tier stack, run one partition."""
    ordinal, cells, config, backend_specs = payload
    _ensure_backends(backend_specs)
    return ordinal, _execute_partition(cells, config)


def _ensure_backends(specs) -> None:
    """Idempotently attach the shared lower-tier stack to this process's cache.

    Worker processes receive picklable backend *specs* rather than live
    backends (which hold locks and sockets): under ``fork`` an inherited
    remote connection would be shared -- and corrupted -- across processes,
    under ``spawn`` nothing survives at all.  Rebuilding from specs gives
    every worker fresh, equivalent tiers; the comparison keeps reattachment
    idempotent across the many partitions one worker may execute.
    """
    if not specs:
        return
    cache = default_cache()
    current = tuple(backend.spec() for backend in cache.lower_backends)
    if current == tuple(specs) and cache.lower_attached_in_process:
        return
    cache.attach_backends(build_backends(specs))


def _ensure_disk_tier(cache_dir, max_bytes=None) -> None:
    """Back-compat shim: attach a single shared disk tier to this process."""
    if cache_dir is None:
        return
    tier = DiskEvaluationCache.coerce(cache_dir, max_bytes=max_bytes)
    _ensure_backends((tier.spec(),))


class SweepRunner:
    """Executes sweep plans serially or across a worker pool.

    Parameters
    ----------
    workers:
        ``None``, 0 or 1 run the plan serially in-process; ``>= 2`` spreads
        the partitions over a ``multiprocessing`` pool of that size.
    cache_dir:
        The shared on-disk evaluation-cache tier: a directory path, or an
        already-constructed :class:`~repro.engine.DiskEvaluationCache` whose
        counters the caller wants to keep (``repro.api.Session`` passes its
        own tier so ``cache stats`` report across runs).
    cache_url:
        The network-addressed evaluation-cache tier: a ``host:port`` of a
        running ``python -m repro cache serve`` daemon, or an
        already-constructed :class:`~repro.engine.RemoteBackend`.  Stacked
        *below* the disk tier (memory, then disk, then remote); an
        unreachable daemon degrades the stack with a single warning.
    backends:
        Explicit lower-tier stack (any
        :class:`~repro.engine.CacheBackend` sequence, top-down), overriding
        the ``cache_dir`` / ``cache_url`` convenience parameters.  Whatever
        the stack, serial runs pass it per evaluation instead of mutating
        the process-wide cache (so concurrent in-process runs with
        different tiers cannot interfere) and worker processes reattach
        equivalent backends from picklable specs after ``fork``/``spawn``.
    mp_context:
        Optional multiprocessing start-method name (``"fork"`` / ``"spawn"``);
        defaults to ``fork`` where available (POSIX) and ``spawn`` elsewhere.
    disk_max_bytes:
        Optional byte budget handed to the disk tier when ``cache_dir`` is a
        path (ignored when an instance is passed -- the instance keeps its
        own budget).
    """

    def __init__(
        self,
        workers: int | None = None,
        cache_dir=None,
        mp_context: str | None = None,
        disk_max_bytes: int | None = None,
        cache_url=None,
        backends=None,
    ):
        if workers is not None and workers < 0:
            raise ValueError("workers must be non-negative")
        self.workers = workers or 0
        self.mp_context = mp_context
        if backends is not None:
            if cache_dir is not None or cache_url is not None:
                raise ValueError("pass either backends or cache_dir/cache_url, not both")
            self.backends = tuple(backends)
        else:
            stack = []
            disk = DiskEvaluationCache.coerce(cache_dir, max_bytes=disk_max_bytes)
            if disk is not None:
                stack.append(disk)
            remote = RemoteBackend.coerce(cache_url)
            if remote is not None:
                stack.append(remote)
            self.backends = tuple(stack)
        #: The first on-disk tier of the stack (``None`` without one); kept
        #: as an attribute because provenance and ``cache stats`` report it.
        self.disk_tier = next(
            (b for b in self.backends if isinstance(b, DiskEvaluationCache)), None
        )
        #: The first remote tier of the stack (``None`` without one).
        self.remote_tier = next(
            (b for b in self.backends if isinstance(b, RemoteBackend)), None
        )
        #: The tier's directory as a plain string (whatever form was passed).
        self.cache_dir = (
            str(self.disk_tier.directory) if self.disk_tier is not None else None
        )
        #: The remote tier's URL as a plain string.
        self.cache_url = self.remote_tier.url if self.remote_tier is not None else None

    def run(self, plan: SweepPlan) -> SweepResults:
        """Execute every cell of ``plan`` and return the results.

        Drains :meth:`iter_partitions`; because results are slotted back by
        cell index, the outcome does not depend on partition completion
        order.
        """
        results: list[SimulationResult | None] = [None] * len(plan.cells)
        for _, indices, partition_results in self.iter_partitions(plan):
            for index, result in zip(indices, partition_results):
                results[index] = result
        return SweepResults(plan, results)

    def iter_partitions(
        self, plan: SweepPlan
    ) -> Iterator[tuple[int, list[int], list[SimulationResult]]]:
        """Yield ``(ordinal, cell_indices, results)`` per completed partition.

        ``ordinal`` indexes into ``plan.partitions()`` and ``cell_indices``
        are the partition's positions in ``plan.cells``.  Serial runs yield
        in plan order; pool runs yield in completion order
        (``imap_unordered``), so consumers must not assume ordering --
        every partition is yielded exactly once either way.
        """
        partitions = plan.partitions()
        if self.workers >= 2 and len(partitions) > 1:
            return self._iter_pool(plan, partitions)
        return self._iter_serial(plan, partitions)

    # ------------------------------------------------------------------ #
    # Execution backends
    # ------------------------------------------------------------------ #
    def _iter_serial(self, plan: SweepPlan, partitions):
        # The runner's tier stack travels as an explicit evaluate() argument,
        # not by mutating the process-wide cache's attached tiers:
        # interleaved or concurrent in-process runs (streams, threads)
        # therefore cannot detach each other's tiers or leak these into
        # unrelated runs.  Without an own stack, whatever the caller
        # attached globally stays in effect (ATTACHED_TIER).
        tiers = self.backends if self.backends else ATTACHED_TIER
        for ordinal, indices in enumerate(partitions):
            yield ordinal, indices, _execute_partition(
                [plan.cells[i] for i in indices], plan.config, tiers=tiers
            )

    def _iter_pool(self, plan: SweepPlan, partitions):
        method = self.mp_context
        if method is None:
            method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        context = multiprocessing.get_context(method)
        specs = tuple(backend.spec() for backend in self.backends)
        payloads = [
            (ordinal, tuple(plan.cells[i] for i in indices), plan.config, specs)
            for ordinal, indices in enumerate(partitions)
        ]
        processes = min(self.workers, len(payloads))
        with context.Pool(processes=processes) as pool:
            for ordinal, results in pool.imap_unordered(_pool_task, payloads):
                yield ordinal, partitions[ordinal], results


def run_ann_network(
    simulators: Sequence,
    network: NetworkWorkload,
    seed: int,
) -> dict[str, SimulationResult]:
    """Batched dual-sparse **ANN** network sweep (Figure 18's baselines).

    The ANN twin of the partition executor: one pass over the layers, one
    shared :class:`~repro.engine.AnnLayerEvaluation` per layer driving every
    simulator, the evaluation released before the next layer.  Tensor
    generation consumes one ``default_rng(seed)`` stream in layer order,
    exactly like the historical implementation.
    """
    rng = np.random.default_rng(seed)
    per_simulator: dict[str, list[SimulationResult]] = {sim.name: [] for sim in simulators}
    for layer in network.layers:
        evaluation = AnnLayerEvaluation(*ann_layer_tensors(layer, rng=rng))
        for simulator in simulators:
            per_simulator[simulator.name].append(
                simulator.simulate_layer(
                    evaluation.activations,
                    evaluation.weights,
                    name=layer.name,
                    evaluation=evaluation,
                )
            )
    return {
        name: aggregate_results(results, accelerator=name, workload=network.name)
        for name, results in per_simulator.items()
    }
