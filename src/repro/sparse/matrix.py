"""Dense matrix helpers and random dual-sparse workload tensors.

The LoAS evaluation never needs trained weights per se -- the hardware cost
model only depends on the *shape* and the *sparsity structure* of the input
spike tensor ``A`` (``M x K x T``, unary) and the weight matrix ``B``
(``K x N``, integer).  This module provides generators that produce tensors
with controlled sparsity so every experiment in the paper can be regenerated
from synthetic data that matches Table II.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "sparsity",
    "density",
    "random_weight_matrix",
    "random_spike_tensor",
    "silent_neuron_mask",
    "silent_neuron_fraction",
    "spike_sparsity_per_timestep",
    "mask_low_activity_neurons",
]


def sparsity(array: np.ndarray) -> float:
    """Fraction of zero elements in ``array``."""
    if array.size == 0:
        return 0.0
    return float(np.count_nonzero(array == 0) / array.size)


def density(array: np.ndarray) -> float:
    """Fraction of non-zero elements in ``array``."""
    return 1.0 - sparsity(array)


def random_weight_matrix(
    k: int,
    n: int,
    weight_sparsity: float,
    rng: np.random.Generator | None = None,
    weight_bits: int = 8,
) -> np.ndarray:
    """Generate a ``K x N`` integer weight matrix with the given sparsity.

    Non-zero weights are drawn uniformly from the signed range implied by
    ``weight_bits`` (excluding zero so the realised sparsity matches the
    request exactly in expectation).
    """
    if not 0.0 <= weight_sparsity <= 1.0:
        raise ValueError("weight_sparsity must lie in [0, 1]")
    rng = np.random.default_rng() if rng is None else rng
    lo = -(2 ** (weight_bits - 1))
    hi = 2 ** (weight_bits - 1) - 1
    weights = rng.integers(lo, hi + 1, size=(k, n), dtype=np.int32)
    weights[weights == 0] = 1
    mask = rng.random((k, n)) < weight_sparsity
    weights[mask] = 0
    return weights


def random_spike_tensor(
    m: int,
    k: int,
    t: int,
    spike_sparsity: float,
    silent_fraction: float | None = None,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Generate an ``M x K x T`` unary spike tensor.

    Parameters
    ----------
    spike_sparsity:
        Target fraction of zero entries across the whole tensor (the
        "AvSpA-origin" column of Table II).
    silent_fraction:
        Target fraction of *silent* pre-synaptic neurons, i.e. ``(m, k)``
        positions that never fire in any timestep (the "AvSpA-packed" column
        of Table II).  When ``None`` the silent fraction falls out of the
        i.i.d. Bernoulli process implied by ``spike_sparsity``.

    The generator first decides which neurons are silent, then distributes
    spikes over the remaining (non-silent) neurons so that the overall spike
    sparsity matches the request.  Every non-silent neuron is guaranteed to
    fire at least once, mirroring the definition in the paper.
    """
    if not 0.0 <= spike_sparsity <= 1.0:
        raise ValueError("spike_sparsity must lie in [0, 1]")
    rng = np.random.default_rng() if rng is None else rng

    if silent_fraction is None:
        # Independent Bernoulli spikes.
        spikes = (rng.random((m, k, t)) >= spike_sparsity).astype(np.uint8)
        return spikes

    if not 0.0 <= silent_fraction <= 1.0:
        raise ValueError("silent_fraction must lie in [0, 1]")

    spikes = np.zeros((m, k, t), dtype=np.uint8)
    silent = rng.random((m, k)) < silent_fraction
    active = ~silent
    n_active = int(active.sum())
    if n_active == 0:
        return spikes

    # Total spikes needed to achieve the requested overall sparsity.
    total_spikes = int(round((1.0 - spike_sparsity) * m * k * t))
    # Every non-silent neuron fires at least once.
    total_spikes = max(total_spikes, n_active)
    total_spikes = min(total_spikes, n_active * t)

    # Guarantee one spike per active neuron at a random timestep.  All
    # indexing runs on the flat (m*k, t) view: flat neuron index i = row*k +
    # col enumerates active neurons in the same row-major order np.nonzero
    # would, without materialising the 2-D coordinate arrays.
    flat_spikes = spikes.reshape(m * k, t)
    active_flat = np.flatnonzero(active)
    first_spike_t = rng.integers(0, t, size=n_active)
    flat_spikes[active_flat, first_spike_t] = 1

    remaining = total_spikes - n_active
    if remaining > 0:
        # Candidate slots: all (active neuron, timestep) pairs not yet used.
        # Slot i*t + ti maps to (active neuron i, timestep ti) in the same
        # C-order a dense (neuron, timestep) enumeration would use.
        free = flat_spikes[active_flat] == 0  # (n_active, t)
        free_idx = np.flatnonzero(free)
        chosen = rng.choice(free_idx, size=min(remaining, free_idx.size), replace=False)
        flat_spikes[active_flat[chosen // t], chosen % t] = 1
    return spikes


def silent_neuron_mask(spikes: np.ndarray) -> np.ndarray:
    """Boolean ``M x K`` mask of neurons that never fire across timesteps."""
    if spikes.ndim != 3:
        raise ValueError("expected an M x K x T spike tensor")
    return spikes.sum(axis=2) == 0


def silent_neuron_fraction(spikes: np.ndarray) -> float:
    """Fraction of pre-synaptic neurons that are silent (never fire)."""
    mask = silent_neuron_mask(spikes)
    return float(mask.mean()) if mask.size else 0.0


def spike_sparsity_per_timestep(spikes: np.ndarray) -> np.ndarray:
    """Per-timestep spike sparsity, shape ``(T,)``."""
    if spikes.ndim != 3:
        raise ValueError("expected an M x K x T spike tensor")
    t = spikes.shape[2]
    return np.array([sparsity(spikes[:, :, ti]) for ti in range(t)])


def mask_low_activity_neurons(spikes: np.ndarray, max_spikes: int = 1) -> np.ndarray:
    """Zero out neurons firing at most ``max_spikes`` times (preprocessing).

    This is the fine-tuned preprocessing step from Section V of the paper:
    pre-synaptic neurons with only one output spike throughout all timesteps
    are masked, increasing the silent-neuron density that the packed
    compression exploits.  Returns a new tensor; the input is not modified.
    """
    if spikes.ndim != 3:
        raise ValueError("expected an M x K x T spike tensor")
    counts = spikes.sum(axis=2)
    masked = spikes.copy()
    masked[(counts > 0) & (counts <= max_spikes)] = 0
    return masked
