"""FTP-friendly packed-temporal spike compression (Section IV-A of LoAS).

The key idea: instead of compressing the unary spike matrix per timestep with
multi-bit coordinates (CSR/CSC), LoAS packs the spikes of one pre-synaptic
neuron across *all* timesteps into a single ``T``-bit word.  A neuron whose
packed word is all zeros (it never fires) is a **silent neuron** and is not
stored at all.  Each row of the spike matrix then becomes a fiber: a
``K``-bit bitmask marking the non-silent neurons, a pointer, and the packed
``T``-bit words of the non-silent neurons in coordinate order.

The compression efficiency therefore scales with the *silent-neuron* density
rather than with the per-timestep spike sparsity, and memory accesses along
the temporal dimension are contiguous -- exactly what the fully
temporal-parallel dataflow needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .fiber import Fiber
from .matrix import silent_neuron_mask

__all__ = [
    "pack_spike_words",
    "unpack_spike_words",
    "PackedSpikeMatrix",
]


def pack_spike_words(spikes: np.ndarray) -> np.ndarray:
    """Pack an ``... x T`` unary spike array into integer words.

    Bit ``t`` (LSB = timestep 0) of the output word is the spike at timestep
    ``t``.  The output has the input shape without the trailing ``T`` axis.
    """
    spikes = np.asarray(spikes)
    t = spikes.shape[-1]
    if t > 63:
        raise ValueError("packing supports at most 63 timesteps")
    weights = (1 << np.arange(t, dtype=np.int64))
    return (spikes.astype(np.int64) * weights).sum(axis=-1)


def unpack_spike_words(words: np.ndarray, timesteps: int) -> np.ndarray:
    """Inverse of :func:`pack_spike_words`; returns an ``... x T`` uint8 array."""
    words = np.asarray(words, dtype=np.int64)
    shifts = np.arange(timesteps, dtype=np.int64)
    return ((words[..., None] >> shifts) & 1).astype(np.uint8)


@dataclass
class PackedSpikeMatrix:
    """The LoAS compressed representation of a spike tensor ``A``.

    Parameters
    ----------
    fibers:
        One fiber per row ``m``.  The fiber bitmask has one bit per
        pre-synaptic neuron ``k`` (1 = non-silent); payload values are the
        packed ``T``-bit spike words of the non-silent neurons.
    shape:
        Original dense shape ``(M, K, T)``.
    """

    fibers: list[Fiber]
    shape: tuple[int, int, int]

    @classmethod
    def from_dense(cls, spikes: np.ndarray) -> "PackedSpikeMatrix":
        """Compress an ``M x K x T`` unary spike tensor."""
        spikes = np.asarray(spikes)
        if spikes.ndim != 3:
            raise ValueError("expected an M x K x T spike tensor")
        m, k, t = spikes.shape
        words = pack_spike_words(spikes)
        silent = silent_neuron_mask(spikes)
        fibers = []
        offset = 0
        for i in range(m):
            bitmask = ~silent[i]
            values = words[i][bitmask]
            fibers.append(Fiber(bitmask=bitmask, values=values, pointer=offset, value_bits=t))
            offset += int(bitmask.sum())
        return cls(fibers=fibers, shape=(m, k, t))

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def timesteps(self) -> int:
        """Number of timesteps packed into each stored word."""
        return self.shape[2]

    @property
    def num_rows(self) -> int:
        """Number of rows (``M``) in the spike matrix."""
        return self.shape[0]

    @property
    def num_neurons(self) -> int:
        """Number of pre-synaptic neurons per row (``K``)."""
        return self.shape[1]

    @property
    def nnz(self) -> int:
        """Total number of stored (non-silent) neurons."""
        return sum(f.nnz for f in self.fibers)

    @property
    def silent_fraction(self) -> float:
        """Fraction of neurons that are silent and therefore not stored."""
        total = self.num_rows * self.num_neurons
        if total == 0:
            return 0.0
        return 1.0 - self.nnz / total

    def fiber(self, row: int) -> Fiber:
        """Return the compressed fiber for row ``row``."""
        return self.fibers[row]

    # ------------------------------------------------------------------ #
    # Storage accounting
    # ------------------------------------------------------------------ #
    def payload_bits(self) -> int:
        """Bits spent on packed spike words."""
        return sum(f.payload_bits() for f in self.fibers)

    def bitmask_bits(self) -> int:
        """Bits spent on the non-silent bitmasks."""
        return sum(f.bitmask_bits() for f in self.fibers)

    def storage_bits(self, pointer_width: int = 32) -> int:
        """Total compressed footprint in bits."""
        return sum(f.storage_bits(pointer_width) for f in self.fibers)

    def storage_bytes(self, pointer_width: int = 32) -> float:
        """Total compressed footprint in bytes."""
        return self.storage_bits(pointer_width) / 8.0

    def dense_bits(self) -> int:
        """Footprint of the uncompressed unary spike tensor in bits."""
        m, k, t = self.shape
        return m * k * t

    def compression_efficiency(self) -> float:
        """Spike bits captured per stored payload bit.

        This is the metric of the worked example around Figure 8: the number
        of original single-bit spikes (ones) represented, divided by the bits
        spent storing them.  Coordinate-per-spike formats such as CSR pay
        several coordinate bits per spike (25 % in the paper's example),
        whereas the packed format amortises one ``T``-bit word over all the
        spikes of a non-silent neuron.
        """
        payload = self.payload_bits()
        if payload == 0:
            return float("inf")
        return self.captured_spikes() / payload

    def captured_spikes(self) -> int:
        """Number of original single-bit spikes (value 1) captured."""
        return int(sum(int(bin(int(v)).count("1")) for f in self.fibers for v in f.values))

    # ------------------------------------------------------------------ #
    # Reconstruction
    # ------------------------------------------------------------------ #
    def to_dense(self) -> np.ndarray:
        """Reconstruct the dense ``M x K x T`` unary spike tensor."""
        m, k, t = self.shape
        dense = np.zeros((m, k, t), dtype=np.uint8)
        for i, f in enumerate(self.fibers):
            words = np.zeros(k, dtype=np.int64)
            words[f.bitmask] = f.values
            dense[i] = unpack_spike_words(words, t)
        return dense

    def nonsilent_matrix(self) -> np.ndarray:
        """Boolean ``M x K`` matrix of non-silent neurons (the fiber bitmasks)."""
        return np.stack([f.bitmask for f in self.fibers], axis=0)
