"""FTP-friendly packed-temporal spike compression (Section IV-A of LoAS).

The key idea: instead of compressing the unary spike matrix per timestep with
multi-bit coordinates (CSR/CSC), LoAS packs the spikes of one pre-synaptic
neuron across *all* timesteps into a single ``T``-bit word.  A neuron whose
packed word is all zeros (it never fires) is a **silent neuron** and is not
stored at all.  Each row of the spike matrix then becomes a fiber: a
``K``-bit bitmask marking the non-silent neurons, a pointer, and the packed
``T``-bit words of the non-silent neurons in coordinate order.

The compression efficiency therefore scales with the *silent-neuron* density
rather than with the per-timestep spike sparsity, and memory accesses along
the temporal dimension are contiguous -- exactly what the fully
temporal-parallel dataflow needs.

The matrix is stored array-backed (one ``(M, K)`` word matrix plus the
non-silent mask): construction, spike accounting and the aggregate storage
footprint are fully vectorised / O(1), and the per-row :class:`Fiber`
objects -- needed only by the fiber-level units such as the inner join --
are materialised lazily on first access.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .fiber import Fiber
from .matrix import silent_neuron_mask

__all__ = [
    "pack_spike_words",
    "unpack_spike_words",
    "popcount",
    "PackedSpikeMatrix",
]

_POPCOUNT_TABLE = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)


def popcount(words: np.ndarray) -> np.ndarray:
    """Per-element population count of a non-negative integer array."""
    words = np.asarray(words)
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(words)
    # Fallback for numpy < 2.0: table lookup over the byte view.
    flat = np.ascontiguousarray(words, dtype=np.uint64)
    return _POPCOUNT_TABLE[flat.view(np.uint8)].reshape(flat.shape + (8,)).sum(axis=-1)


def pack_spike_words(spikes: np.ndarray) -> np.ndarray:
    """Pack an ``... x T`` unary spike array into integer words.

    Bit ``t`` (LSB = timestep 0) of the output word is the spike at timestep
    ``t``.  The output has the input shape without the trailing ``T`` axis.
    Packing runs through ``np.packbits`` (one C pass, no ``T``-times-larger
    temporary); for ``T <= 8`` the packed byte itself is the word (uint8),
    larger ``T`` assembles an int64 word byte by byte.
    """
    spikes = np.asarray(spikes)
    t = spikes.shape[-1]
    if t > 63:
        raise ValueError("packing supports at most 63 timesteps")
    if t == 0:
        return np.zeros(spikes.shape[:-1], dtype=np.int64)
    if spikes.dtype != np.uint8 and spikes.dtype != np.bool_:
        spikes = spikes != 0
    packed_bytes = np.packbits(spikes, axis=-1, bitorder="little")
    if t <= 8:
        return packed_bytes[..., 0]
    words = packed_bytes[..., 0].astype(np.int64)
    for i in range(1, packed_bytes.shape[-1]):
        words |= packed_bytes[..., i].astype(np.int64) << (8 * i)
    return words


def unpack_spike_words(words: np.ndarray, timesteps: int) -> np.ndarray:
    """Inverse of :func:`pack_spike_words`; returns an ``... x T`` uint8 array."""
    words = np.asarray(words, dtype=np.int64)
    shifts = np.arange(timesteps, dtype=np.int64)
    return ((words[..., None] >> shifts) & 1).astype(np.uint8)


@dataclass
class PackedSpikeMatrix:
    """The LoAS compressed representation of a spike tensor ``A``.

    Parameters
    ----------
    words:
        ``(M, K)`` integer matrix of packed ``T``-bit spike words (zero for
        silent neurons, which are not stored; uint8 for ``T <= 8``, int64
        otherwise).
    nonsilent:
        Boolean ``(M, K)`` mask of non-silent neurons (the fiber bitmasks).
    shape:
        Original dense shape ``(M, K, T)``.
    """

    words: np.ndarray
    nonsilent: np.ndarray
    shape: tuple[int, int, int]
    _fibers: list[Fiber] | None = field(default=None, init=False, repr=False, compare=False)
    _nnz: int | None = field(default=None, init=False, repr=False, compare=False)

    @classmethod
    def from_dense(cls, spikes: np.ndarray) -> "PackedSpikeMatrix":
        """Compress an ``M x K x T`` unary spike tensor (fully vectorised)."""
        spikes = np.asarray(spikes)
        if spikes.ndim != 3:
            raise ValueError("expected an M x K x T spike tensor")
        m, k, t = spikes.shape
        words = pack_spike_words(spikes)
        nonsilent = ~silent_neuron_mask(spikes)
        return cls(words=words, nonsilent=nonsilent, shape=(m, k, t))

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def timesteps(self) -> int:
        """Number of timesteps packed into each stored word."""
        return self.shape[2]

    @property
    def num_rows(self) -> int:
        """Number of rows (``M``) in the spike matrix."""
        return self.shape[0]

    @property
    def num_neurons(self) -> int:
        """Number of pre-synaptic neurons per row (``K``)."""
        return self.shape[1]

    @property
    def nnz(self) -> int:
        """Total number of stored (non-silent) neurons (computed once)."""
        if self._nnz is None:
            self._nnz = int(self.nonsilent.sum())
        return self._nnz

    @property
    def silent_fraction(self) -> float:
        """Fraction of neurons that are silent and therefore not stored."""
        total = self.num_rows * self.num_neurons
        if total == 0:
            return 0.0
        return 1.0 - self.nnz / total

    @property
    def fibers(self) -> list[Fiber]:
        """One fiber per row, materialised lazily from the backing arrays."""
        if self._fibers is None:
            counts = self.nonsilent.sum(axis=1)
            pointers = np.zeros(self.num_rows, dtype=np.int64)
            if self.num_rows:
                pointers[1:] = np.cumsum(counts)[:-1]
            payload = self.words[self.nonsilent]  # row-major = coordinate order
            self._fibers = [
                Fiber(
                    bitmask=self.nonsilent[i],
                    values=payload[pointers[i] : pointers[i] + counts[i]],
                    pointer=int(pointers[i]),
                    value_bits=self.timesteps,
                )
                for i in range(self.num_rows)
            ]
        return self._fibers

    def fiber(self, row: int) -> Fiber:
        """Return the compressed fiber for row ``row``."""
        return self.fibers[row]

    # ------------------------------------------------------------------ #
    # Storage accounting (O(1) aggregates)
    # ------------------------------------------------------------------ #
    def payload_bits(self) -> int:
        """Bits spent on packed spike words (one ``T``-bit word per stored neuron)."""
        return self.nnz * self.timesteps

    def bitmask_bits(self) -> int:
        """Bits spent on the non-silent bitmasks (one bit per neuron)."""
        return self.num_rows * self.num_neurons

    def storage_bits(self, pointer_width: int = 32) -> int:
        """Total compressed footprint in bits."""
        return self.bitmask_bits() + self.payload_bits() + self.num_rows * pointer_width

    def storage_bytes(self, pointer_width: int = 32) -> float:
        """Total compressed footprint in bytes."""
        return self.storage_bits(pointer_width) / 8.0

    def dense_bits(self) -> int:
        """Footprint of the uncompressed unary spike tensor in bits."""
        m, k, t = self.shape
        return m * k * t

    def compression_efficiency(self) -> float:
        """Spike bits captured per stored payload bit.

        This is the metric of the worked example around Figure 8: the number
        of original single-bit spikes (ones) represented, divided by the bits
        spent storing them.  Coordinate-per-spike formats such as CSR pay
        several coordinate bits per spike (25 % in the paper's example),
        whereas the packed format amortises one ``T``-bit word over all the
        spikes of a non-silent neuron.
        """
        payload = self.payload_bits()
        if payload == 0:
            return float("inf")
        return self.captured_spikes() / payload

    def captured_spikes(self) -> int:
        """Number of original single-bit spikes (value 1) captured.

        One vectorised popcount over the word matrix (silent words are zero
        and contribute nothing) instead of a Python-level ``bin(...).count``
        per stored word.
        """
        if self.words.size == 0:
            return 0
        return int(popcount(self.words).sum(dtype=np.int64))

    # ------------------------------------------------------------------ #
    # Reconstruction
    # ------------------------------------------------------------------ #
    def to_dense(self) -> np.ndarray:
        """Reconstruct the dense ``M x K x T`` unary spike tensor."""
        return unpack_spike_words(self.words, self.timesteps)

    def nonsilent_matrix(self) -> np.ndarray:
        """Boolean ``M x K`` matrix of non-silent neurons (the fiber bitmasks)."""
        return self.nonsilent
