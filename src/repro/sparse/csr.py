"""CSR / CSC formats with explicit coordinate bit accounting.

GoSPA and other ANN spMspM accelerators store sparse operands in compressed
sparse row (CSR) or column (CSC) form, paying ``log2(dim)`` coordinate bits
per non-zero.  Section IV-A of the LoAS paper argues this is wasteful for
single-bit spikes; this module implements the format so the benchmark harness
can quantify exactly that overhead and so GoSPA-SNN's traffic can be modelled
faithfully.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["CSRMatrix", "CSCMatrix", "csr_storage_bits_for_spikes"]


def _coordinate_bits(dimension: int) -> int:
    """Bits needed to address one coordinate along ``dimension``."""
    if dimension <= 1:
        return 1
    return int(math.ceil(math.log2(dimension)))


@dataclass
class CSRMatrix:
    """Compressed sparse row representation of a 2-D matrix.

    Attributes
    ----------
    data:
        Non-zero values in row-major order.
    indices:
        Column coordinate of each non-zero.
    indptr:
        Row pointer array of length ``rows + 1``.
    shape:
        Dense shape ``(rows, cols)``.
    value_bits:
        Bit width of one stored value (1 for unary spikes, 8 for weights).
    """

    data: np.ndarray
    indices: np.ndarray
    indptr: np.ndarray
    shape: tuple[int, int]
    value_bits: int = 8

    @classmethod
    def from_dense(cls, matrix: np.ndarray, value_bits: int = 8) -> "CSRMatrix":
        """Build a CSR representation from a dense 2-D matrix."""
        matrix = np.asarray(matrix)
        if matrix.ndim != 2:
            raise ValueError("expected a 2-D matrix")
        rows, _ = matrix.shape
        data: list = []
        indices: list[int] = []
        indptr = [0]
        for r in range(rows):
            nz = np.flatnonzero(matrix[r])
            indices.extend(nz.tolist())
            data.extend(matrix[r, nz].tolist())
            indptr.append(len(indices))
        return cls(
            data=np.asarray(data, dtype=matrix.dtype),
            indices=np.asarray(indices, dtype=np.int64),
            indptr=np.asarray(indptr, dtype=np.int64),
            shape=matrix.shape,
            value_bits=value_bits,
        )

    @property
    def nnz(self) -> int:
        """Number of stored non-zero values."""
        return int(self.data.shape[0])

    def row(self, r: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(coordinates, values)`` of row ``r``."""
        start, stop = self.indptr[r], self.indptr[r + 1]
        return self.indices[start:stop], self.data[start:stop]

    def coordinate_bits(self) -> int:
        """Bits per stored coordinate."""
        return _coordinate_bits(self.shape[1])

    def storage_bits(self, pointer_width: int = 32) -> int:
        """Total footprint: values + coordinates + row pointers."""
        return (
            self.nnz * self.value_bits
            + self.nnz * self.coordinate_bits()
            + len(self.indptr) * pointer_width
        )

    def storage_bytes(self, pointer_width: int = 32) -> float:
        """Total footprint in bytes."""
        return self.storage_bits(pointer_width) / 8.0

    def to_dense(self) -> np.ndarray:
        """Reconstruct the dense matrix."""
        dense = np.zeros(self.shape, dtype=self.data.dtype if self.nnz else np.int64)
        for r in range(self.shape[0]):
            cols, vals = self.row(r)
            dense[r, cols] = vals
        return dense


@dataclass
class CSCMatrix:
    """Compressed sparse column representation of a 2-D matrix."""

    data: np.ndarray
    indices: np.ndarray
    indptr: np.ndarray
    shape: tuple[int, int]
    value_bits: int = 8

    @classmethod
    def from_dense(cls, matrix: np.ndarray, value_bits: int = 8) -> "CSCMatrix":
        """Build a CSC representation from a dense 2-D matrix."""
        matrix = np.asarray(matrix)
        csr = CSRMatrix.from_dense(matrix.T, value_bits=value_bits)
        return cls(
            data=csr.data,
            indices=csr.indices,
            indptr=csr.indptr,
            shape=matrix.shape,
            value_bits=value_bits,
        )

    @property
    def nnz(self) -> int:
        """Number of stored non-zero values."""
        return int(self.data.shape[0])

    def column(self, c: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(row coordinates, values)`` of column ``c``."""
        start, stop = self.indptr[c], self.indptr[c + 1]
        return self.indices[start:stop], self.data[start:stop]

    def coordinate_bits(self) -> int:
        """Bits per stored coordinate."""
        return _coordinate_bits(self.shape[0])

    def storage_bits(self, pointer_width: int = 32) -> int:
        """Total footprint: values + coordinates + column pointers."""
        return (
            self.nnz * self.value_bits
            + self.nnz * self.coordinate_bits()
            + len(self.indptr) * pointer_width
        )

    def storage_bytes(self, pointer_width: int = 32) -> float:
        """Total footprint in bytes."""
        return self.storage_bits(pointer_width) / 8.0

    def to_dense(self) -> np.ndarray:
        """Reconstruct the dense matrix."""
        dense = np.zeros(self.shape, dtype=self.data.dtype if self.nnz else np.int64)
        for c in range(self.shape[1]):
            rows, vals = self.column(c)
            dense[rows, c] = vals
        return dense


def csr_storage_bits_for_spikes(spikes: np.ndarray, pointer_width: int = 32) -> int:
    """CSR footprint of an ``M x K x T`` spike tensor, one CSR per timestep.

    This is the baseline the packed format is compared against in
    Section IV-A: each timestep's spike matrix is stored independently with
    per-spike coordinates (value bits are 1 because the spike itself is
    unary).
    """
    spikes = np.asarray(spikes)
    if spikes.ndim != 3:
        raise ValueError("expected an M x K x T spike tensor")
    total = 0
    for t in range(spikes.shape[2]):
        total += CSRMatrix.from_dense(spikes[:, :, t], value_bits=1).storage_bits(pointer_width)
    return total
