"""Bitmask (SparTen-style) compression for sparse weight matrices.

SparTen [Gondimalla et al., MICRO'19] and LoAS both compress the weight
matrix ``B`` column-wise with a *bitmask* format: a bit string with one bit
per coordinate marking the non-zero positions, followed by the densely packed
non-zero values.  This module implements that format for whole matrices,
producing one :class:`~repro.sparse.fiber.Fiber` per row or column.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .fiber import Fiber

__all__ = ["BitmaskMatrix", "compress_rows", "compress_columns"]


def compress_rows(matrix: np.ndarray, value_bits: int = 8) -> list[Fiber]:
    """Compress each row of a 2-D matrix into a bitmask fiber."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError("expected a 2-D matrix")
    fibers = []
    offset = 0
    for row in matrix:
        bitmask = row != 0
        values = row[bitmask]
        fibers.append(Fiber(bitmask=bitmask, values=values, pointer=offset, value_bits=value_bits))
        offset += int(bitmask.sum())
    return fibers


def compress_columns(matrix: np.ndarray, value_bits: int = 8) -> list[Fiber]:
    """Compress each column of a 2-D matrix into a bitmask fiber."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError("expected a 2-D matrix")
    return compress_rows(matrix.T, value_bits=value_bits)


@dataclass
class BitmaskMatrix:
    """A 2-D matrix compressed fiber-by-fiber with the bitmask format.

    Parameters
    ----------
    fibers:
        One fiber per row (``axis == "row"``) or per column
        (``axis == "column"``).
    shape:
        Original dense shape ``(rows, cols)``.
    axis:
        Compression direction, ``"row"`` or ``"column"``.
    value_bits:
        Bit width of one stored payload value.
    """

    fibers: list[Fiber]
    shape: tuple[int, int]
    axis: str = "row"
    value_bits: int = 8

    @classmethod
    def from_dense(
        cls, matrix: np.ndarray, axis: str = "row", value_bits: int = 8
    ) -> "BitmaskMatrix":
        """Compress a dense matrix along the requested axis."""
        matrix = np.asarray(matrix)
        if axis == "row":
            fibers = compress_rows(matrix, value_bits=value_bits)
        elif axis == "column":
            fibers = compress_columns(matrix, value_bits=value_bits)
        else:
            raise ValueError("axis must be 'row' or 'column'")
        return cls(fibers=fibers, shape=matrix.shape, axis=axis, value_bits=value_bits)

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def nnz(self) -> int:
        """Total number of stored non-zero values."""
        return sum(f.nnz for f in self.fibers)

    @property
    def num_fibers(self) -> int:
        """Number of compressed fibers (rows or columns)."""
        return len(self.fibers)

    def fiber(self, index: int) -> Fiber:
        """Return the fiber for row/column ``index``."""
        return self.fibers[index]

    # ------------------------------------------------------------------ #
    # Storage accounting
    # ------------------------------------------------------------------ #
    def bitmask_bits(self) -> int:
        """Total bits spent on bitmasks."""
        return sum(f.bitmask_bits() for f in self.fibers)

    def payload_bits(self) -> int:
        """Total bits spent on payload values."""
        return sum(f.payload_bits() for f in self.fibers)

    def storage_bits(self, pointer_width: int = 32) -> int:
        """Total compressed footprint in bits (bitmasks + pointers + payload)."""
        return sum(f.storage_bits(pointer_width) for f in self.fibers)

    def storage_bytes(self, pointer_width: int = 32) -> float:
        """Total compressed footprint in bytes."""
        return self.storage_bits(pointer_width) / 8.0

    def dense_bits(self) -> int:
        """Footprint of the uncompressed matrix in bits."""
        rows, cols = self.shape
        return rows * cols * self.value_bits

    def compression_ratio(self, pointer_width: int = 32) -> float:
        """Dense bits divided by compressed bits (higher is better)."""
        compressed = self.storage_bits(pointer_width)
        if compressed == 0:
            return float("inf")
        return self.dense_bits() / compressed

    # ------------------------------------------------------------------ #
    # Reconstruction
    # ------------------------------------------------------------------ #
    def to_dense(self) -> np.ndarray:
        """Reconstruct the dense matrix."""
        dtype = self.fibers[0].values.dtype if self.fibers and self.fibers[0].values.size else np.int64
        rows, cols = self.shape
        if self.axis == "row":
            dense = np.zeros((rows, cols), dtype=dtype)
            for i, f in enumerate(self.fibers):
                dense[i, :] = f.decompress()
        else:
            dense = np.zeros((rows, cols), dtype=dtype)
            for j, f in enumerate(self.fibers):
                dense[:, j] = f.decompress()
        return dense
