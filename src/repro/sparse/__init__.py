"""Sparse compression substrate used by LoAS and the baseline accelerators.

The subpackage provides the three families of formats that appear in the
paper:

* :mod:`repro.sparse.bitmask` -- SparTen-style bitmask fibers (weights),
* :mod:`repro.sparse.packed` -- the FTP-friendly packed-temporal spike format,
* :mod:`repro.sparse.csr` -- CSR / CSC with explicit coordinate bit costs,

plus the :class:`~repro.sparse.fiber.Fiber` abstraction they share and random
generators for dual-sparse workload tensors.
"""

from .bitmask import BitmaskMatrix, compress_columns, compress_rows
from .csr import CSCMatrix, CSRMatrix, csr_storage_bits_for_spikes
from .fiber import Fiber
from .matrix import (
    density,
    mask_low_activity_neurons,
    random_spike_tensor,
    random_weight_matrix,
    silent_neuron_fraction,
    silent_neuron_mask,
    sparsity,
    spike_sparsity_per_timestep,
)
from .packed import PackedSpikeMatrix, pack_spike_words, unpack_spike_words

__all__ = [
    "BitmaskMatrix",
    "CSCMatrix",
    "CSRMatrix",
    "Fiber",
    "PackedSpikeMatrix",
    "compress_columns",
    "compress_rows",
    "csr_storage_bits_for_spikes",
    "density",
    "mask_low_activity_neurons",
    "pack_spike_words",
    "random_spike_tensor",
    "random_weight_matrix",
    "silent_neuron_fraction",
    "silent_neuron_mask",
    "sparsity",
    "spike_sparsity_per_timestep",
    "unpack_spike_words",
]
