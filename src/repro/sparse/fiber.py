"""Fiber abstraction shared by all compressed sparse formats in LoAS.

A *fiber* is the unit of compressed storage used throughout the paper: one
row (of the spike matrix ``A``) or one column (of the weight matrix ``B``)
compressed into

* a **bitmask** with one bit per coordinate along the fiber (1 = a non-zero /
  non-silent element is stored, 0 = nothing stored), and
* a dense array of the **payload values** for the positions whose bitmask bit
  is set, stored in coordinate order, plus
* a **pointer** locating the payload in the backing store (modelled here as a
  plain integer offset).

The same abstraction backs both the FTP-friendly packed-spike format
(Section IV-A of the paper) and the SparTen-style bitmask weight format.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Fiber"]


@dataclass
class Fiber:
    """One compressed row or column.

    Parameters
    ----------
    bitmask:
        Boolean array of length equal to the uncompressed fiber length.
        ``bitmask[i]`` is ``True`` when a payload value is stored for
        coordinate ``i``.
    values:
        Payload values for the set bitmask positions, in coordinate order.
        The dtype is caller-defined: packed spike words for matrix ``A``
        fibers, integer weights for matrix ``B`` fibers.
    pointer:
        Offset of ``values`` in the backing store.  Purely informational for
        the simulator; ``0`` when the fiber is self-contained.
    value_bits:
        Number of bits used to store one payload value (e.g. ``T`` for packed
        spikes, ``8`` for weights).  Used by the traffic model to convert a
        fiber into bytes.
    """

    bitmask: np.ndarray
    values: np.ndarray
    pointer: int = 0
    value_bits: int = 8

    def __post_init__(self) -> None:
        self.bitmask = np.asarray(self.bitmask, dtype=bool)
        self.values = np.asarray(self.values)
        if self.values.shape[0] != int(self.bitmask.sum()):
            raise ValueError(
                "number of payload values (%d) does not match the number of "
                "set bitmask bits (%d)" % (self.values.shape[0], int(self.bitmask.sum()))
            )

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def length(self) -> int:
        """Uncompressed length of the fiber (number of coordinates)."""
        return int(self.bitmask.shape[0])

    @property
    def nnz(self) -> int:
        """Number of stored (non-zero / non-silent) elements."""
        return int(self.bitmask.sum())

    @property
    def density(self) -> float:
        """Fraction of coordinates that carry a stored element."""
        if self.length == 0:
            return 0.0
        return self.nnz / self.length

    @property
    def coordinates(self) -> np.ndarray:
        """Integer coordinates of the stored elements, ascending."""
        return np.flatnonzero(self.bitmask)

    # ------------------------------------------------------------------ #
    # Storage accounting
    # ------------------------------------------------------------------ #
    def bitmask_bits(self) -> int:
        """Bits used by the bitmask portion of the fiber."""
        return self.length

    def payload_bits(self) -> int:
        """Bits used by the payload values."""
        return self.nnz * self.value_bits

    def pointer_bits(self, pointer_width: int = 32) -> int:
        """Bits used by the pointer following the bitmask."""
        return pointer_width

    def storage_bits(self, pointer_width: int = 32) -> int:
        """Total storage footprint of the fiber in bits."""
        return self.bitmask_bits() + self.payload_bits() + self.pointer_bits(pointer_width)

    def storage_bytes(self, pointer_width: int = 32) -> float:
        """Total storage footprint of the fiber in bytes."""
        return self.storage_bits(pointer_width) / 8.0

    # ------------------------------------------------------------------ #
    # Reconstruction
    # ------------------------------------------------------------------ #
    def decompress(self, fill_value=0) -> np.ndarray:
        """Expand the fiber back to its dense representation."""
        dense = np.full(self.length, fill_value, dtype=self.values.dtype)
        dense[self.bitmask] = self.values
        return dense

    def value_at(self, coordinate: int):
        """Return the stored value at ``coordinate`` or ``None`` if absent."""
        if not self.bitmask[coordinate]:
            return None
        position = int(self.bitmask[:coordinate].sum())
        return self.values[position]

    def __len__(self) -> int:
        return self.length

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Fiber):
            return NotImplemented
        return (
            bool(np.array_equal(self.bitmask, other.bitmask))
            and bool(np.array_equal(self.values, other.values))
            and self.value_bits == other.value_bits
        )
