"""Module entry point: ``python -m repro`` dispatches to :mod:`repro.api.cli`."""

import sys

from .api.cli import main

if __name__ == "__main__":
    sys.exit(main())
