"""Loop-nest abstraction for spMspM dataflows with a temporal dimension.

Section II-C / III of the paper reasons about dataflows as permutations of
the four loops ``m``, ``n``, ``k`` and ``t`` and about which of them are
spatially unrolled.  This module provides a small analytical framework for
that reasoning:

* :class:`LoopNest` describes an ordering of the four loops (outermost
  first), their bounds and the set of spatially unrolled loops;
* :meth:`LoopNest.operand_accesses` computes how many times each operand
  (``A[m, k, t]``, ``B[k, n]``, partial sums of ``C[m, n, t]``) is touched,
  using the classic reuse rule: an operand is re-fetched once per iteration
  of every temporal loop at or outside its innermost indexing loop;
* refetch factors relative to the operand's unique footprint, which directly
  express the paper's observations (e.g. "placing ``t`` anywhere other than
  the innermost loop costs at least ``T`` times more fetches of the
  dimensions below").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import permutations

__all__ = ["LoopNest", "OPERAND_INDICES", "all_orders", "dataflow_base_order"]


#: Index dimensions of each operand of the SNN spMspM.
OPERAND_INDICES: dict[str, frozenset[str]] = {
    "A": frozenset({"m", "k", "t"}),
    "B": frozenset({"k", "n"}),
    "C": frozenset({"m", "n", "t"}),
}

_VALID_DIMS = ("m", "n", "k", "t")

#: Canonical loop order (without ``t``) of the three ANN spMspM dataflows.
_DATAFLOW_BASE_ORDERS = {
    "IP": ("m", "n", "k"),
    "OP": ("k", "m", "n"),
    "Gust": ("m", "k", "n"),
}


def dataflow_base_order(dataflow: str) -> tuple[str, str, str]:
    """Canonical ``(m, n, k)`` ordering of a named ANN dataflow.

    ``"IP"`` is inner-product, ``"OP"`` outer-product and ``"Gust"``
    Gustavson's row-wise product.
    """
    try:
        return _DATAFLOW_BASE_ORDERS[dataflow]
    except KeyError as exc:
        raise KeyError(
            "unknown dataflow %r (expected one of %s)" % (dataflow, sorted(_DATAFLOW_BASE_ORDERS))
        ) from exc


def all_orders(include_t: bool = True) -> list[tuple[str, ...]]:
    """Every permutation of the loop dimensions (with or without ``t``)."""
    dims = _VALID_DIMS if include_t else tuple(d for d in _VALID_DIMS if d != "t")
    return list(permutations(dims))


@dataclass(frozen=True)
class LoopNest:
    """A concrete loop nest: ordering, bounds and spatial unrolling.

    Attributes
    ----------
    order:
        Loop dimensions from outermost to innermost; must be a permutation
        of ``("m", "n", "k", "t")``.
    bounds:
        Trip count of each dimension.
    spatial:
        Dimensions that are spatially unrolled (run on parallel hardware
        instances instead of sequential iterations).  A spatially unrolled
        loop neither multiplies latency nor breaks register-level reuse of
        operands indexed by it.
    """

    order: tuple[str, ...]
    bounds: dict[str, int] = field(default_factory=dict)
    spatial: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        if sorted(self.order) != sorted(_VALID_DIMS):
            raise ValueError("order must be a permutation of %s" % (_VALID_DIMS,))
        missing = [d for d in self.order if d not in self.bounds]
        if missing:
            raise ValueError("missing bounds for dimensions: %s" % missing)
        unknown = set(self.spatial) - set(_VALID_DIMS)
        if unknown:
            raise ValueError("unknown spatial dimensions: %s" % sorted(unknown))

    # ------------------------------------------------------------------ #
    # Structure queries
    # ------------------------------------------------------------------ #
    def depth(self, dim: str) -> int:
        """Nesting depth of ``dim`` (0 = outermost)."""
        return self.order.index(dim)

    def temporal_order(self) -> tuple[str, ...]:
        """The loop order with spatially unrolled dimensions removed."""
        return tuple(d for d in self.order if d not in self.spatial)

    def t_position(self) -> int:
        """Depth of the ``t`` loop in the full order."""
        return self.depth("t")

    def is_t_innermost(self) -> bool:
        """Whether the temporal loop sits at the innermost position."""
        return self.order[-1] == "t"

    # ------------------------------------------------------------------ #
    # Analytical access model
    # ------------------------------------------------------------------ #
    def iteration_space(self) -> int:
        """Total number of scalar iterations (product of all bounds)."""
        total = 1
        for dim in self.order:
            total *= self.bounds[dim]
        return total

    def operand_footprint(self, operand: str) -> int:
        """Number of unique elements of ``operand`` touched by the nest."""
        dims = OPERAND_INDICES[operand]
        total = 1
        for dim in dims:
            total *= self.bounds[dim]
        return total

    def operand_accesses(self, operand: str) -> int:
        """Number of (buffer) accesses made to ``operand`` by the nest.

        The classic loop-nest reuse rule: the operand enjoys register-level
        reuse only across temporal loops strictly *inside* its innermost
        indexing loop; every iteration of the loops at or outside that level
        re-touches it.  Spatially unrolled loops are excluded from the
        temporal order (parallel hardware instances each hold their own
        copy / register), matching the ``parallel-for t`` of Algorithm 1.
        """
        dims = OPERAND_INDICES[operand]
        temporal = self.temporal_order()
        indexing_depths = [i for i, d in enumerate(temporal) if d in dims]
        if not indexing_depths:
            # Fully reused in a register across the whole nest.
            return 1
        innermost = max(indexing_depths)
        accesses = 1
        for dim in temporal[: innermost + 1]:
            accesses *= self.bounds[dim]
        # Spatial dimensions that index the operand still enlarge the number
        # of distinct elements touched (each parallel instance reads its own
        # element), so they multiply accesses as well.
        for dim in self.spatial:
            if dim in dims:
                accesses *= self.bounds[dim]
        return accesses

    def refetch_factor(self, operand: str) -> float:
        """Accesses divided by the operand's unique footprint (>= 1)."""
        footprint = self.operand_footprint(operand)
        if footprint == 0:
            return 0.0
        return self.operand_accesses(operand) / footprint

    def partial_sum_writes(self) -> int:
        """Number of partial-sum values produced before final reduction.

        A partial sum for ``C[m, n, t]`` must be materialised whenever the
        reduction loop ``k`` is *not* the innermost temporal loop below the
        output's indexing loops, i.e. whenever iterating other dimensions
        between visits to the same output element.  The count equals the
        accesses to ``C`` under the same reuse rule.
        """
        return self.operand_accesses("C")

    def latency_iterations(self) -> int:
        """Sequential iteration count (spatial loops do not add latency)."""
        total = 1
        for dim in self.temporal_order():
            total *= self.bounds[dim]
        return total
