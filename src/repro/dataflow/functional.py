"""Functional executions of the three spMspM dataflows (plus timesteps).

Every dataflow computes the same mathematical result (Equation 1); what
differs is the iteration order and therefore the reuse / partial-sum
behaviour.  These implementations follow the loop structures of Figure 3
explicitly -- outer loops in Python, the innermost reduction in NumPy -- so
the tests can confirm that all orderings agree with the dense reference and
so operation counts can be traced if needed.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "inner_product_spmspm",
    "outer_product_spmspm",
    "gustavson_spmspm",
]


def _validate(spikes: np.ndarray, weights: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    spikes = np.asarray(spikes)
    weights = np.asarray(weights)
    if spikes.ndim != 3 or weights.ndim != 2:
        raise ValueError("expected spikes (M, K, T) and weights (K, N)")
    if spikes.shape[1] != weights.shape[0]:
        raise ValueError("contraction dimension mismatch")
    return spikes, weights


def inner_product_spmspm(spikes: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Inner-product dataflow: ``for m, for n, for k`` (t innermost).

    Each output element is completed (all ``k`` reduced) before moving on,
    which is the ordering LoAS's FTP dataflow builds on.
    """
    spikes, weights = _validate(spikes, weights)
    m_dim, k_dim, t_dim = spikes.shape
    n_dim = weights.shape[1]
    output = np.zeros((m_dim, n_dim, t_dim), dtype=np.int64)
    for m in range(m_dim):
        row = spikes[m]  # K x T
        for n in range(n_dim):
            column = weights[:, n]  # K
            nonzero = np.flatnonzero(column)
            if nonzero.size == 0:
                continue
            # Reduction over k, all timesteps at once (parallel-for t).
            output[m, n, :] = row[nonzero].T.astype(np.int64) @ column[nonzero].astype(np.int64)
    return output


def outer_product_spmspm(spikes: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Outer-product dataflow: ``for k, for m, for n``.

    Each ``k`` produces a rank-1 partial-sum matrix per timestep that is
    merged into the output; this is the ordering GoSPA uses.
    """
    spikes, weights = _validate(spikes, weights)
    m_dim, k_dim, t_dim = spikes.shape
    n_dim = weights.shape[1]
    output = np.zeros((m_dim, n_dim, t_dim), dtype=np.int64)
    for k in range(k_dim):
        column_a = spikes[:, k, :]  # M x T
        row_b = weights[k, :]  # N
        if not column_a.any() or not row_b.any():
            continue
        # Rank-1 update for every timestep in parallel.
        output += column_a[:, None, :].astype(np.int64) * row_b[None, :, None].astype(np.int64)
    return output


def gustavson_spmspm(spikes: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Gustavson's (row-wise product) dataflow: ``for m, for k, for n``.

    Each non-zero of row ``m`` of ``A`` scales row ``k`` of ``B`` and merges
    it into output row ``m``; this is the ordering Gamma uses.
    """
    spikes, weights = _validate(spikes, weights)
    m_dim, k_dim, t_dim = spikes.shape
    n_dim = weights.shape[1]
    output = np.zeros((m_dim, n_dim, t_dim), dtype=np.int64)
    for m in range(m_dim):
        for k in range(k_dim):
            spike_word = spikes[m, k, :]
            if not spike_word.any():
                continue
            row_b = weights[k, :]
            if not row_b.any():
                continue
            output[m] += row_b[:, None].astype(np.int64) * spike_word[None, :].astype(np.int64)
    return output
