"""spMspM dataflow modelling: loop nests, functional orderings and t-placement.

The three classic dual-sparse dataflows (inner product, outer product,
Gustavson) are provided both as functional executions (all produce the same
result) and as analytical loop nests whose access counts express the paper's
Section III observations about where the temporal dimension can be placed.
"""

from .functional import gustavson_spmspm, inner_product_spmspm, outer_product_spmspm
from .loopnest import LoopNest, OPERAND_INDICES, all_orders, dataflow_base_order
from .temporal import (
    TemporalPlacement,
    best_placement,
    enumerate_t_placements,
    ftp_loopnest,
)

__all__ = [
    "LoopNest",
    "OPERAND_INDICES",
    "TemporalPlacement",
    "all_orders",
    "best_placement",
    "dataflow_base_order",
    "enumerate_t_placements",
    "ftp_loopnest",
    "gustavson_spmspm",
    "inner_product_spmspm",
    "outer_product_spmspm",
]
