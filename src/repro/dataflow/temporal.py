"""Analysis of temporal-dimension placement in SNN spMspM dataflows.

Section III of the paper derives three observations about where the ``t``
loop can go:

1. unless ``t`` sits at the innermost position, the dimensions below it are
   re-fetched at least ``T`` more times than in the original ANN dataflow;
2. the outer-product and Gustavson dataflows always generate ``T`` times more
   partial sums (or ``T`` times more re-accesses), whichever position ``t``
   takes;
3. processing ``t`` sequentially always multiplies latency by ``T``, which
   only spatial unrolling (``parallel-for t``) removes.

This module makes those observations computable: it enumerates the possible
placements for each base dataflow and reports refetch factors, partial-sum
counts and sequential latency for each, so both the test suite and the
DESIGN.md narrative can be backed by numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from .loopnest import LoopNest, dataflow_base_order

__all__ = ["TemporalPlacement", "enumerate_t_placements", "ftp_loopnest", "best_placement"]


@dataclass(frozen=True)
class TemporalPlacement:
    """Analysis result of one (dataflow, t-position, unrolling) choice.

    Attributes
    ----------
    dataflow:
        Base ANN dataflow (``"IP"``, ``"OP"`` or ``"Gust"``).
    order:
        Full loop order including ``t`` (outermost first).
    t_spatial:
        Whether the ``t`` loop is spatially unrolled.
    a_accesses / b_accesses:
        Buffer accesses to the spike and weight operands.
    a_refetch / b_refetch:
        Accesses divided by the operand footprint.
    partial_sums:
        Partial-sum values materialised before final reduction.
    latency_iterations:
        Sequential iteration count (latency proxy).
    """

    dataflow: str
    order: tuple[str, ...]
    t_spatial: bool
    a_accesses: int
    b_accesses: int
    a_refetch: float
    b_refetch: float
    partial_sums: int
    latency_iterations: int


def _analyze(dataflow: str, order: tuple[str, ...], bounds: dict[str, int], t_spatial: bool) -> TemporalPlacement:
    nest = LoopNest(order=order, bounds=bounds, spatial=frozenset({"t"}) if t_spatial else frozenset())
    return TemporalPlacement(
        dataflow=dataflow,
        order=order,
        t_spatial=t_spatial,
        a_accesses=nest.operand_accesses("A"),
        b_accesses=nest.operand_accesses("B"),
        a_refetch=nest.refetch_factor("A"),
        b_refetch=nest.refetch_factor("B"),
        partial_sums=nest.partial_sum_writes(),
        latency_iterations=nest.latency_iterations(),
    )


def enumerate_t_placements(
    dataflow: str,
    bounds: dict[str, int],
    include_spatial: bool = True,
) -> list[TemporalPlacement]:
    """All placements of the ``t`` loop within one base dataflow.

    For each of the four insertion positions of ``t`` into the base order, a
    sequential variant is produced; when ``include_spatial`` is set and ``t``
    is innermost, the spatially unrolled (FTP-style) variant is appended as
    well.
    """
    base = dataflow_base_order(dataflow)
    placements: list[TemporalPlacement] = []
    for position in range(len(base) + 1):
        order = tuple(base[:position]) + ("t",) + tuple(base[position:])
        placements.append(_analyze(dataflow, order, bounds, t_spatial=False))
        if include_spatial and position == len(base):
            placements.append(_analyze(dataflow, order, bounds, t_spatial=True))
    return placements


def ftp_loopnest(bounds: dict[str, int]) -> LoopNest:
    """The FTP loop nest of Algorithm 1: IP order with ``t`` innermost, unrolled."""
    return LoopNest(order=("m", "n", "k", "t"), bounds=bounds, spatial=frozenset({"t"}))


def best_placement(bounds: dict[str, int]) -> TemporalPlacement:
    """The placement FTP chooses, analysed with the same machinery.

    Provided for convenience so callers comparing against the enumeration do
    not have to re-derive the FTP configuration.
    """
    return _analyze("IP", ("m", "n", "k", "t"), bounds, t_spatial=True)
