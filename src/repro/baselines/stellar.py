"""Stellar baseline: dense FS-neuron SNN accelerator (fully temporal parallel).

Stellar [Mao et al., HPCA'24] processes all timesteps in parallel with
Few-Spikes (FS) neurons, whose accumulate and fire stages are decoupled, and
uses a spatiotemporal row-stationary dataflow with spike skipping: zero
spikes do not occupy compute cycles.  It does not support weight sparsity,
so every weight is fetched and streamed densely.  In Figure 19 Stellar beats
PTB clearly but LoAS retains a ~7x speedup and ~2.5x energy advantage on the
dual-sparse workload thanks to weight sparsity and compressed spike fetch.
"""

from __future__ import annotations

import numpy as np

from ..arch.systolic import SystolicArray
from ..core.base import SimulatorBase
from ..engine import LayerEvaluation
from ..metrics.results import SimulationResult

__all__ = ["StellarSimulator"]


class StellarSimulator(SimulatorBase):
    """Analytical model of Stellar running a (weight-dense) SNN workload."""

    name = "Stellar"

    def __init__(self, config=None, array: SystolicArray | None = None):
        super().__init__(config)
        baseline = self.arch.baseline
        self.array = array or SystolicArray(
            rows=baseline.systolic_rows, cols=baseline.systolic_cols
        )

    def simulate_layer(
        self,
        spikes: np.ndarray,
        weights: np.ndarray,
        name: str = "layer",
        evaluation: LayerEvaluation | None = None,
        **kwargs,
    ) -> SimulationResult:
        """Simulate one SNN layer on Stellar (spike skipping, dense weights)."""
        if evaluation is None:
            evaluation = LayerEvaluation(spikes, weights)
        cfg = self.config
        energy_model = cfg.energy
        m, k, t = evaluation.m, evaluation.k, evaluation.t
        n = evaluation.n
        result = SimulationResult(accelerator=self.name, workload=name)

        spike_density = evaluation.spike_density
        # Fully temporal-parallel: all T timesteps of an output are produced
        # in one pass and the decoupled FS accumulate stage skips zero spikes
        # in each temporal lane independently, so the streamed reduction
        # length shrinks to the non-zero spike density.  Weight sparsity is
        # not exploited.
        output_folds = -(-n // self.array.rows)
        compute_cycles = float(
            output_folds * (m * k * spike_density + self.array.rows + self.array.cols)
        )
        peak = compute_cycles * self.array.num_pes
        array_utilization = (float(m) * k * n * t * spike_density) / peak if peak else 0.0

        dense_weight_bytes = k * n * cfg.weight_bits / 8.0
        spike_bytes = m * k * t / 8.0
        output_bytes = m * n * t / 8.0
        result.dram.add("weight", dense_weight_bytes)
        result.dram.add("input", spike_bytes)
        result.dram.add("output", output_bytes)

        row_folds = -(-n // self.array.rows)
        col_folds = -(-m // self.array.cols)
        # Row-stationary reuse: weights re-streamed per output-row fold only,
        # spikes per column fold; FS accumulation keeps psums in registers.
        result.sram.add("weight", dense_weight_bytes * max(1, col_folds // 2))
        result.sram.add("input", spike_bytes * row_folds)
        result.sram.add("output", output_bytes)

        dram_bytes = result.dram.total()
        sram_bytes = result.sram.total()
        result.energy.add("dram", dram_bytes * energy_model.dram_per_byte)
        result.energy.add("sram", sram_bytes * energy_model.sram_per_byte)
        skipped_acs = float(m) * k * n * t * spike_density
        result.energy.add("compute", skipped_acs * energy_model.accumulate)
        result.energy.add("lif", m * n * t * energy_model.lif_update)

        cycles, memory_cycles = self.roofline_cycles(compute_cycles, dram_bytes, sram_bytes)
        result.compute_cycles = compute_cycles
        result.memory_cycles = memory_cycles
        result.cycles = cycles
        result.add_ops("accumulations", skipped_acs)
        result.extra["array_utilization"] = min(1.0, array_utilization)
        return result
