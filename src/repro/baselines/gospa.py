"""GoSPA-SNN baseline (outer-product dataflow).

GoSPA [Deng et al., ISCA'21] is an outer-product spMspM accelerator: each
non-zero activation is joined with the corresponding weight row, producing
rank-1 partial-sum updates that are merged in a small on-chip psum memory.
Running a dual-sparse SNN on it with sequential timesteps multiplies the
partial-sum working set by ``T``: each timestep produces its own psum matrix
(Section II-D, Figure 5), and whatever does not fit in the psum memory must
be spilled to DRAM and read back for the final reduction.

The input spikes are stored per-timestep in CSR, paying multi-bit
coordinates per unary spike -- the compressed-format overhead called out in
Figure 14.
"""

from __future__ import annotations

import numpy as np

from ..core.base import SimulatorBase
from ..engine import LayerEvaluation
from ..metrics.results import SimulationResult
from .common import coordinate_bits, csr_bytes

__all__ = ["GoSPASNN"]


class GoSPASNN(SimulatorBase):
    """GoSPA running a dual-sparse SNN with sequential timesteps."""

    name = "GoSPA-SNN"

    @property
    def psum_buffer_bytes(self) -> int:
        """Bytes of the dedicated on-chip partial-sum memory.  GoSPA provisions
        a small psum scratchpad; with the ``T`` extra psum matrices of an SNN
        it overflows on most layers (Figure 5)."""
        return self.arch.baseline.psum_buffer_bytes

    @property
    def psum_bytes(self) -> int:
        """Bytes per partial-sum element (16-bit accumulators)."""
        return self.arch.baseline.psum_bytes

    @property
    def psum_access_bytes(self) -> float:
        """Bytes moved per psum update (read-modify-write at line granularity
        of the banked psum memory)."""
        return self.arch.baseline.psum_access_bytes

    @property
    def psum_update_throughput(self) -> float:
        """Partial-sum updates the banked psum memory can absorb per cycle."""
        return self.arch.baseline.psum_update_throughput

    def simulate_layer(
        self,
        spikes: np.ndarray,
        weights: np.ndarray,
        name: str = "layer",
        evaluation: LayerEvaluation | None = None,
        **kwargs,
    ) -> SimulationResult:
        """Simulate one dual-sparse SNN layer on GoSPA-SNN."""
        cfg = self.config
        energy_model = cfg.energy
        if evaluation is None:
            evaluation = LayerEvaluation(spikes, weights)
        stats = evaluation.statistics
        m, k, n, t = stats.m, stats.k, stats.n, stats.t
        result = SimulationResult(accelerator=self.name, workload=name)
        total_true_acs = float(stats.true_acs_per_t.sum())

        # ---------------- compute cycles ---------------- #
        # The multiplier-free update stream is bounded by how many psum
        # updates the banked psum memory accepts per cycle; streaming the
        # non-zero spikes through the intersection units adds a second bound.
        compute_cycles = max(
            total_true_acs / self.psum_update_throughput,
            stats.nnz_spikes / cfg.num_tppes,
        )

        # ---------------- psum spills ---------------- #
        psum_matrix_bytes = m * n * self.psum_bytes
        spill_fraction = max(0.0, 1.0 - self.psum_buffer_bytes / psum_matrix_bytes) if psum_matrix_bytes else 0.0
        psum_dram_bytes = 2.0 * t * psum_matrix_bytes * spill_fraction
        # Spilled psums are merged back at the psum update throughput.
        compute_cycles += psum_dram_bytes / self.psum_bytes / self.psum_update_throughput

        # ---------------- traffic ---------------- #
        a_coord_bits = coordinate_bits(k)
        a_csr_bytes = csr_bytes(stats.nnz_spikes, k, m * t, value_bits=0, pointer_bits=cfg.pointer_bits)
        a_format_bytes = stats.nnz_spikes * a_coord_bits / 8.0 + (m * t) * cfg.pointer_bits / 8.0
        b_payload_bytes = stats.nnz_weights * cfg.weight_bits / 8.0
        b_format_bytes = stats.nnz_weights * coordinate_bits(n) / 8.0 + k * cfg.pointer_bits / 8.0
        output_bytes = csr_bytes(
            float(stats.nnz_spikes) * n / max(k, 1),  # rough output nnz proxy, refined below
            n,
            m * t,
            value_bits=0,
            pointer_bits=cfg.pointer_bits,
        )
        # Outputs: unary spikes written per timestep in CSR as well.
        output_bytes = m * n * t / 8.0 + (m * t) * cfg.pointer_bits / 8.0

        result.dram.add("input", a_csr_bytes - a_format_bytes)
        result.dram.add("format", a_format_bytes + b_format_bytes)
        result.dram.add("weight", b_payload_bytes)
        result.dram.add("psum", psum_dram_bytes)
        result.dram.add("output", output_bytes)

        # On-chip: the input stream is read once; every active column of A
        # pulls the corresponding weight row once per timestep; every psum
        # update reads and writes the psum memory.
        weight_row_bytes = stats.weight_row_nnz * (cfg.weight_bits + coordinate_bits(n)) / 8.0
        # One weight-row fetch per active k column per timestep, in one
        # masked product instead of a per-timestep Python loop.
        active_mask = stats.active_column_mask  # (K, T)
        sram_b = float((weight_row_bytes[:, None] * active_mask).sum())
        active_any = active_mask.any(axis=1)
        sram_psum = total_true_acs * self.psum_access_bytes + 2.0 * psum_dram_bytes
        result.sram.add("input", a_csr_bytes)
        result.sram.add("weight", sram_b)
        result.sram.add("psum", sram_psum)
        result.sram.add("output", output_bytes)

        # Output-stationary streaming keeps the miss rate low: inputs and
        # weights are each fetched once, psum spills are the only re-reads.
        fiber_accesses = m * t + float(np.sum(stats.active_columns_per_t))
        fiber_misses = m * t + float(active_any.sum())
        result.sram_miss_rate = fiber_misses / (fiber_accesses + 2 * m * t) if fiber_accesses else 0.0

        # ---------------- energy ---------------- #
        dram_bytes = result.dram.total()
        sram_bytes = result.sram.total()
        result.energy.add("dram", dram_bytes * energy_model.dram_per_byte)
        result.energy.add("sram", sram_bytes * energy_model.sram_per_byte)
        result.energy.add("compute", total_true_acs * energy_model.accumulate)
        result.energy.add("merger", total_true_acs * energy_model.merger_per_element)
        result.energy.add("lif", m * n * t * energy_model.lif_update)

        cycles, memory_cycles = self.roofline_cycles(compute_cycles, dram_bytes, sram_bytes)
        result.compute_cycles = compute_cycles
        result.memory_cycles = memory_cycles
        result.cycles = cycles
        result.add_ops("true_accumulations", total_true_acs)
        result.add_ops("psum_spill_bytes", psum_dram_bytes)
        result.extra["psum_spill_fraction"] = spill_fraction
        return result
