"""Shared helpers for the baseline accelerator models.

The baselines in the paper are "-SNN" variants of published ANN spMspM
accelerators: the original design is kept (dataflow, compression format,
join / merge machinery) and the SNN's timestep loop is naively placed at the
innermost position and processed *sequentially*.  These helpers hold the
quantities several of those models need: compressed-format sizes, per-layer
match statistics and the simple capacity-based refetch estimator used when a
working set exceeds the global SRAM.

The per-layer statistics themselves are computed by the shared
workload-evaluation engine (:mod:`repro.engine`); the
:func:`collect_layer_statistics` entry point is kept as a thin wrapper for
callers driving a model with raw tensors.
"""

from __future__ import annotations

import math

import numpy as np

from ..engine.evaluation import LayerEvaluation
from ..engine.statistics import LayerStatistics

__all__ = [
    "coordinate_bits",
    "csr_bytes",
    "bitmask_fiber_bytes",
    "streaming_refetch_factor",
    "LayerStatistics",
    "collect_layer_statistics",
]


def coordinate_bits(dimension: int) -> int:
    """Bits needed to address one coordinate along ``dimension``."""
    if dimension <= 1:
        return 1
    return int(math.ceil(math.log2(dimension)))


def csr_bytes(nnz: float, dimension: int, num_fibers: int, value_bits: int, pointer_bits: int = 32) -> float:
    """Compressed footprint (bytes) of a CSR/CSC matrix with ``nnz`` non-zeros."""
    bits = nnz * (value_bits + coordinate_bits(dimension)) + (num_fibers + 1) * pointer_bits
    return bits / 8.0


def bitmask_fiber_bytes(fiber_length: int, nnz: float, num_fibers: int, value_bits: int, pointer_bits: int = 32) -> float:
    """Compressed footprint (bytes) of a bitmask-fiber matrix."""
    bits = num_fibers * (fiber_length + pointer_bits) + nnz * value_bits
    return bits / 8.0


def streaming_refetch_factor(operand_bytes: float, resident_bytes: float, capacity_bytes: float, passes: int) -> float:
    """Off-chip refetch factor of an operand streamed ``passes`` times.

    If the operand fits in the SRAM capacity left after the other resident
    data, it is fetched from DRAM once; otherwise the portion that does not
    fit must be re-fetched on every pass.  The factor interpolates linearly
    between those extremes.
    """
    if operand_bytes <= 0:
        return 1.0
    if passes <= 1:
        return 1.0
    leftover = max(0.0, capacity_bytes - resident_bytes)
    missing_fraction = max(0.0, 1.0 - leftover / operand_bytes)
    return 1.0 + (passes - 1) * missing_fraction


def collect_layer_statistics(spikes: np.ndarray, weights: np.ndarray) -> LayerStatistics:
    """Compute the exact per-layer statistics every baseline model consumes.

    Thin wrapper over the shared workload-evaluation engine: builds a
    one-off :class:`~repro.engine.evaluation.LayerEvaluation` and returns
    its vectorised statistics bundle.  Simulators driven through
    ``simulate_workload`` receive a cached evaluation instead and never call
    this.
    """
    return LayerEvaluation(spikes, weights).statistics
