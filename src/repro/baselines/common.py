"""Shared helpers for the baseline accelerator models.

The baselines in the paper are "-SNN" variants of published ANN spMspM
accelerators: the original design is kept (dataflow, compression format,
join / merge machinery) and the SNN's timestep loop is naively placed at the
innermost position and processed *sequentially*.  These helpers hold the
quantities several of those models need: compressed-format sizes, per-layer
match statistics and the simple capacity-based refetch estimator used when a
working set exceeds the global SRAM.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "coordinate_bits",
    "csr_bytes",
    "bitmask_fiber_bytes",
    "streaming_refetch_factor",
    "LayerStatistics",
    "collect_layer_statistics",
]


def coordinate_bits(dimension: int) -> int:
    """Bits needed to address one coordinate along ``dimension``."""
    if dimension <= 1:
        return 1
    return int(math.ceil(math.log2(dimension)))


def csr_bytes(nnz: float, dimension: int, num_fibers: int, value_bits: int, pointer_bits: int = 32) -> float:
    """Compressed footprint (bytes) of a CSR/CSC matrix with ``nnz`` non-zeros."""
    bits = nnz * (value_bits + coordinate_bits(dimension)) + (num_fibers + 1) * pointer_bits
    return bits / 8.0


def bitmask_fiber_bytes(fiber_length: int, nnz: float, num_fibers: int, value_bits: int, pointer_bits: int = 32) -> float:
    """Compressed footprint (bytes) of a bitmask-fiber matrix."""
    bits = num_fibers * (fiber_length + pointer_bits) + nnz * value_bits
    return bits / 8.0


def streaming_refetch_factor(operand_bytes: float, resident_bytes: float, capacity_bytes: float, passes: int) -> float:
    """Off-chip refetch factor of an operand streamed ``passes`` times.

    If the operand fits in the SRAM capacity left after the other resident
    data, it is fetched from DRAM once; otherwise the portion that does not
    fit must be re-fetched on every pass.  The factor interpolates linearly
    between those extremes.
    """
    if operand_bytes <= 0:
        return 1.0
    if passes <= 1:
        return 1.0
    leftover = max(0.0, capacity_bytes - resident_bytes)
    missing_fraction = max(0.0, 1.0 - leftover / operand_bytes)
    return 1.0 + (passes - 1) * missing_fraction


@dataclass
class LayerStatistics:
    """Exact sparsity statistics of one ``(A, B)`` layer pair.

    Attributes
    ----------
    m, k, n, t:
        Layer dimensions.
    nnz_weights:
        Non-zero weights in ``B``.
    nnz_spikes:
        Non-zero spikes in ``A`` (across all timesteps).
    nonsilent_neurons:
        ``(m, k)`` positions that fire at least once.
    matches:
        ``(M, N)`` array of non-silent x non-zero-weight matched positions.
    true_acs:
        ``(M, N)`` array of genuine accumulate operations (spike = 1 and
        weight != 0, summed over timesteps).
    true_acs_per_t:
        Total genuine accumulations per timestep, shape ``(T,)``.
    active_columns_per_t:
        Number of ``k`` columns of ``A`` with at least one spike, per
        timestep (drives outer-product B-row fetches).
    weight_row_nnz:
        Non-zeros per row of ``B``, shape ``(K,)``.
    spikes_per_row_t:
        Non-zero spikes per ``(m, t)`` pair, shape ``(M, T)``.
    """

    m: int
    k: int
    n: int
    t: int
    nnz_weights: int
    nnz_spikes: int
    nonsilent_neurons: int
    matches: np.ndarray
    true_acs: np.ndarray
    true_acs_per_t: np.ndarray
    active_columns_per_t: np.ndarray
    weight_row_nnz: np.ndarray
    spikes_per_row_t: np.ndarray


def collect_layer_statistics(spikes: np.ndarray, weights: np.ndarray) -> LayerStatistics:
    """Compute the exact per-layer statistics every baseline model consumes."""
    spikes = np.asarray(spikes)
    weights = np.asarray(weights)
    if spikes.ndim != 3 or weights.ndim != 2:
        raise ValueError("expected spikes (M, K, T) and weights (K, N)")
    if spikes.shape[1] != weights.shape[0]:
        raise ValueError("contraction dimension mismatch")
    m, k, t = spikes.shape
    n = weights.shape[1]
    weight_mask = (weights != 0).astype(np.float64)
    nonsilent = spikes.any(axis=2)
    matches = nonsilent.astype(np.float64) @ weight_mask

    true_acs = np.zeros((m, n), dtype=np.float64)
    true_acs_per_t = np.zeros(t, dtype=np.float64)
    active_columns = np.zeros(t, dtype=np.int64)
    for ti in range(t):
        spikes_t = spikes[:, :, ti].astype(np.float64)
        acs_t = spikes_t @ weight_mask
        true_acs += acs_t
        true_acs_per_t[ti] = acs_t.sum()
        active_columns[ti] = int((spikes[:, :, ti].any(axis=0)).sum())

    return LayerStatistics(
        m=m,
        k=k,
        n=n,
        t=t,
        nnz_weights=int(weight_mask.sum()),
        nnz_spikes=int(spikes.sum()),
        nonsilent_neurons=int(nonsilent.sum()),
        matches=matches,
        true_acs=true_acs,
        true_acs_per_t=true_acs_per_t,
        active_columns_per_t=active_columns,
        weight_row_nnz=(weights != 0).sum(axis=1).astype(np.int64),
        spikes_per_row_t=spikes.sum(axis=1).astype(np.int64),
    )
