"""SparTen-SNN and SparTen-ANN baselines (inner-product dataflow).

SparTen [Gondimalla et al., MICRO'19] is an inner-product spMspM accelerator
with bitmask compression and prefix-sum-based inner joins.  The paper's
SparTen-SNN baseline runs a dual-sparse SNN on that design by processing the
timesteps sequentially in the innermost loop:

* the spike train of each timestep is used directly as the bitmask (no
  compression gain on ``A``: every spike bit -- 0 or 1 -- is fetched),
* one inner-join pass (bitmask scan + matched accumulations) is paid per
  timestep per output neuron,
* membrane potentials must be carried between the per-timestep passes.

SparTen-ANN (used in Figure 18) is the original design on a dual-sparse ANN:
8-bit activations compressed with bitmask fibers, multiply-accumulate
compute, two fast prefix-sum circuits and no temporal loop.
"""

from __future__ import annotations

import numpy as np

from ..core.base import SimulatorBase
from ..engine import AnnLayerEvaluation, LayerEvaluation
from ..metrics.results import SimulationResult
from .common import bitmask_fiber_bytes, streaming_refetch_factor

__all__ = ["SparTenSNN", "SparTenANN"]


class SparTenSNN(SimulatorBase):
    """SparTen running a dual-sparse SNN with sequential timesteps."""

    name = "SparTen-SNN"

    @property
    def per_timestep_overhead_cycles(self) -> int:
        """Extra cycles per (output neuron, timestep) for restarting the inner
        join pipeline, reloading the spike-train chunk buffers and updating
        the membrane potential between the sequential timestep passes."""
        return self.arch.baseline.per_timestep_overhead_cycles

    def simulate_layer(
        self,
        spikes: np.ndarray,
        weights: np.ndarray,
        name: str = "layer",
        evaluation: LayerEvaluation | None = None,
        **kwargs,
    ) -> SimulationResult:
        """Simulate one dual-sparse SNN layer on SparTen-SNN."""
        cfg = self.config
        energy_model = cfg.energy
        if evaluation is None:
            evaluation = LayerEvaluation(spikes, weights)
        stats = evaluation.statistics
        m, k, n, t = stats.m, stats.k, stats.n, stats.t
        result = SimulationResult(accelerator=self.name, workload=name)

        # ---------------- compute cycles ---------------- #
        chunks = cfg.bitmask_chunks(k)
        task_cycles = (
            t * chunks + stats.true_acs + t * self.per_timestep_overhead_cycles
        )
        compute_cycles = self.grouped_wave_cycles(task_cycles, cfg.num_tppes)

        # ---------------- traffic ---------------- #
        dense_a_bytes = m * k * t / 8.0
        b_payload_bytes = stats.nnz_weights * cfg.weight_bits / 8.0
        b_format_bytes = (k * n + n * cfg.pointer_bits) / 8.0
        output_bytes = m * n * t / 8.0
        row_groups = -(-m // cfg.num_tppes)

        # Dense spike trains may have to be re-streamed from DRAM when the
        # per-layer working set exceeds the global cache (one pass per output
        # column group).
        a_refetch = streaming_refetch_factor(
            dense_a_bytes,
            b_payload_bytes + b_format_bytes,
            cfg.global_cache_bytes,
            passes=max(1, n // cfg.num_tppes),
        )
        result.dram.add("input", dense_a_bytes * a_refetch)
        result.dram.add("weight", b_payload_bytes)
        result.dram.add("format", b_format_bytes)
        result.dram.add("output", output_bytes)

        # One bitmask scan of A and B per output neuron per timestep; matched
        # weights fetched per genuine accumulation; weight fibers broadcast
        # per row group per timestep.
        total_true_acs = float(stats.true_acs.sum())
        sram_a = m * n * t * k / 8.0
        sram_b_bitmask = row_groups * n * t * k / 8.0
        sram_b_payload = row_groups * t * b_payload_bytes
        result.sram.add("input", sram_a)
        result.sram.add("format", sram_b_bitmask)
        result.sram.add("weight", sram_b_payload)
        result.sram.add("output", output_bytes)

        fiber_accesses = m * n * t + row_groups * n * t
        fiber_misses = (m * t) * a_refetch + n
        result.sram_miss_rate = fiber_misses / fiber_accesses if fiber_accesses else 0.0

        # ---------------- energy ---------------- #
        dram_bytes = result.dram.total()
        sram_bytes = result.sram.total()
        result.energy.add("dram", dram_bytes * energy_model.dram_per_byte)
        result.energy.add("sram", sram_bytes * energy_model.sram_per_byte)
        # Membrane potentials are read and written per output neuron per
        # timestep (2 bytes each way).
        membrane_bytes = m * n * t * 4.0
        result.energy.add("buffer", (total_true_acs + membrane_bytes) * energy_model.buffer_per_byte)
        result.energy.add("compute", total_true_acs * energy_model.accumulate)
        prefix_invocations = m * n * t * chunks
        result.energy.add("prefix_sum", prefix_invocations * energy_model.fast_prefix_sum)
        result.energy.add("lif", m * n * t * energy_model.lif_update)

        cycles, memory_cycles = self.roofline_cycles(compute_cycles, dram_bytes, sram_bytes)
        result.compute_cycles = compute_cycles
        result.memory_cycles = memory_cycles
        result.cycles = cycles
        result.add_ops("true_accumulations", total_true_acs)
        result.add_ops("prefix_sum_invocations", prefix_invocations)
        result.add_ops("lif_updates", m * n * t)
        result.extra["input_refetch_factor"] = a_refetch
        return result


class SparTenANN(SimulatorBase):
    """The original SparTen design running a dual-sparse ANN layer."""

    name = "SparTen-ANN"

    def simulate_layer(
        self,
        activations: np.ndarray,
        weights: np.ndarray,
        name: str = "layer",
        evaluation: AnnLayerEvaluation | None = None,
        **kwargs,
    ) -> SimulationResult:
        """Simulate one dual-sparse ANN layer (``activations`` is ``(M, K)``)."""
        if evaluation is None:
            evaluation = AnnLayerEvaluation(activations, weights)
        cfg = self.config
        energy_model = cfg.energy
        m, k, n = evaluation.m, evaluation.k, evaluation.n
        result = SimulationResult(accelerator=self.name, workload=name)

        matches = evaluation.matches
        total_matches = evaluation.total_matches
        nnz_act = evaluation.nnz_activations
        nnz_w = evaluation.nnz_weights

        chunks = cfg.bitmask_chunks(k)
        task_cycles = chunks + matches + cfg.task_overhead_cycles
        compute_cycles = self.grouped_wave_cycles(task_cycles, cfg.num_tppes)

        activation_bits = 8
        a_bytes = bitmask_fiber_bytes(k, nnz_act, m, activation_bits, cfg.pointer_bits)
        b_bytes = bitmask_fiber_bytes(k, nnz_w, n, cfg.weight_bits, cfg.pointer_bits)
        output_nnz = evaluation.output_nnz
        output_bytes = bitmask_fiber_bytes(n, output_nnz, m, activation_bits, cfg.pointer_bits)
        row_groups = -(-m // cfg.num_tppes)

        result.dram.add("input", nnz_act * activation_bits / 8.0)
        result.dram.add("weight", nnz_w * cfg.weight_bits / 8.0)
        result.dram.add("format", a_bytes + b_bytes - (nnz_act * activation_bits + nnz_w * cfg.weight_bits) / 8.0)
        result.dram.add("output", output_bytes)

        result.sram.add("input", m * n * k / 8.0 + total_matches * activation_bits / 8.0)
        result.sram.add("format", row_groups * n * k / 8.0)
        result.sram.add("weight", row_groups * nnz_w * cfg.weight_bits / 8.0)
        result.sram.add("output", output_bytes)

        dram_bytes = result.dram.total()
        sram_bytes = result.sram.total()
        result.energy.add("dram", dram_bytes * energy_model.dram_per_byte)
        result.energy.add("sram", sram_bytes * energy_model.sram_per_byte)
        result.energy.add("compute", total_matches * energy_model.multiply_accumulate)
        # Two fast prefix-sum circuits (activations and weights).
        prefix_invocations = m * n * chunks
        result.energy.add("prefix_sum", 2 * prefix_invocations * energy_model.fast_prefix_sum)

        cycles, memory_cycles = self.roofline_cycles(compute_cycles, dram_bytes, sram_bytes)
        result.compute_cycles = compute_cycles
        result.memory_cycles = memory_cycles
        result.cycles = cycles
        result.add_ops("multiply_accumulates", total_matches)
        result.add_ops("prefix_sum_invocations", 2 * prefix_invocations)
        return result
