"""PTB baseline: dense systolic-array SNN accelerator (partially temporal parallel).

PTB [Lee et al., HPCA'22] maps *time-windows* (groups of contiguous
timesteps) to the columns of a systolic array and LIF neurons to its rows.
Timesteps inside a window are processed sequentially, and the design does not
exploit spike or weight sparsity -- every weight and every (zero or one)
spike flows through the array.  The paper configures a 16x4 array so that 16
full-sum outputs for 4 timesteps are produced in parallel, matching LoAS's
output rate, and still reports a ~47x speedup for LoAS on the dual-sparse
VGG16 workload.
"""

from __future__ import annotations

import numpy as np

from ..arch.systolic import SystolicArray
from ..core.base import SimulatorBase
from ..engine import LayerEvaluation
from ..metrics.results import SimulationResult

__all__ = ["PTBSimulator"]


class PTBSimulator(SimulatorBase):
    """Analytical model of PTB running a (dense) SNN workload."""

    name = "PTB"

    @property
    def window_capacity(self) -> int:
        """Nominal number of timesteps one time-window column is designed for.
        PTB targets long event-stream workloads (window >> 4); with only 4
        timesteps per window slot the temporal lanes are under-utilised."""
        return self.arch.baseline.window_capacity

    def __init__(self, config=None, array: SystolicArray | None = None):
        super().__init__(config)
        baseline = self.arch.baseline
        self.array = array or SystolicArray(
            rows=baseline.systolic_rows, cols=baseline.systolic_cols
        )

    def simulate_layer(
        self,
        spikes: np.ndarray,
        weights: np.ndarray,
        name: str = "layer",
        evaluation: LayerEvaluation | None = None,
        **kwargs,
    ) -> SimulationResult:
        """Simulate one SNN layer (processed densely) on PTB."""
        if evaluation is None:
            evaluation = LayerEvaluation(spikes, weights)
        cfg = self.config
        energy_model = cfg.energy
        m, k, t = evaluation.m, evaluation.k, evaluation.t
        n = evaluation.n
        result = SimulationResult(accelerator=self.name, workload=name)

        # Array rows hold LIF neurons (output channels), array columns hold
        # time-windows.  With T <= columns every timestep runs in parallel
        # (the 16x4 configuration of Figure 19); larger T repeats the pass.
        # The input rows and the (dense) reduction dimension stream through
        # sequentially -- PTB exploits neither spike nor weight sparsity.
        timesteps_per_column = -(-t // self.array.cols)
        output_folds = -(-n // self.array.rows)
        compute_cycles = float(
            output_folds
            * (m * k + self.array.rows + self.array.cols)
            * timesteps_per_column
        )
        dense_acs_cycles = compute_cycles * self.array.num_pes
        array_utilization = (float(m) * k * n * t) / dense_acs_cycles if dense_acs_cycles else 0.0

        # Dense traffic: all weights, all spike bits, all output spikes.
        dense_weight_bytes = k * n * cfg.weight_bits / 8.0
        dense_spike_bytes = m * k * t / 8.0
        output_bytes = m * n * t / 8.0
        result.dram.add("weight", dense_weight_bytes)
        result.dram.add("input", dense_spike_bytes)
        result.dram.add("output", output_bytes)

        # On-chip: weights are re-streamed once per input-row tile (the small
        # array cannot keep the layer's weights stationary) and the spikes
        # once per output fold; psums circulate between PEs.
        row_folds = -(-n // self.array.rows)
        col_folds = -(-m // self.array.cols)
        result.sram.add("weight", dense_weight_bytes * col_folds)
        result.sram.add("input", dense_spike_bytes * row_folds)
        result.sram.add("psum", m * n * t * 2.0)
        result.sram.add("output", output_bytes)

        dram_bytes = result.dram.total()
        sram_bytes = result.sram.total()
        result.energy.add("dram", dram_bytes * energy_model.dram_per_byte)
        result.energy.add("sram", sram_bytes * energy_model.sram_per_byte)
        dense_acs = float(m) * k * n * t
        result.energy.add("compute", dense_acs * energy_model.accumulate)
        result.energy.add("lif", m * n * t * energy_model.lif_update)

        cycles, memory_cycles = self.roofline_cycles(compute_cycles, dram_bytes, sram_bytes)
        result.compute_cycles = compute_cycles
        result.memory_cycles = memory_cycles
        result.cycles = cycles
        result.add_ops("dense_accumulations", dense_acs)
        result.extra["array_utilization"] = min(1.0, array_utilization)
        result.extra["temporal_lane_utilization"] = min(1.0, t / self.array.cols)
        return result
