"""Capability matrix of the compared accelerators (Table I of the paper)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AcceleratorCapabilities", "TABLE1_CAPABILITIES"]


@dataclass(frozen=True)
class AcceleratorCapabilities:
    """Qualitative capabilities of one SNN accelerator (one Table I row).

    Attributes
    ----------
    name:
        Accelerator name.
    spike_sparsity:
        Exploits sparsity in the input spikes.
    weight_sparsity:
        Exploits sparsity in the weights.
    parallelism:
        Parallelism support: ``"S"`` (spatial only), ``"S+partial-T"`` or
        ``"S+fully-T"``.
    neuron_model:
        Neuron model supported (``"LIF"`` or ``"FS"``).
    """

    name: str
    spike_sparsity: bool
    weight_sparsity: bool
    parallelism: str
    neuron_model: str


TABLE1_CAPABILITIES: dict[str, AcceleratorCapabilities] = {
    "SpinalFlow": AcceleratorCapabilities("SpinalFlow", True, False, "S", "LIF"),
    "PTB": AcceleratorCapabilities("PTB", True, False, "S+partial-T", "LIF"),
    "Stellar": AcceleratorCapabilities("Stellar", True, False, "S+fully-T", "FS"),
    "LoAS": AcceleratorCapabilities("LoAS", True, True, "S+fully-T", "LIF"),
}
"""Capability rows exactly as published in Table I."""
