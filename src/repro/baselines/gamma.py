"""Gamma-SNN and Gamma-ANN baselines (Gustavson's dataflow).

Gamma [Zhang et al., ASPLOS'21] uses Gustavson's row-wise product: for every
non-zero of an input row, the corresponding weight row is fetched from the
FiberCache and merged into the growing output row by a high-radix merger.
Its strength is off-chip traffic -- partial output rows stay on chip -- and
its weakness when running SNNs sequentially over timesteps is on-chip
traffic: every timestep re-streams weight rows and re-merges partial output
rows, multiplying the SRAM traffic by roughly ``T`` (Section VI-A).

Gamma-ANN (Figure 18) is the original design on a dual-sparse ANN with 8-bit
activations and a single temporal pass.
"""

from __future__ import annotations

import numpy as np

from ..core.base import SimulatorBase
from ..engine import AnnLayerEvaluation, LayerEvaluation
from ..metrics.results import SimulationResult
from .common import bitmask_fiber_bytes, coordinate_bits

__all__ = ["GammaSNN", "GammaANN"]


class GammaSNN(SimulatorBase):
    """Gamma running a dual-sparse SNN with sequential timesteps.

    The microparameters below read the injected design point
    (``config.arch.baseline``) instead of hard-wired class attributes, so a
    design-space sweep moves them like any other hardware knob.
    """

    name = "Gamma-SNN"

    @property
    def merger_radix(self) -> int:
        """Radix of the on-chip merger (how many scaled rows merge per pass)."""
        return self.arch.baseline.merger_radix

    @property
    def effective_merge_radix(self) -> int:
        """Effective merge radix when running SNNs with sequential timesteps:
        the per-timestep passes fragment the merge schedule, so partial output
        rows bounce through the FiberCache after merging only a couple of
        scaled rows instead of a full radix-64 group (this is the mechanism
        behind the "t-dim enlarges the partial row traffic" observation of
        Section VI-A)."""
        return self.arch.baseline.effective_merge_radix

    @property
    def psum_bytes(self) -> int:
        """Bytes per partial-sum element held in partial output rows."""
        return self.arch.baseline.psum_bytes

    @property
    def merge_throughput(self) -> float:
        """Elements the merge pipeline retires per cycle across all PEs."""
        return self.arch.baseline.merge_throughput

    def simulate_layer(
        self,
        spikes: np.ndarray,
        weights: np.ndarray,
        name: str = "layer",
        evaluation: LayerEvaluation | None = None,
        **kwargs,
    ) -> SimulationResult:
        """Simulate one dual-sparse SNN layer on Gamma-SNN."""
        cfg = self.config
        energy_model = cfg.energy
        if evaluation is None:
            evaluation = LayerEvaluation(spikes, weights)
        stats = evaluation.statistics
        m, k, n, t = stats.m, stats.k, stats.n, stats.t
        result = SimulationResult(accelerator=self.name, workload=name)
        total_true_acs = float(stats.true_acs_per_t.sum())

        # ---------------- compute cycles ---------------- #
        # Each genuine accumulation flows through the merger once; partial
        # output rows that need several radix-limited merge rounds flow
        # through again on every extra round.
        spikes_per_row_t = stats.spikes_per_row_t.astype(np.float64)  # (M, T)
        compute_rounds = np.ceil(np.maximum(spikes_per_row_t, 1.0) / self.merger_radix)
        partial_row_elements = float(n)
        remerged_elements = float(
            (np.maximum(compute_rounds - 1.0, 0.0) * partial_row_elements).sum()
        )
        compute_cycles = (total_true_acs + remerged_elements) / self.merge_throughput
        # SRAM-side merge schedule: the sequential timestep passes fragment
        # the merge into much smaller groups, so partial rows make many more
        # FiberCache round trips than the compute-side radix suggests.
        merge_rounds = np.ceil(
            np.maximum(spikes_per_row_t, 1.0) / self.effective_merge_radix
        )

        # ---------------- traffic ---------------- #
        # Inputs: spike rows stored per timestep with per-spike coordinates.
        a_coord_bits = coordinate_bits(k)
        a_payload_bytes = 0.0  # unary spikes carry no payload
        a_format_bytes = stats.nnz_spikes * a_coord_bits / 8.0 + m * t * cfg.pointer_bits / 8.0
        b_payload_bytes = stats.nnz_weights * cfg.weight_bits / 8.0
        b_format_bytes = stats.nnz_weights * coordinate_bits(n) / 8.0 + k * cfg.pointer_bits / 8.0
        output_bytes = m * n * t / 8.0 + m * t * cfg.pointer_bits / 8.0

        result.dram.add("input", a_payload_bytes)
        result.dram.add("format", a_format_bytes + b_format_bytes)
        result.dram.add("weight", b_payload_bytes)
        result.dram.add("output", output_bytes)
        # The FiberCache keeps partial rows on chip; with the extra t-dim the
        # working set of in-flight partial rows grows T-fold, and whatever
        # does not fit must make a round trip to DRAM.
        partial_row_working_set = m * t * n * self.psum_bytes
        spill_fraction = (
            max(0.0, 1.0 - cfg.global_cache_bytes / partial_row_working_set)
            if partial_row_working_set
            else 0.0
        )
        psum_dram = 2.0 * partial_row_working_set * spill_fraction
        result.dram.add("psum", psum_dram)

        # On-chip: every non-zero spike pulls a weight row from the
        # FiberCache; every merge round reads and writes the partial row.
        weight_row_bytes = stats.weight_row_nnz * (cfg.weight_bits + coordinate_bits(n)) / 8.0
        spikes_per_column_t = stats.spikes_per_column_t.astype(np.float64)  # (K, T)
        sram_b = float((spikes_per_column_t.sum(axis=1) * weight_row_bytes).sum())
        partial_row_traffic = 2.0 * float(
            (merge_rounds * partial_row_elements * self.psum_bytes).sum()
        )
        result.sram.add("weight", sram_b)
        result.sram.add("psum", partial_row_traffic + 2.0 * psum_dram)
        result.sram.add("input", a_format_bytes)
        result.sram.add("output", output_bytes)

        fiber_accesses = float(stats.nnz_spikes) + m * t
        fiber_misses = float((spikes_per_column_t.any(axis=1)).sum()) + m * t
        result.sram_miss_rate = fiber_misses / fiber_accesses if fiber_accesses else 0.0

        # ---------------- energy ---------------- #
        dram_bytes = result.dram.total()
        sram_bytes = result.sram.total()
        result.energy.add("dram", dram_bytes * energy_model.dram_per_byte)
        result.energy.add("sram", sram_bytes * energy_model.sram_per_byte)
        result.energy.add("compute", total_true_acs * energy_model.accumulate)
        result.energy.add(
            "merger", (total_true_acs + remerged_elements) * energy_model.merger_per_element
        )
        result.energy.add("lif", m * n * t * energy_model.lif_update)

        cycles, memory_cycles = self.roofline_cycles(compute_cycles, dram_bytes, sram_bytes)
        result.compute_cycles = compute_cycles
        result.memory_cycles = memory_cycles
        result.cycles = cycles
        result.add_ops("true_accumulations", total_true_acs)
        result.add_ops("remerged_elements", remerged_elements)
        return result


class GammaANN(SimulatorBase):
    """The original Gamma design running a dual-sparse ANN layer."""

    name = "Gamma-ANN"

    @property
    def merger_radix(self) -> int:
        """Radix of the on-chip merger."""
        return self.arch.baseline.merger_radix

    @property
    def psum_bytes(self) -> int:
        """Bytes per partial-sum element held in partial output rows."""
        return self.arch.baseline.psum_bytes

    @property
    def merge_throughput(self) -> float:
        """Elements the merge pipeline retires per cycle across all PEs."""
        return self.arch.baseline.merge_throughput

    def simulate_layer(
        self,
        activations: np.ndarray,
        weights: np.ndarray,
        name: str = "layer",
        evaluation: AnnLayerEvaluation | None = None,
        **kwargs,
    ) -> SimulationResult:
        """Simulate one dual-sparse ANN layer (``activations`` is ``(M, K)``)."""
        if evaluation is None:
            evaluation = AnnLayerEvaluation(activations, weights)
        cfg = self.config
        energy_model = cfg.energy
        m, k, n = evaluation.m, evaluation.k, evaluation.n
        result = SimulationResult(accelerator=self.name, workload=name)

        act_mask = evaluation.act_mask
        weight_row_nnz = evaluation.weight_row_nnz
        true_macs = evaluation.total_matches
        nnz_act = evaluation.nnz_activations
        nnz_w = evaluation.nnz_weights
        activation_bits = 8

        nnz_per_row = act_mask.sum(axis=1)
        merge_rounds = np.ceil(np.maximum(nnz_per_row, 1.0) / self.merger_radix)
        remerged = float((np.maximum(merge_rounds - 1.0, 0.0) * n).sum())
        compute_cycles = (true_macs + remerged) / self.merge_throughput

        a_bytes = bitmask_fiber_bytes(k, nnz_act, m, activation_bits, cfg.pointer_bits)
        b_payload = nnz_w * cfg.weight_bits / 8.0
        b_format = nnz_w * coordinate_bits(n) / 8.0 + k * cfg.pointer_bits / 8.0
        output_bytes = bitmask_fiber_bytes(n, evaluation.output_nnz, m, activation_bits, cfg.pointer_bits)

        result.dram.add("input", nnz_act * activation_bits / 8.0)
        result.dram.add("format", a_bytes - nnz_act * activation_bits / 8.0 + b_format)
        result.dram.add("weight", b_payload)
        result.dram.add("output", output_bytes)

        weight_row_bytes = weight_row_nnz * (cfg.weight_bits + coordinate_bits(n)) / 8.0
        sram_b = float((act_mask.sum(axis=0) * weight_row_bytes).sum())
        partial_row_traffic = 2.0 * float((merge_rounds * n * self.psum_bytes).sum())
        result.sram.add("weight", sram_b)
        result.sram.add("psum", partial_row_traffic)
        result.sram.add("input", a_bytes)
        result.sram.add("output", output_bytes)

        dram_bytes = result.dram.total()
        sram_bytes = result.sram.total()
        result.energy.add("dram", dram_bytes * energy_model.dram_per_byte)
        result.energy.add("sram", sram_bytes * energy_model.sram_per_byte)
        result.energy.add("compute", true_macs * energy_model.multiply_accumulate)
        result.energy.add("merger", (true_macs + remerged) * energy_model.merger_per_element)

        cycles, memory_cycles = self.roofline_cycles(compute_cycles, dram_bytes, sram_bytes)
        result.compute_cycles = compute_cycles
        result.memory_cycles = memory_cycles
        result.cycles = cycles
        result.add_ops("multiply_accumulates", true_macs)
        return result
