"""Dual-sparse ANN workload helpers for the SNN-vs-ANN comparison (Figure 18).

The ANN version of VGG16 used in the paper has 8-bit weights (98.2 % sparse,
the same lottery-ticket weights as the SNN) and 8-bit activations at 43.9 %
sparsity.  The helpers here generate matching activation matrices so the
SparTen-ANN / Gamma-ANN baselines can be driven with the same layer shapes as
the SNN workload.
"""

from __future__ import annotations

import numpy as np

from ..snn.workloads import LayerWorkload, NetworkWorkload

__all__ = ["ANN_ACTIVATION_SPARSITY", "generate_ann_activations", "ann_layer_tensors"]

#: Activation sparsity of the ANN VGG16 reported in Section VI-B.
ANN_ACTIVATION_SPARSITY = 0.439


def generate_ann_activations(
    m: int,
    k: int,
    activation_sparsity: float = ANN_ACTIVATION_SPARSITY,
    rng: np.random.Generator | None = None,
    activation_bits: int = 8,
) -> np.ndarray:
    """Generate an ``(M, K)`` 8-bit ReLU-style activation matrix."""
    if not 0.0 <= activation_sparsity <= 1.0:
        raise ValueError("activation_sparsity must lie in [0, 1]")
    rng = np.random.default_rng() if rng is None else rng
    activations = rng.integers(1, 2 ** activation_bits, size=(m, k), dtype=np.int32)
    mask = rng.random((m, k)) < activation_sparsity
    activations[mask] = 0
    return activations


def ann_layer_tensors(
    layer: LayerWorkload,
    rng: np.random.Generator | None = None,
    activation_sparsity: float = ANN_ACTIVATION_SPARSITY,
) -> tuple[np.ndarray, np.ndarray]:
    """ANN ``(activations, weights)`` pair matching an SNN layer workload.

    The weights reuse the layer's weight-sparsity profile; the activations
    replace the spike tensor with an 8-bit matrix at the ANN sparsity.
    """
    rng = np.random.default_rng() if rng is None else rng
    _, weights = layer.generate(rng=rng)
    activations = generate_ann_activations(
        layer.shape.m, layer.shape.k, activation_sparsity, rng=rng
    )
    return activations, weights


def ann_network_tensors(
    network: NetworkWorkload,
    rng: np.random.Generator | None = None,
    activation_sparsity: float = ANN_ACTIVATION_SPARSITY,
) -> list[tuple[str, np.ndarray, np.ndarray]]:
    """ANN tensors for every layer of a network workload."""
    rng = np.random.default_rng() if rng is None else rng
    return [
        (layer.name, *ann_layer_tensors(layer, rng=rng, activation_sparsity=activation_sparsity))
        for layer in network.layers
    ]
