"""Baseline accelerator models LoAS is evaluated against.

* :class:`SparTenSNN` / :class:`GoSPASNN` / :class:`GammaSNN` -- ANN spMspM
  accelerators (inner-product, outer-product, Gustavson) naively running a
  dual-sparse SNN with sequential timesteps (Section V "Baseline").
* :class:`SparTenANN` / :class:`GammaANN` -- the original designs on a
  dual-sparse ANN (Figure 18).
* :class:`PTBSimulator` / :class:`StellarSimulator` -- dense SNN systolic
  accelerators (Figure 19).
* :data:`TABLE1_CAPABILITIES` -- the qualitative capability matrix (Table I).
"""

from .ann import (
    ANN_ACTIVATION_SPARSITY,
    ann_layer_tensors,
    ann_network_tensors,
    generate_ann_activations,
)
from .capabilities import AcceleratorCapabilities, TABLE1_CAPABILITIES
from .gamma import GammaANN, GammaSNN
from .gospa import GoSPASNN
from .ptb import PTBSimulator
from .sparten import SparTenANN, SparTenSNN
from .stellar import StellarSimulator

__all__ = [
    "ANN_ACTIVATION_SPARSITY",
    "AcceleratorCapabilities",
    "GammaANN",
    "GammaSNN",
    "GoSPASNN",
    "PTBSimulator",
    "SparTenANN",
    "SparTenSNN",
    "StellarSimulator",
    "TABLE1_CAPABILITIES",
    "ann_layer_tensors",
    "ann_network_tensors",
    "generate_ann_activations",
]
