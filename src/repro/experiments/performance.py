"""Figures 12, 13 and 14: overall performance, traffic and its breakdown.

Figure 12 reports speedup and energy efficiency of LoAS (with and without the
fine-tuned preprocessing) against SparTen-SNN, GoSPA-SNN and Gamma-SNN on the
three full SNN workloads, everything normalised to SparTen-SNN.  Figure 13
reports the corresponding off-chip and on-chip traffic, and Figure 14 breaks
the off-chip traffic of the three representative layers into input / weight /
psum / other components and adds the normalised SRAM miss rate.

All three figures are thin shapers over the declarative network / layer
sweeps of :mod:`repro.experiments.sweeps`; each is also a registered
scenario (``fig12-overall``, ``fig13-traffic``, ``fig14-breakdown``) runnable
through :func:`repro.runner.run_scenario`.
"""

from __future__ import annotations

from ..api.session import _legacy_shim_warning, default_session
from ..metrics.report import format_series, format_sweep
from ..runner import Scenario, register_scenario
from .sweeps import (
    DEFAULT_LAYERS,
    DEFAULT_NETWORKS,
    layer_sweep_plan,
    network_sweep_plan,
)

__all__ = [
    "run_fig12",
    "format_fig12",
    "run_fig13",
    "format_fig13",
    "run_fig14",
    "format_fig14",
]

_REFERENCE = "SparTen-SNN"


def _shape_fig12(results, **_) -> dict[str, dict[str, dict[str, float]]]:
    """Speedup and energy efficiency normalised to SparTen-SNN."""
    output: dict[str, dict[str, dict[str, float]]] = {}
    for network, per_accel in results.nested().items():
        reference = per_accel[_REFERENCE]
        output[network] = {
            accel: {
                "speedup": reference.cycles / result.cycles,
                "energy_efficiency": reference.energy_pj / result.energy_pj,
                "cycles": result.cycles,
                "energy_pj": result.energy_pj,
            }
            for accel, result in per_accel.items()
        }
    return output


def _shape_fig13(results, **_) -> dict[str, dict[str, dict[str, float]]]:
    """Off-chip (KB) and on-chip (MB) traffic per accelerator."""
    return {
        network: {
            accel: {
                "offchip_kb": result.dram_bytes / 1e3,
                "onchip_mb": result.sram_bytes / 1e6,
            }
            for accel, result in per_accel.items()
        }
        for network, per_accel in results.nested().items()
    }


def _shape_fig14(results, **_) -> dict[str, dict[str, dict[str, float]]]:
    """Off-chip traffic breakdown and SRAM miss rate, normalised to LoAS."""
    output: dict[str, dict[str, dict[str, float]]] = {}
    for layer, per_accel in results.nested().items():
        loas = per_accel["LoAS"]
        loas_total = loas.dram_bytes or 1.0
        loas_miss = loas.sram_miss_rate or 1e-9
        output[layer] = {}
        for accel, result in per_accel.items():
            breakdown = result.dram.as_dict()
            output[layer][accel] = {
                "weight": breakdown.get("weight", 0.0) / loas_total,
                "input": breakdown.get("input", 0.0) / loas_total,
                "psum": breakdown.get("psum", 0.0) / loas_total,
                "format": breakdown.get("format", 0.0) / loas_total,
                "output": breakdown.get("output", 0.0) / loas_total,
                "total": result.dram_bytes / loas_total,
                "normalized_miss_rate": result.sram_miss_rate / loas_miss,
            }
    return output


register_scenario(
    Scenario(
        name="fig12-overall",
        description="Figure 12: speedup / energy efficiency vs SparTen-SNN",
        build=network_sweep_plan,
        shape=_shape_fig12,
        defaults=(("networks", DEFAULT_NETWORKS), ("scale", 1.0), ("seed", 1)),
    )
)

register_scenario(
    Scenario(
        name="fig13-traffic",
        description="Figure 13: off-chip / on-chip traffic per accelerator",
        build=network_sweep_plan,
        shape=_shape_fig13,
        defaults=(("networks", DEFAULT_NETWORKS), ("scale", 1.0), ("seed", 1)),
    )
)

register_scenario(
    Scenario(
        name="fig14-breakdown",
        description="Figure 14: off-chip traffic breakdown + SRAM miss rate",
        build=layer_sweep_plan,
        shape=_shape_fig14,
        defaults=(("layers", DEFAULT_LAYERS), ("scale", 1.0), ("seed", 1)),
    )
)


def run_fig12(
    networks: tuple[str, ...] = DEFAULT_NETWORKS,
    scale: float = 1.0,
    seed: int = 1,
    workers: int | None = None,
) -> dict[str, dict[str, dict[str, float]]]:
    """Speedup and energy efficiency normalised to SparTen-SNN (Figure 12).

    .. deprecated:: Shim over ``Session.run("fig12-overall", ...)``.
    """
    _legacy_shim_warning("run_fig12", "fig12-overall")
    return default_session().run(
        "fig12-overall", workers=workers, networks=networks, scale=scale, seed=seed
    ).payload


def format_fig12(scale: float = 0.25, seed: int = 1) -> str:
    """ASCII rendition of Figure 12."""
    data = default_session().run("fig12-overall", scale=scale, seed=seed).payload
    speed = {
        network: {accel: stats["speedup"] for accel, stats in per.items()}
        for network, per in data.items()
    }
    energy = {
        network: {accel: stats["energy_efficiency"] for accel, stats in per.items()}
        for network, per in data.items()
    }
    return (
        format_series(speed, title="Figure 12 (top): speedup over SparTen-SNN")
        + "\n\n"
        + format_series(energy, title="Figure 12 (bottom): energy efficiency over SparTen-SNN")
    )


def run_fig13(
    networks: tuple[str, ...] = DEFAULT_NETWORKS,
    scale: float = 1.0,
    seed: int = 1,
    workers: int | None = None,
) -> dict[str, dict[str, dict[str, float]]]:
    """Off-chip (KB) and on-chip (MB) traffic per accelerator (Figure 13).

    .. deprecated:: Shim over ``Session.run("fig13-traffic", ...)``.
    """
    _legacy_shim_warning("run_fig13", "fig13-traffic")
    return default_session().run(
        "fig13-traffic", workers=workers, networks=networks, scale=scale, seed=seed
    ).payload


def format_fig13(scale: float = 0.25, seed: int = 1) -> str:
    """ASCII rendition of Figure 13."""
    return format_sweep(
        default_session().run("fig13-traffic", scale=scale, seed=seed).payload,
        columns=[("Off-chip (KB)", "offchip_kb"), ("On-chip (MB)", "onchip_mb")],
        title="Figure 13: memory traffic",
    )


def run_fig14(
    layers: tuple[str, ...] = DEFAULT_LAYERS,
    scale: float = 1.0,
    seed: int = 1,
    workers: int | None = None,
) -> dict[str, dict[str, dict[str, float]]]:
    """Off-chip traffic breakdown and SRAM miss rate per layer (Figure 14).

    Everything is normalised to LoAS, as in the paper.

    .. deprecated:: Shim over ``Session.run("fig14-breakdown", ...)``.
    """
    _legacy_shim_warning("run_fig14", "fig14-breakdown")
    return default_session().run(
        "fig14-breakdown", workers=workers, layers=layers, scale=scale, seed=seed
    ).payload


def format_fig14(scale: float = 0.5, seed: int = 1) -> str:
    """ASCII rendition of Figure 14."""
    return format_sweep(
        default_session().run("fig14-breakdown", scale=scale, seed=seed).payload,
        columns=[
            ("Input", "input"),
            ("Weight", "weight"),
            ("Psum", "psum"),
            ("Format", "format"),
            ("Output", "output"),
            ("Total", "total"),
            ("Norm. miss", "normalized_miss_rate"),
        ],
        title="Figure 14: off-chip traffic breakdown, normalised to LoAS",
    )
