"""Figures 12, 13 and 14: overall performance, traffic and its breakdown.

Figure 12 reports speedup and energy efficiency of LoAS (with and without the
fine-tuned preprocessing) against SparTen-SNN, GoSPA-SNN and Gamma-SNN on the
three full SNN workloads, everything normalised to SparTen-SNN.  Figure 13
reports the corresponding off-chip and on-chip traffic, and Figure 14 breaks
the off-chip traffic of the three representative layers into input / weight /
psum / other components and adds the normalised SRAM miss rate.
"""

from __future__ import annotations

from ..metrics.report import format_series, format_table
from .sweeps import DEFAULT_LAYERS, DEFAULT_NETWORKS, run_layers, run_networks

__all__ = [
    "run_fig12",
    "format_fig12",
    "run_fig13",
    "format_fig13",
    "run_fig14",
    "format_fig14",
]

_REFERENCE = "SparTen-SNN"


def run_fig12(
    networks: tuple[str, ...] = DEFAULT_NETWORKS,
    scale: float = 1.0,
    seed: int = 1,
) -> dict[str, dict[str, dict[str, float]]]:
    """Speedup and energy efficiency normalised to SparTen-SNN (Figure 12)."""
    raw = run_networks(networks=networks, scale=scale, seed=seed)
    output: dict[str, dict[str, dict[str, float]]] = {}
    for network, per_accel in raw.items():
        reference = per_accel[_REFERENCE]
        output[network] = {
            accel: {
                "speedup": reference.cycles / result.cycles,
                "energy_efficiency": reference.energy_pj / result.energy_pj,
                "cycles": result.cycles,
                "energy_pj": result.energy_pj,
            }
            for accel, result in per_accel.items()
        }
    return output


def format_fig12(scale: float = 0.25, seed: int = 1) -> str:
    """ASCII rendition of Figure 12."""
    data = run_fig12(scale=scale, seed=seed)
    speed = {
        network: {accel: stats["speedup"] for accel, stats in per.items()}
        for network, per in data.items()
    }
    energy = {
        network: {accel: stats["energy_efficiency"] for accel, stats in per.items()}
        for network, per in data.items()
    }
    return (
        format_series(speed, title="Figure 12 (top): speedup over SparTen-SNN")
        + "\n\n"
        + format_series(energy, title="Figure 12 (bottom): energy efficiency over SparTen-SNN")
    )


def run_fig13(
    networks: tuple[str, ...] = DEFAULT_NETWORKS,
    scale: float = 1.0,
    seed: int = 1,
) -> dict[str, dict[str, dict[str, float]]]:
    """Off-chip (KB) and on-chip (MB) traffic per accelerator (Figure 13)."""
    raw = run_networks(networks=networks, scale=scale, seed=seed)
    return {
        network: {
            accel: {
                "offchip_kb": result.dram_bytes / 1e3,
                "onchip_mb": result.sram_bytes / 1e6,
            }
            for accel, result in per_accel.items()
        }
        for network, per_accel in raw.items()
    }


def format_fig13(scale: float = 0.25, seed: int = 1) -> str:
    """ASCII rendition of Figure 13."""
    data = run_fig13(scale=scale, seed=seed)
    offchip = {
        network: {accel: stats["offchip_kb"] for accel, stats in per.items()}
        for network, per in data.items()
    }
    onchip = {
        network: {accel: stats["onchip_mb"] for accel, stats in per.items()}
        for network, per in data.items()
    }
    return (
        format_series(offchip, title="Figure 13 (top): off-chip traffic (KB)")
        + "\n\n"
        + format_series(onchip, title="Figure 13 (bottom): on-chip traffic (MB)")
    )


def run_fig14(
    layers: tuple[str, ...] = DEFAULT_LAYERS,
    scale: float = 1.0,
    seed: int = 1,
) -> dict[str, dict[str, dict[str, float]]]:
    """Off-chip traffic breakdown and SRAM miss rate per layer (Figure 14).

    Everything is normalised to LoAS, as in the paper.
    """
    raw = run_layers(layers=layers, scale=scale, seed=seed)
    output: dict[str, dict[str, dict[str, float]]] = {}
    for layer, per_accel in raw.items():
        loas = per_accel["LoAS"]
        loas_total = loas.dram_bytes or 1.0
        loas_miss = loas.sram_miss_rate or 1e-9
        output[layer] = {}
        for accel, result in per_accel.items():
            breakdown = result.dram.as_dict()
            output[layer][accel] = {
                "weight": breakdown.get("weight", 0.0) / loas_total,
                "input": breakdown.get("input", 0.0) / loas_total,
                "psum": breakdown.get("psum", 0.0) / loas_total,
                "format": breakdown.get("format", 0.0) / loas_total,
                "output": breakdown.get("output", 0.0) / loas_total,
                "total": result.dram_bytes / loas_total,
                "normalized_miss_rate": result.sram_miss_rate / loas_miss,
            }
    return output


def format_fig14(scale: float = 0.5, seed: int = 1) -> str:
    """ASCII rendition of Figure 14."""
    data = run_fig14(scale=scale, seed=seed)
    blocks = []
    for layer, per_accel in data.items():
        rows = [
            [
                accel,
                stats["input"],
                stats["weight"],
                stats["psum"],
                stats["format"],
                stats["output"],
                stats["total"],
                stats["normalized_miss_rate"],
            ]
            for accel, stats in per_accel.items()
        ]
        blocks.append(
            format_table(
                ["Accelerator", "Input", "Weight", "Psum", "Format", "Output", "Total", "Norm. miss"],
                rows,
                title=f"Figure 14: off-chip traffic breakdown, normalised to LoAS ({layer})",
            )
        )
    return "\n\n".join(blocks)
