"""Figures 11, 18 and 19: preprocessing accuracy, SNN-vs-ANN, dense baselines.

* Figure 11 -- accuracy trajectory of the fine-tuned preprocessing: train a
  (toy) SNN, mask the low-activity neurons, fine-tune for 1 / 5 / 10 epochs.
* Figure 18 -- dual-sparse SNN on LoAS versus the dual-sparse ANN version of
  the same workload on SparTen and Gamma (energy and memory traffic).
* Figure 19 -- LoAS on the dual-sparse workload versus the dense SNN
  accelerators PTB and Stellar.

Figure 19 is a declarative sweep scenario; Figure 18 batches its ANN
baselines through :func:`repro.runner.run_ann_network` (one shared
evaluation per layer) and drives the LoAS side through the orchestrator;
Figure 11 is a bespoke (training) scenario.
"""

from __future__ import annotations

import numpy as np

from ..api.session import _legacy_shim_warning, default_session
from ..baselines import GammaANN, SparTenANN
from ..metrics.report import format_series, format_table
from ..runner import (
    Scenario,
    SimulatorSpec,
    SweepPlan,
    SweepRunner,
    WorkloadSpec,
    register_scenario,
    run_ann_network,
)
from ..snn.preprocessing import finetuned_preprocessing_experiment
from ..snn.training import (
    SpikingMLP,
    TrainingConfig,
    make_synthetic_classification,
    train,
)
from .sweeps import LOAS_FINETUNED, scaled_network

__all__ = [
    "run_fig11",
    "format_fig11",
    "run_fig18",
    "format_fig18",
    "run_fig19",
    "format_fig19",
]


def _fig11_preprocessing(
    num_samples: int = 400,
    num_features: int = 32,
    num_classes: int = 4,
    hidden: int = 64,
    epochs: int = 12,
    finetune_epochs: tuple[int, ...] = (1, 5, 10),
    seed: int = 0,
) -> dict[str, float]:
    """Accuracy before masking, after masking and after fine-tuning (Figure 11)."""
    rng = np.random.default_rng(seed)
    inputs, labels = make_synthetic_classification(num_samples, num_features, num_classes, rng=rng)
    split = int(0.8 * num_samples)
    train_x, train_y = inputs[:split], labels[:split]
    test_x, test_y = inputs[split:], labels[split:]

    model = SpikingMLP([num_features, hidden, num_classes], timesteps=4, rng=rng)
    config = TrainingConfig(epochs=epochs, learning_rate=0.05)
    train(model, train_x, train_y, config, rng=rng)

    outcome = finetuned_preprocessing_experiment(
        model,
        train_x,
        train_y,
        test_x,
        test_y,
        finetune_epochs=finetune_epochs,
        training=TrainingConfig(epochs=1, learning_rate=0.05),
        rng=rng,
    )
    result = {
        "origin": outcome.original_accuracy,
        "mask": outcome.masked_accuracy,
        "masked_fraction": outcome.masked_fraction,
    }
    for epoch, accuracy in outcome.finetuned_accuracy.items():
        result[f"ft_e{epoch}"] = accuracy
    return result


register_scenario(
    Scenario(
        name="fig11-preprocessing",
        description="Figure 11: fine-tuned preprocessing accuracy trajectory",
        run=_fig11_preprocessing,
        defaults=(("seed", 0),),
    )
)


def run_fig11(
    num_samples: int = 400,
    num_features: int = 32,
    num_classes: int = 4,
    hidden: int = 64,
    epochs: int = 12,
    finetune_epochs: tuple[int, ...] = (1, 5, 10),
    seed: int = 0,
) -> dict[str, float]:
    """Accuracy before masking, after masking and after fine-tuning (Figure 11).

    .. deprecated:: Shim over ``Session.run("fig11-preprocessing", ...)``.
    """
    _legacy_shim_warning("run_fig11", "fig11-preprocessing")
    return default_session().run(
        "fig11-preprocessing",
        num_samples=num_samples,
        num_features=num_features,
        num_classes=num_classes,
        hidden=hidden,
        epochs=epochs,
        finetune_epochs=finetune_epochs,
        seed=seed,
    ).payload


def format_fig11(seed: int = 0) -> str:
    """ASCII rendition of Figure 11."""
    data = default_session().run("fig11-preprocessing", seed=seed).payload
    rows = [[key, value] for key, value in data.items()]
    return format_table(["Stage", "Accuracy"], rows, title="Figure 11: fine-tuned preprocessing accuracy")


def _fig18_snn_vs_ann(
    network: str = "vgg16",
    scale: float = 1.0,
    seed: int = 1,
    workers: int | None = None,
    cache_dir=None,
    mp_context: str | None = None,
) -> dict[str, dict[str, float]]:
    """Dual-sparse SNN (LoAS) versus dual-sparse ANN (SparTen / Gamma), Figure 18."""
    snn_network = scaled_network(network, scale)
    plan = SweepPlan.product(
        "fig18-loas",
        (WorkloadSpec("network", network, scale=scale),),
        (LOAS_FINETUNED,),
        seeds=(seed,),
    )
    runner = SweepRunner(workers=workers, cache_dir=cache_dir, mp_context=mp_context)
    loas = next(iter(runner.run(plan)))[1]

    # One shared ANN evaluation per layer: both baselines consume the same
    # masks / matches / ReLU outputs (each simulator previously regenerated
    # identical tensors from an equal seed).
    ann_results = run_ann_network((SparTenANN(), GammaANN()), snn_network, seed)

    everything = {"LoAS (SNN)": loas, **{f"{k} (ANN)": v for k, v in ann_results.items()}}
    reference_energy = loas.energy_pj or 1.0
    reference_dram = loas.dram_bytes or 1.0
    reference_sram = loas.sram_bytes or 1.0
    return {
        name: {
            "normalized_energy": result.energy_pj / reference_energy,
            "normalized_dram": result.dram_bytes / reference_dram,
            "normalized_sram": result.sram_bytes / reference_sram,
            "data_movement_fraction": result.energy.data_movement_fraction(),
        }
        for name, result in everything.items()
    }


register_scenario(
    Scenario(
        name="fig18-snn-vs-ann",
        description="Figure 18: dual-sparse SNN (LoAS) vs dual-sparse ANN baselines",
        run=_fig18_snn_vs_ann,
        defaults=(
            ("network", "vgg16"),
            ("scale", 1.0),
            ("seed", 1),
            ("workers", None),
            ("cache_dir", None),
            ("mp_context", None),
        ),
    )
)


def run_fig18(
    network: str = "vgg16",
    scale: float = 1.0,
    seed: int = 1,
    workers: int | None = None,
    cache_dir=None,
) -> dict[str, dict[str, float]]:
    """Dual-sparse SNN (LoAS) versus dual-sparse ANN (SparTen / Gamma), Figure 18.

    .. deprecated:: Shim over ``Session.run("fig18-snn-vs-ann", ...)``.
    """
    _legacy_shim_warning("run_fig18", "fig18-snn-vs-ann")
    return default_session().run(
        "fig18-snn-vs-ann",
        workers=workers,
        cache_dir=cache_dir,
        network=network,
        scale=scale,
        seed=seed,
    ).payload


def format_fig18(scale: float = 0.25, seed: int = 1) -> str:
    """ASCII rendition of Figure 18."""
    return format_series(
        default_session().run("fig18-snn-vs-ann", scale=scale, seed=seed).payload,
        title="Figure 18: dual-sparse SNN vs dual-sparse ANN (normalised to LoAS)",
    )


def fig19_plan(
    network: str = "vgg16",
    scale: float = 1.0,
    seed: int = 1,
) -> SweepPlan:
    """LoAS and the dense SNN accelerators over one network -- as data."""
    return SweepPlan.product(
        "fig19",
        (WorkloadSpec("network", network, scale=scale),),
        (SimulatorSpec("LoAS"), SimulatorSpec("PTB"), SimulatorSpec("Stellar")),
        seeds=(seed,),
    )


def _shape_fig19(results, network: str = "vgg16", **_) -> dict[str, dict[str, float]]:
    per_accel = results.nested()[network]
    loas, ptb = per_accel["LoAS"], per_accel["PTB"]
    return {
        name: {
            "speedup_vs_ptb": ptb.cycles / result.cycles,
            "normalized_energy": result.energy_pj / loas.energy_pj,
            "normalized_dram": result.dram_bytes / loas.dram_bytes,
            "normalized_sram": result.sram_bytes / loas.sram_bytes,
        }
        for name, result in per_accel.items()
    }


register_scenario(
    Scenario(
        name="fig19-dense-baselines",
        description="Figure 19: LoAS vs the dense SNN accelerators PTB and Stellar",
        build=fig19_plan,
        shape=_shape_fig19,
        defaults=(("network", "vgg16"), ("scale", 1.0), ("seed", 1)),
    )
)


def run_fig19(
    network: str = "vgg16",
    scale: float = 1.0,
    seed: int = 1,
    workers: int | None = None,
) -> dict[str, dict[str, float]]:
    """LoAS versus the dense SNN accelerators PTB and Stellar (Figure 19).

    .. deprecated:: Shim over ``Session.run("fig19-dense-baselines", ...)``.
    """
    _legacy_shim_warning("run_fig19", "fig19-dense-baselines")
    return default_session().run(
        "fig19-dense-baselines", workers=workers, network=network, scale=scale, seed=seed
    ).payload


def format_fig19(scale: float = 0.25, seed: int = 1) -> str:
    """ASCII rendition of Figure 19."""
    return format_series(
        default_session().run("fig19-dense-baselines", scale=scale, seed=seed).payload,
        title="Figure 19: LoAS vs dense SNN accelerators (normalised to LoAS)",
    )
