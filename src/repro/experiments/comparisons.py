"""Figures 11, 18 and 19: preprocessing accuracy, SNN-vs-ANN, dense baselines.

* Figure 11 -- accuracy trajectory of the fine-tuned preprocessing: train a
  (toy) SNN, mask the low-activity neurons, fine-tune for 1 / 5 / 10 epochs.
* Figure 18 -- dual-sparse SNN on LoAS versus the dual-sparse ANN version of
  the same workload on SparTen and Gamma (energy and memory traffic).
* Figure 19 -- LoAS on the dual-sparse workload versus the dense SNN
  accelerators PTB and Stellar.
"""

from __future__ import annotations

import numpy as np

from ..baselines import (
    GammaANN,
    PTBSimulator,
    SparTenANN,
    StellarSimulator,
    ann_layer_tensors,
)
from ..core import LoASSimulator
from ..engine import AnnLayerEvaluation
from ..metrics.report import format_series, format_table
from ..metrics.results import aggregate_results
from ..snn.preprocessing import finetuned_preprocessing_experiment
from ..snn.training import (
    SpikingMLP,
    TrainingConfig,
    make_synthetic_classification,
    train,
)
from ..snn.workloads import get_network_workload
from .sweeps import scaled_network

__all__ = [
    "run_fig11",
    "format_fig11",
    "run_fig18",
    "format_fig18",
    "run_fig19",
    "format_fig19",
]


def run_fig11(
    num_samples: int = 400,
    num_features: int = 32,
    num_classes: int = 4,
    hidden: int = 64,
    epochs: int = 12,
    finetune_epochs: tuple[int, ...] = (1, 5, 10),
    seed: int = 0,
) -> dict[str, float]:
    """Accuracy before masking, after masking and after fine-tuning (Figure 11)."""
    rng = np.random.default_rng(seed)
    inputs, labels = make_synthetic_classification(num_samples, num_features, num_classes, rng=rng)
    split = int(0.8 * num_samples)
    train_x, train_y = inputs[:split], labels[:split]
    test_x, test_y = inputs[split:], labels[split:]

    model = SpikingMLP([num_features, hidden, num_classes], timesteps=4, rng=rng)
    config = TrainingConfig(epochs=epochs, learning_rate=0.05)
    train(model, train_x, train_y, config, rng=rng)

    outcome = finetuned_preprocessing_experiment(
        model,
        train_x,
        train_y,
        test_x,
        test_y,
        finetune_epochs=finetune_epochs,
        training=TrainingConfig(epochs=1, learning_rate=0.05),
        rng=rng,
    )
    result = {
        "origin": outcome.original_accuracy,
        "mask": outcome.masked_accuracy,
        "masked_fraction": outcome.masked_fraction,
    }
    for epoch, accuracy in outcome.finetuned_accuracy.items():
        result[f"ft_e{epoch}"] = accuracy
    return result


def format_fig11(seed: int = 0) -> str:
    """ASCII rendition of Figure 11."""
    data = run_fig11(seed=seed)
    rows = [[key, value] for key, value in data.items()]
    return format_table(["Stage", "Accuracy"], rows, title="Figure 11: fine-tuned preprocessing accuracy")


def run_fig18(
    network: str = "vgg16",
    scale: float = 1.0,
    seed: int = 1,
) -> dict[str, dict[str, float]]:
    """Dual-sparse SNN (LoAS) versus dual-sparse ANN (SparTen / Gamma), Figure 18."""
    snn_network = scaled_network(network, scale)
    loas = LoASSimulator().simulate_network(
        snn_network, rng=np.random.default_rng(seed), finetuned=True, preprocess=True
    )

    # One shared ANN evaluation per layer: both baselines consume the same
    # masks / matches / ReLU outputs (each simulator previously regenerated
    # identical tensors from an equal seed).
    rng = np.random.default_rng(seed)
    evaluations = [
        (layer.name, AnnLayerEvaluation(*ann_layer_tensors(layer, rng=rng)))
        for layer in snn_network.layers
    ]
    ann_results = {}
    for simulator in (SparTenANN(), GammaANN()):
        layer_results = [
            simulator.simulate_layer(
                evaluation.activations, evaluation.weights, name=name, evaluation=evaluation
            )
            for name, evaluation in evaluations
        ]
        ann_results[simulator.name] = aggregate_results(
            layer_results, accelerator=simulator.name, workload=network
        )

    everything = {"LoAS (SNN)": loas, **{f"{k} (ANN)": v for k, v in ann_results.items()}}
    reference_energy = loas.energy_pj or 1.0
    reference_dram = loas.dram_bytes or 1.0
    reference_sram = loas.sram_bytes or 1.0
    return {
        name: {
            "normalized_energy": result.energy_pj / reference_energy,
            "normalized_dram": result.dram_bytes / reference_dram,
            "normalized_sram": result.sram_bytes / reference_sram,
            "data_movement_fraction": result.energy.data_movement_fraction(),
        }
        for name, result in everything.items()
    }


def format_fig18(scale: float = 0.25, seed: int = 1) -> str:
    """ASCII rendition of Figure 18."""
    return format_series(run_fig18(scale=scale, seed=seed), title="Figure 18: dual-sparse SNN vs dual-sparse ANN (normalised to LoAS)")


def run_fig19(
    network: str = "vgg16",
    scale: float = 1.0,
    seed: int = 1,
) -> dict[str, dict[str, float]]:
    """LoAS versus the dense SNN accelerators PTB and Stellar (Figure 19)."""
    snn_network = scaled_network(network, scale)
    rng_seed = seed
    loas = LoASSimulator().simulate_network(snn_network, rng=np.random.default_rng(rng_seed))
    ptb = PTBSimulator().simulate_network(snn_network, rng=np.random.default_rng(rng_seed))
    stellar = StellarSimulator().simulate_network(snn_network, rng=np.random.default_rng(rng_seed))
    results = {"LoAS": loas, "PTB": ptb, "Stellar": stellar}
    return {
        name: {
            "speedup_vs_ptb": ptb.cycles / result.cycles,
            "normalized_energy": result.energy_pj / loas.energy_pj,
            "normalized_dram": result.dram_bytes / loas.dram_bytes,
            "normalized_sram": result.sram_bytes / loas.sram_bytes,
        }
        for name, result in results.items()
    }


def format_fig19(scale: float = 0.25, seed: int = 1) -> str:
    """ASCII rendition of Figure 19."""
    return format_series(run_fig19(scale=scale, seed=seed), title="Figure 19: LoAS vs dense SNN accelerators (normalised to LoAS)")
