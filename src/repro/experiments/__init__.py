"""One experiment module per table / figure of the LoAS evaluation.

============  ==========================================  =======================
Paper item    What it shows                                 Entry point
============  ==========================================  =======================
Table I       accelerator capability matrix                ``run_table1``
Table II      workload sparsity statistics                 ``run_table2``
Figure 5      GoSPA psum traffic, T=1 vs T=4               ``run_fig5``
Figure 11     fine-tuned preprocessing accuracy            ``run_fig11``
Figure 12     speedup & energy vs SNN baselines            ``run_fig12``
Figure 13     off-chip / on-chip traffic                   ``run_fig13``
Figure 14     traffic breakdown + SRAM miss rate           ``run_fig14``
Table IV      area / power breakdown                       ``run_table4``
Figure 15     power breakup pies                           ``run_table4``
Figure 16     temporal scalability                         ``run_fig16``
Figure 17     sparsity / timestep / size scalability       ``run_fig17``
Figure 18     dual-sparse SNN vs dual-sparse ANN           ``run_fig18``
Figure 19     LoAS vs dense SNN accelerators               ``run_fig19``
(DSE)         ArchSpec design-point sweeps                 ``dse-*`` scenarios
============  ==========================================  =======================

The ``dse-*`` scenarios (:mod:`repro.experiments.dse`) go beyond the paper:
they sweep :class:`~repro.arch.ArchSpec` hardware design points (TPPE
counts, SRAM capacities, timestep provisioning) through the same registry
and have no legacy ``run_*`` twins -- drive them via
``Session.run("dse-pe-scaling", ...)`` or ``python -m repro run``.

Every ``run_*`` function accepts a ``scale`` parameter (where applicable)
that proportionally shrinks the workload dimensions while preserving the
sparsity profiles, so the whole suite can be exercised quickly by the tests
and benchmarks; ``scale=1.0`` reproduces the paper-sized workloads.

Each experiment is also a registered *scenario*: importing this package
populates the :mod:`repro.runner` registry, after which any figure or table
runs through the public API::

    from repro.api import Session
    session = Session(workers=2, scale=0.25)
    result = session.run("fig13-traffic")        # ScenarioResult
    for partition in session.stream("fig13-traffic"):
        ...                                      # PartitionResult as it lands

The ``run_*`` functions in this package (and ``run_scenario``) predate the
:class:`~repro.api.Session` façade; they remain as deprecation shims that
forward to the module-level default session and return the unchanged
payloads.
"""

from .ablations import format_fig5, format_fig16, format_fig17, run_fig5, run_fig16, run_fig17
from .comparisons import (
    format_fig11,
    format_fig18,
    format_fig19,
    run_fig11,
    run_fig18,
    run_fig19,
)
from .performance import (
    format_fig12,
    format_fig13,
    format_fig14,
    run_fig12,
    run_fig13,
    run_fig14,
)
from ..runner import get_scenario, list_scenarios, run_scenario
from .dse import dse_pe_plan, dse_sram_plan, dse_timestep_plan
from .sweeps import (
    DEFAULT_LAYERS,
    DEFAULT_NETWORKS,
    layer_sweep_plan,
    network_sweep_plan,
    run_layers,
    run_networks,
    snn_accelerators,
)
from .tables import (
    format_table1,
    format_table2,
    format_table4,
    run_table1,
    run_table2,
    run_table4,
)

__all__ = [
    "DEFAULT_LAYERS",
    "DEFAULT_NETWORKS",
    "dse_pe_plan",
    "dse_sram_plan",
    "dse_timestep_plan",
    "format_fig5",
    "format_fig11",
    "format_fig12",
    "format_fig13",
    "format_fig14",
    "format_fig16",
    "format_fig17",
    "format_fig18",
    "format_fig19",
    "format_table1",
    "format_table2",
    "format_table4",
    "get_scenario",
    "layer_sweep_plan",
    "list_scenarios",
    "network_sweep_plan",
    "run_fig5",
    "run_fig11",
    "run_fig12",
    "run_fig13",
    "run_fig14",
    "run_fig16",
    "run_fig17",
    "run_fig18",
    "run_fig19",
    "run_layers",
    "run_networks",
    "run_scenario",
    "run_table1",
    "run_table2",
    "run_table4",
    "snn_accelerators",
]
