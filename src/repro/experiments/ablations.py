"""Figures 5, 16 and 17: motivation and ablation studies.

* Figure 5 -- off-chip partial-sum traffic of GoSPA (outer-product) running
  SNN layers with 1 vs 4 timesteps, the motivating observation that the
  temporal dimension multiplies psum traffic.
* Figure 16 -- (a) TPPE area / power scaling with the number of timesteps and
  (b) the silent-neuron ratio of VGG16 as the number of timesteps grows,
  with and without the fine-tuned preprocessing.
* Figure 17 -- LoAS scalability across weight sparsity levels, timesteps and
  layer size (V-L8 vs the SpikeTransformer hidden feed-forward layer).

Figures 5 and 17 are declarative sweep scenarios (``fig5-psum-traffic``,
``fig17-scalability``) executed by the orchestrator; Figure 16 is a bespoke
scenario (it measures the workload *generator*, not an accelerator).
"""

from __future__ import annotations

import numpy as np

from ..api.session import _legacy_shim_warning, default_session
from ..arch.area import tppe_scaling
from ..metrics.report import format_series, format_table
from ..runner import (
    Scenario,
    SimulatorSpec,
    SweepPlan,
    WorkloadSpec,
    register_scenario,
)
from ..snn.workloads import TABLE2_LAYER_PROFILES, get_layer_workload
from ..sparse.matrix import (
    mask_low_activity_neurons,
    random_spike_tensor,
    silent_neuron_fraction,
)

__all__ = [
    "run_fig5",
    "format_fig5",
    "run_fig16",
    "format_fig16",
    "run_fig17",
    "format_fig17",
]

_FIG5_LAYERS = ("A-L4", "V-L8", "R-L19")
_FIG5_TIMESTEPS = (1, 4)


def fig5_plan(
    layers: tuple[str, ...] = _FIG5_LAYERS,
    scale: float = 1.0,
    seed: int = 1,
    timesteps: tuple[int, ...] = _FIG5_TIMESTEPS,
) -> SweepPlan:
    """GoSPA-SNN over every (layer, T) pair -- the Figure 5 sweep as data."""
    gospa = SimulatorSpec("GoSPA-SNN")
    workloads = tuple(
        WorkloadSpec("layer", name, scale=scale, timesteps=t)
        for name in layers
        for t in timesteps
    )
    return SweepPlan.product("fig5", workloads, (gospa,), seeds=(seed,))


def _shape_fig5(results, **_) -> dict[str, dict[str, float]]:
    output: dict[str, dict[str, float]] = {}
    for cell, result in results:
        per_t = output.setdefault(cell.workload.name, {})
        per_t[f"T={cell.workload.timesteps}"] = result.dram.get("psum") / 1e3
    return output


register_scenario(
    Scenario(
        name="fig5-psum-traffic",
        description="Figure 5: GoSPA-SNN off-chip psum traffic at T=1 vs T=4",
        build=fig5_plan,
        shape=_shape_fig5,
        defaults=(
            ("layers", _FIG5_LAYERS),
            ("scale", 1.0),
            ("seed", 1),
            ("timesteps", _FIG5_TIMESTEPS),
        ),
    )
)


def run_fig5(
    layers: tuple[str, ...] = _FIG5_LAYERS,
    scale: float = 1.0,
    seed: int = 1,
    workers: int | None = None,
) -> dict[str, dict[str, float]]:
    """Off-chip psum traffic (KB) of GoSPA-SNN at T = 1 and T = 4 (Figure 5).

    .. deprecated:: Shim over ``Session.run("fig5-psum-traffic", ...)``.
    """
    _legacy_shim_warning("run_fig5", "fig5-psum-traffic")
    return default_session().run(
        "fig5-psum-traffic", workers=workers, layers=layers, scale=scale, seed=seed
    ).payload


def format_fig5(scale: float = 0.5, seed: int = 1) -> str:
    """ASCII rendition of Figure 5."""
    return format_series(
        default_session().run("fig5-psum-traffic", scale=scale, seed=seed).payload,
        title="Figure 5: off-chip psum traffic (KB) on GoSPA-SNN",
    )


def _fig16_temporal(
    timesteps: tuple[int, ...] = (4, 8, 16),
    scale: float = 0.25,
    seed: int = 0,
) -> dict[str, dict[str, float]]:
    """TPPE scaling and silent-neuron ratio versus timesteps (Figure 16)."""
    area: dict[str, float] = {}
    power: dict[str, float] = {}
    for t in timesteps:
        area_ratio, power_ratio = tppe_scaling(t)
        area[f"T={t}"] = area_ratio
        power[f"T={t}"] = power_ratio

    # Silent-neuron scaling on the VGG16 (V-L8) sparsity profile: more
    # timesteps mean more chances to fire, so the silent fraction decays; the
    # preprocessing recovers part of it.
    profile = TABLE2_LAYER_PROFILES["V-L8"]
    base_shape = get_layer_workload("V-L8").shape.scaled(scale)
    silent_origin: dict[str, float] = {}
    silent_ft: dict[str, float] = {}
    rng = np.random.default_rng(seed)
    reference = None
    for t in timesteps:
        per_timestep_fire = (1.0 - profile.silent_fraction) / 4.0
        silent_target = max(0.05, 1.0 - per_timestep_fire * t)
        spikes = random_spike_tensor(
            base_shape.m,
            base_shape.k,
            t,
            spike_sparsity=profile.spike_sparsity,
            silent_fraction=silent_target,
            rng=rng,
        )
        origin = silent_neuron_fraction(spikes)
        finetuned = silent_neuron_fraction(mask_low_activity_neurons(spikes, max_spikes=1))
        if reference is None:
            reference = origin
        silent_origin[f"T={t}"] = origin / reference
        silent_ft[f"T={t}"] = finetuned / reference
    return {
        "tppe_area_ratio": area,
        "tppe_power_ratio": power,
        "silent_ratio_origin": silent_origin,
        "silent_ratio_finetuned": silent_ft,
    }


register_scenario(
    Scenario(
        name="fig16-temporal",
        description="Figure 16: TPPE scaling + silent-neuron ratio vs timesteps",
        run=_fig16_temporal,
        defaults=(("timesteps", (4, 8, 16)), ("scale", 0.25), ("seed", 0)),
    )
)


def run_fig16(
    timesteps: tuple[int, ...] = (4, 8, 16),
    scale: float = 0.25,
    seed: int = 0,
) -> dict[str, dict[str, float]]:
    """TPPE scaling and silent-neuron ratio versus timesteps (Figure 16).

    .. deprecated:: Shim over ``Session.run("fig16-temporal", ...)``.
    """
    _legacy_shim_warning("run_fig16", "fig16-temporal")
    return default_session().run(
        "fig16-temporal", timesteps=timesteps, scale=scale, seed=seed
    ).payload


def format_fig16(scale: float = 0.25, seed: int = 0) -> str:
    """ASCII rendition of Figure 16."""
    return format_series(
        default_session().run("fig16-temporal", scale=scale, seed=seed).payload,
        title="Figure 16: temporal scalability",
    )


def fig17_plan(
    scale: float = 0.25,
    seed: int = 1,
    timesteps: tuple[int, ...] = (4, 8),
    weight_sparsities: tuple[float, ...] = (0.982, 0.684, 0.25),
) -> SweepPlan:
    """The three Figure 17 sub-sweeps as one tagged plan."""
    loas = SimulatorSpec("LoAS")
    weight_cells = SweepPlan.product(
        "fig17",
        tuple(
            WorkloadSpec(
                "layer", "V-L8", scale=scale, profile_overrides=(("weight_sparsity", level),)
            )
            for level in weight_sparsities
        ),
        (loas,),
        seeds=(seed,),
        tag="weight_sparsity",
    )
    timestep_cells = SweepPlan.product(
        "fig17",
        tuple(WorkloadSpec("layer", "V-L8", scale=scale, timesteps=t) for t in timesteps),
        tuple(SimulatorSpec("LoAS", config_timesteps=t) for t in timesteps),
        seeds=(seed,),
        tag="timesteps",
    )
    # The timestep sweep pairs workload T with a matching hardware config --
    # a diagonal, not a product; keep only the matching (workload, config)
    # cells of the cartesian plan.
    timestep_cells = SweepPlan(
        "fig17",
        tuple(
            cell
            for cell in timestep_cells.cells
            if cell.workload.timesteps == cell.simulator.config_timesteps
        ),
    )
    size_cells = SweepPlan.product(
        "fig17",
        tuple(WorkloadSpec("layer", name, scale=scale) for name in ("V-L8", "T-HFF")),
        (loas,),
        seeds=(seed,),
        tag="layer_size",
    )
    return weight_cells + timestep_cells + size_cells


def _shape_fig17(results, **_) -> dict[str, dict[str, float]]:
    output: dict[str, dict[str, float]] = {
        "weight_sparsity": {},
        "timesteps": {},
        "layer_size": {},
    }

    reference_cycles = None
    for cell, result in results.tagged("weight_sparsity"):
        if reference_cycles is None:
            reference_cycles = result.cycles
        level = dict(cell.workload.profile_overrides)["weight_sparsity"]
        output["weight_sparsity"][f"B={level:.1%}"] = reference_cycles / result.cycles

    reference_cycles = None
    for cell, result in results.tagged("timesteps"):
        if reference_cycles is None:
            reference_cycles = result.cycles
        # Relative performance (inverse latency); the paper reports only a
        # ~14 % loss when the number of timesteps doubles.
        output["timesteps"][f"T={cell.workload.timesteps}"] = reference_cycles / result.cycles

    for cell, result in results.tagged("layer_size"):
        throughput = (
            result.ops.get("true_accumulations", 0.0) / result.cycles if result.cycles else 0.0
        )
        output["layer_size"][cell.workload.name] = throughput
    reference = output["layer_size"]["V-L8"] or 1.0
    output["layer_size"] = {k: v / reference for k, v in output["layer_size"].items()}
    return output


register_scenario(
    Scenario(
        name="fig17-scalability",
        description="Figure 17: LoAS sensitivity to weight sparsity, T and layer size",
        build=fig17_plan,
        shape=_shape_fig17,
        defaults=(
            ("scale", 0.25),
            ("seed", 1),
            ("timesteps", (4, 8)),
            ("weight_sparsities", (0.982, 0.684, 0.25)),
        ),
    )
)


def run_fig17(
    scale: float = 0.25,
    seed: int = 1,
    timesteps: tuple[int, ...] = (4, 8),
    weight_sparsities: tuple[float, ...] = (0.982, 0.684, 0.25),
    workers: int | None = None,
) -> dict[str, dict[str, float]]:
    """LoAS scalability sweeps (Figure 17): weight sparsity, timesteps, layer size.

    .. deprecated:: Shim over ``Session.run("fig17-scalability", ...)``.
    """
    _legacy_shim_warning("run_fig17", "fig17-scalability")
    return default_session().run(
        "fig17-scalability",
        workers=workers,
        scale=scale,
        seed=seed,
        timesteps=timesteps,
        weight_sparsities=weight_sparsities,
    ).payload


def format_fig17(scale: float = 0.25, seed: int = 1) -> str:
    """ASCII rendition of Figure 17."""
    data = default_session().run("fig17-scalability", scale=scale, seed=seed).payload
    blocks = []
    for sweep, values in data.items():
        rows = [[label, value] for label, value in values.items()]
        blocks.append(format_table(["Setting", "Relative performance"], rows, title=f"Figure 17: {sweep}"))
    return "\n\n".join(blocks)
