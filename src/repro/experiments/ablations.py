"""Figures 5, 16 and 17: motivation and ablation studies.

* Figure 5 -- off-chip partial-sum traffic of GoSPA (outer-product) running
  SNN layers with 1 vs 4 timesteps, the motivating observation that the
  temporal dimension multiplies psum traffic.
* Figure 16 -- (a) TPPE area / power scaling with the number of timesteps and
  (b) the silent-neuron ratio of VGG16 as the number of timesteps grows,
  with and without the fine-tuned preprocessing.
* Figure 17 -- LoAS scalability across weight sparsity levels, timesteps and
  layer size (V-L8 vs the SpikeTransformer hidden feed-forward layer).
"""

from __future__ import annotations

import numpy as np

from ..arch.area import tppe_scaling
from ..baselines import GoSPASNN
from ..core import LoASConfig, LoASSimulator
from ..metrics.report import format_series, format_table
from ..snn.network import LayerShape
from ..snn.workloads import LayerWorkload, SparsityProfile, TABLE2_LAYER_PROFILES, get_layer_workload
from ..sparse.matrix import random_spike_tensor, silent_neuron_fraction, mask_low_activity_neurons

__all__ = [
    "run_fig5",
    "format_fig5",
    "run_fig16",
    "format_fig16",
    "run_fig17",
    "format_fig17",
]

_FIG5_LAYERS = ("A-L4", "V-L8", "R-L19")


def run_fig5(
    layers: tuple[str, ...] = _FIG5_LAYERS,
    scale: float = 1.0,
    seed: int = 1,
) -> dict[str, dict[str, float]]:
    """Off-chip psum traffic (KB) of GoSPA-SNN at T = 1 and T = 4 (Figure 5)."""
    results: dict[str, dict[str, float]] = {}
    for name in layers:
        per_t: dict[str, float] = {}
        for timesteps in (1, 4):
            workload = get_layer_workload(name, timesteps=timesteps)
            if scale != 1.0:
                workload = workload.scaled(scale)
            simulator = GoSPASNN()
            result = simulator.simulate_workload(workload, rng=np.random.default_rng(seed))
            per_t[f"T={timesteps}"] = result.dram.get("psum") / 1e3
        results[name] = per_t
    return results


def format_fig5(scale: float = 0.5, seed: int = 1) -> str:
    """ASCII rendition of Figure 5."""
    return format_series(
        run_fig5(scale=scale, seed=seed),
        title="Figure 5: off-chip psum traffic (KB) on GoSPA-SNN",
    )


def run_fig16(
    timesteps: tuple[int, ...] = (4, 8, 16),
    scale: float = 0.25,
    seed: int = 0,
) -> dict[str, dict[str, float]]:
    """TPPE scaling and silent-neuron ratio versus timesteps (Figure 16)."""
    area: dict[str, float] = {}
    power: dict[str, float] = {}
    for t in timesteps:
        area_ratio, power_ratio = tppe_scaling(t)
        area[f"T={t}"] = area_ratio
        power[f"T={t}"] = power_ratio

    # Silent-neuron scaling on the VGG16 (V-L8) sparsity profile: more
    # timesteps mean more chances to fire, so the silent fraction decays; the
    # preprocessing recovers part of it.
    profile = TABLE2_LAYER_PROFILES["V-L8"]
    base_shape = get_layer_workload("V-L8").shape.scaled(scale)
    silent_origin: dict[str, float] = {}
    silent_ft: dict[str, float] = {}
    rng = np.random.default_rng(seed)
    reference = None
    for t in timesteps:
        per_timestep_fire = (1.0 - profile.silent_fraction) / 4.0
        silent_target = max(0.05, 1.0 - per_timestep_fire * t)
        spikes = random_spike_tensor(
            base_shape.m,
            base_shape.k,
            t,
            spike_sparsity=profile.spike_sparsity,
            silent_fraction=silent_target,
            rng=rng,
        )
        origin = silent_neuron_fraction(spikes)
        finetuned = silent_neuron_fraction(mask_low_activity_neurons(spikes, max_spikes=1))
        if reference is None:
            reference = origin
        silent_origin[f"T={t}"] = origin / reference
        silent_ft[f"T={t}"] = finetuned / reference
    return {
        "tppe_area_ratio": area,
        "tppe_power_ratio": power,
        "silent_ratio_origin": silent_origin,
        "silent_ratio_finetuned": silent_ft,
    }


def format_fig16(scale: float = 0.25, seed: int = 0) -> str:
    """ASCII rendition of Figure 16."""
    return format_series(run_fig16(scale=scale, seed=seed), title="Figure 16: temporal scalability")


def run_fig17(
    scale: float = 0.25,
    seed: int = 1,
    timesteps: tuple[int, ...] = (4, 8),
    weight_sparsities: tuple[float, ...] = (0.982, 0.684, 0.25),
) -> dict[str, dict[str, float]]:
    """LoAS scalability sweeps (Figure 17): weight sparsity, timesteps, layer size."""
    results: dict[str, dict[str, float]] = {"weight_sparsity": {}, "timesteps": {}, "layer_size": {}}
    base = get_layer_workload("V-L8").scaled(scale)

    # Sweep 1: weight sparsity (High / Medium / Low).
    reference_cycles = None
    for sparsity_level in weight_sparsities:
        profile = SparsityProfile(
            base.profile.spike_sparsity,
            base.profile.silent_fraction,
            base.profile.silent_fraction_finetuned,
            sparsity_level,
        )
        workload = LayerWorkload(base.shape, profile)
        result = LoASSimulator().simulate_workload(workload, rng=np.random.default_rng(seed))
        if reference_cycles is None:
            reference_cycles = result.cycles
        results["weight_sparsity"][f"B={sparsity_level:.1%}"] = reference_cycles / result.cycles

    # Sweep 2: timesteps.
    reference_cycles = None
    for t in timesteps:
        shape = LayerShape(base.shape.name, base.shape.m, base.shape.k, base.shape.n, t)
        workload = LayerWorkload(shape, base.profile)
        config = LoASConfig().with_timesteps(t)
        result = LoASSimulator(config).simulate_workload(workload, rng=np.random.default_rng(seed))
        if reference_cycles is None:
            reference_cycles = result.cycles
        # Relative performance (inverse latency); the paper reports only a
        # ~14 % loss when the number of timesteps doubles.
        results["timesteps"][f"T={t}"] = reference_cycles / result.cycles

    # Sweep 3: layer size (V-L8 vs the SpikeTransformer hidden FF layer).
    for layer_name in ("V-L8", "T-HFF"):
        workload = get_layer_workload(layer_name).scaled(scale)
        result = LoASSimulator().simulate_workload(workload, rng=np.random.default_rng(seed))
        throughput = result.ops.get("true_accumulations", 0.0) / result.cycles if result.cycles else 0.0
        results["layer_size"][layer_name] = throughput
    reference = results["layer_size"]["V-L8"] or 1.0
    results["layer_size"] = {k: v / reference for k, v in results["layer_size"].items()}
    return results


def format_fig17(scale: float = 0.25, seed: int = 1) -> str:
    """ASCII rendition of Figure 17."""
    data = run_fig17(scale=scale, seed=seed)
    blocks = []
    for sweep, values in data.items():
        rows = [[label, value] for label, value in values.items()]
        blocks.append(format_table(["Setting", "Relative performance"], rows, title=f"Figure 17: {sweep}"))
    return "\n\n".join(blocks)
