"""Shared sweep declarations for the experiment modules.

This module declares the network / representative-layer sweeps as
:class:`SweepPlan` data and registers them as the ``"networks"`` and
``"layers"`` scenarios; execution happens through
:class:`repro.api.Session` (which batches each network walk layer-major --
one evaluation per layer drives every simulator -- and can spread
independent cells over a worker pool).  The ``run_networks`` /
``run_layers`` functions remain as deprecation shims over the default
session, returning the unchanged ``{workload: {accelerator: result}}``
payloads.
"""

from __future__ import annotations

from ..api.session import _legacy_shim_warning, default_session
from ..arch.spec import resolve_arch
from ..core import LoASConfig
from ..runner import (
    Scenario,
    SimulatorSpec,
    SweepPlan,
    WorkloadSpec,
    register_scenario,
)
from ..snn.workloads import NetworkWorkload, get_network_workload

__all__ = [
    "snn_accelerators",
    "network_sweep_plan",
    "layer_sweep_plan",
    "run_networks",
    "run_layers",
    "DEFAULT_NETWORKS",
    "DEFAULT_LAYERS",
    "SNN_SIMULATORS",
    "LOAS_FINETUNED",
]

#: Full-network workloads evaluated in Figures 12 and 13.
DEFAULT_NETWORKS = ("alexnet", "vgg16", "resnet19")

#: Representative layers evaluated in Figure 14.
DEFAULT_LAYERS = ("A-L4", "V-L8", "R-L19")

#: The dual-sparse SNN accelerators compared throughout the evaluation.
SNN_SIMULATORS = (
    SimulatorSpec("SparTen-SNN"),
    SimulatorSpec("GoSPA-SNN"),
    SimulatorSpec("Gamma-SNN"),
    SimulatorSpec("LoAS"),
)

#: LoAS with the fine-tuned preprocessing (the "LoAS-FT" series).
LOAS_FINETUNED = SimulatorSpec(
    "LoAS", label="LoAS-FT", finetuned=True, kwargs=(("preprocess", True),)
)


def snn_accelerators(config=None) -> dict[str, object]:
    """The dual-sparse SNN accelerators compared throughout the evaluation."""
    return {spec.label: spec.build(config) for spec in SNN_SIMULATORS}


def _shared_config(config, arch, arch_overrides):
    """Resolve the plan-level hardware configuration.

    ``arch`` / ``arch_overrides`` name an :class:`~repro.arch.ArchSpec`
    design point shared by every cell of the plan (result labels stay the
    historical accelerator names); passing both an explicit ``config`` and
    an ``arch`` is ambiguous and rejected.
    """
    if arch is None and not arch_overrides:
        return config
    if config is not None:
        raise ValueError("pass either config or arch/arch_overrides, not both")
    return LoASConfig(resolve_arch(arch, arch_overrides))


def network_sweep_plan(
    networks: tuple[str, ...] = DEFAULT_NETWORKS,
    scale: float = 1.0,
    seed: int = 1,
    include_finetuned: bool = True,
    config=None,
    arch=None,
    arch_overrides=(),
) -> SweepPlan:
    """Declarative Figure 12/13 sweep: every accelerator x every network."""
    simulators = SNN_SIMULATORS + ((LOAS_FINETUNED,) if include_finetuned else ())
    workloads = tuple(WorkloadSpec("network", name, scale=scale) for name in networks)
    return SweepPlan.product(
        "networks",
        workloads,
        simulators,
        seeds=(seed,),
        config=_shared_config(config, arch, arch_overrides),
    )


def layer_sweep_plan(
    layers: tuple[str, ...] = DEFAULT_LAYERS,
    scale: float = 1.0,
    seed: int = 1,
    config=None,
    arch=None,
    arch_overrides=(),
) -> SweepPlan:
    """Declarative Figure 14 sweep: every accelerator x representative layer."""
    workloads = tuple(WorkloadSpec("layer", name, scale=scale) for name in layers)
    return SweepPlan.product(
        "layers",
        workloads,
        SNN_SIMULATORS,
        seeds=(seed,),
        config=_shared_config(config, arch, arch_overrides),
    )


def run_networks(
    networks: tuple[str, ...] = DEFAULT_NETWORKS,
    scale: float = 1.0,
    seed: int = 1,
    include_finetuned: bool = True,
    config=None,
    workers: int | None = None,
):
    """Simulate every accelerator on every full-network workload.

    .. deprecated:: Shim over ``Session.run("networks", ...)``; the returned
        ``{network: {accelerator: result}}`` payload is unchanged.
    """
    _legacy_shim_warning("run_networks", "networks")
    return default_session().run(
        "networks",
        workers=workers,
        networks=networks,
        scale=scale,
        seed=seed,
        include_finetuned=include_finetuned,
        config=config,
    ).payload


def run_layers(
    layers: tuple[str, ...] = DEFAULT_LAYERS,
    scale: float = 1.0,
    seed: int = 1,
    config=None,
    workers: int | None = None,
):
    """Simulate every accelerator on every representative layer workload.

    .. deprecated:: Shim over ``Session.run("layers", ...)``; the returned
        payload is unchanged.
    """
    _legacy_shim_warning("run_layers", "layers")
    return default_session().run(
        "layers", workers=workers, layers=layers, scale=scale, seed=seed, config=config
    ).payload


def scaled_network(name: str, scale: float) -> NetworkWorkload:
    """Convenience wrapper: a (possibly scaled) full-network workload."""
    network = get_network_workload(name)
    return network.scaled(scale) if scale != 1.0 else network


register_scenario(
    Scenario(
        name="networks",
        description="Every dual-sparse SNN accelerator over the Table II networks",
        build=network_sweep_plan,
        shape=lambda results, **_: results.nested(),
        defaults=(
            ("networks", DEFAULT_NETWORKS),
            ("scale", 1.0),
            ("seed", 1),
            ("include_finetuned", True),
            ("config", None),
            ("arch", None),
            ("arch_overrides", ()),
        ),
    )
)

register_scenario(
    Scenario(
        name="layers",
        description="Every dual-sparse SNN accelerator over the representative layers",
        build=layer_sweep_plan,
        shape=lambda results, **_: results.nested(),
        defaults=(
            ("layers", DEFAULT_LAYERS),
            ("scale", 1.0),
            ("seed", 1),
            ("config", None),
            ("arch", None),
            ("arch_overrides", ()),
        ),
    )
)
