"""Shared sweep helpers for the experiment modules.

Every experiment module exposes a ``run(...)`` function returning a plain
dictionary of results plus a ``format_result`` helper producing the ASCII
table printed by the benchmark harness.  The helpers here implement the
common pattern: run a set of accelerators over a set of workloads and gather
the :class:`~repro.metrics.results.SimulationResult` objects.
"""

from __future__ import annotations

import numpy as np

from ..baselines import GammaSNN, GoSPASNN, SparTenSNN
from ..core import LoASSimulator
from ..metrics.results import SimulationResult
from ..snn.workloads import NetworkWorkload, get_layer_workload, get_network_workload

__all__ = [
    "snn_accelerators",
    "run_networks",
    "run_layers",
    "DEFAULT_NETWORKS",
    "DEFAULT_LAYERS",
]

#: Full-network workloads evaluated in Figures 12 and 13.
DEFAULT_NETWORKS = ("alexnet", "vgg16", "resnet19")

#: Representative layers evaluated in Figure 14.
DEFAULT_LAYERS = ("A-L4", "V-L8", "R-L19")


def snn_accelerators(config=None) -> dict[str, object]:
    """The dual-sparse SNN accelerators compared throughout the evaluation."""
    return {
        "SparTen-SNN": SparTenSNN(config),
        "GoSPA-SNN": GoSPASNN(config),
        "Gamma-SNN": GammaSNN(config),
        "LoAS": LoASSimulator(config),
    }


def run_networks(
    networks: tuple[str, ...] = DEFAULT_NETWORKS,
    scale: float = 1.0,
    seed: int = 1,
    include_finetuned: bool = True,
    config=None,
) -> dict[str, dict[str, SimulationResult]]:
    """Simulate every accelerator on every full-network workload.

    Returns ``{network: {accelerator: result}}``; when ``include_finetuned``
    is set an extra ``"LoAS-FT"`` entry runs LoAS with the fine-tuned
    preprocessing.  ``scale`` shrinks the layer dimensions proportionally for
    quick runs (sparsity profiles are preserved).
    """
    results: dict[str, dict[str, SimulationResult]] = {}
    for name in networks:
        network = get_network_workload(name)
        if scale != 1.0:
            network = network.scaled(scale)
        per_accelerator: dict[str, SimulationResult] = {}
        for accel_name, simulator in snn_accelerators(config).items():
            per_accelerator[accel_name] = simulator.simulate_network(
                network, rng=np.random.default_rng(seed)
            )
        if include_finetuned:
            per_accelerator["LoAS-FT"] = LoASSimulator(config).simulate_network(
                network, rng=np.random.default_rng(seed), finetuned=True, preprocess=True
            )
        results[name] = per_accelerator
    return results


def run_layers(
    layers: tuple[str, ...] = DEFAULT_LAYERS,
    scale: float = 1.0,
    seed: int = 1,
    config=None,
) -> dict[str, dict[str, SimulationResult]]:
    """Simulate every accelerator on every representative layer workload."""
    results: dict[str, dict[str, SimulationResult]] = {}
    for name in layers:
        workload = get_layer_workload(name)
        if scale != 1.0:
            workload = workload.scaled(scale)
        per_accelerator: dict[str, SimulationResult] = {}
        for accel_name, simulator in snn_accelerators(config).items():
            per_accelerator[accel_name] = simulator.simulate_workload(
                workload, rng=np.random.default_rng(seed)
            )
        results[name] = per_accelerator
    return results


def scaled_network(name: str, scale: float) -> NetworkWorkload:
    """Convenience wrapper: a (possibly scaled) full-network workload."""
    network = get_network_workload(name)
    return network.scaled(scale) if scale != 1.0 else network
