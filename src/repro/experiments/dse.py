"""Design-space exploration scenarios over :class:`~repro.arch.ArchSpec` points.

The paper evaluates *one* machine (Table III) plus two ablations; with
hardware design points now declarative data, the natural next workload
family is sweeping the machine itself.  Three registered scenarios cover the
classic axes:

* ``dse-pe-scaling``   -- LoAS cycles/energy across TPPE counts,
* ``dse-sram-sweep``   -- traffic/energy of the capacity-sensitive models
  across global-SRAM capacities (a **pure-cost** sweep: every design point
  shares one cached evaluation per layer),
* ``dse-timestep-ablation`` -- the paper's timestep ablation (Figures 16a /
  17 middle) rebuilt on the arch axis: each point re-provisions the hardware
  *and* re-timesteps the workload (the one tensor-coupled arch knob).

All three accept ``arch`` (a preset name, default ``"loas-32nm"``) and
``arch_overrides`` (flat ``(("group.field", value), ...)`` pairs), so the
CLI drives them with ``--arch`` and ``--set arch.<path>=<value>``::

    python -m repro run dse-pe-scaling --arch loas-32nm --scale 0.25
    python -m repro run dse-sram-sweep --set "arch.pe.num_tppes=32"
"""

from __future__ import annotations

from ..arch.area import tppe_scaling
from ..arch.spec import DEFAULT_ARCH, normalize_overrides, resolve_arch
from ..runner import (
    Scenario,
    SimulatorSpec,
    SweepPlan,
    WorkloadSpec,
    register_scenario,
)

__all__ = [
    "dse_pe_plan",
    "dse_sram_plan",
    "dse_timestep_plan",
]

#: TPPE counts swept by ``dse-pe-scaling`` (the paper's machine is 16).
DEFAULT_PE_COUNTS = (4, 8, 16, 32)

#: Representative layer the DSE scenarios default to.  A-L4 has the largest
#: row dimension of the Table II layers (M = 64), so the TPPE wave schedule
#: actually changes across the swept PE counts even at reduced scale.
DEFAULT_DSE_LAYER = "A-L4"

#: Global-SRAM capacities (KB) swept by ``dse-sram-sweep`` (paper: 256 KB).
#: The low points sit below the default layer's spike-train working set, so
#: the refetch/spill penalties genuinely engage.
DEFAULT_SRAM_KB = (16, 32, 64, 128, 256)

#: The capacity-sensitive models compared by ``dse-sram-sweep``.
DEFAULT_SRAM_SIMULATORS = ("SparTen-SNN", "Gamma-SNN", "LoAS")

#: Timestep points of ``dse-timestep-ablation`` (paper reference: T = 4).
DEFAULT_DSE_TIMESTEPS = (4, 8, 16)


def dse_pe_plan(
    layer: str = DEFAULT_DSE_LAYER,
    scale: float = 0.5,
    seed: int = 1,
    arch: str = DEFAULT_ARCH,
    pe_counts: tuple[int, ...] = DEFAULT_PE_COUNTS,
    arch_overrides: tuple[tuple[str, object], ...] = (),
) -> SweepPlan:
    """LoAS over one representative layer at every TPPE count (pure cost)."""
    archs = tuple(
        (arch, normalize_overrides(arch_overrides) + (("pe.num_tppes", int(count)),))
        for count in pe_counts
    )
    return SweepPlan.product(
        "dse-pe-scaling",
        (WorkloadSpec("layer", layer, scale=scale),),
        (SimulatorSpec("LoAS"),),
        seeds=(seed,),
        archs=archs,
    )


def _unique_key(taken, base: str) -> str:
    """First of ``base``, ``base#2``, ``base#3``... for which ``taken`` is false.

    Payload rows are keyed by the swept override *value*, so a duplicated
    axis point would silently overwrite its twin; this mirrors the ``#<n>``
    label de-duplication the plan layer applies to arch points.
    """
    key, ordinal = base, 1
    while taken(key):
        ordinal += 1
        key = "%s#%d" % (base, ordinal)
    return key


def _shape_dse_pe(results, **_) -> dict[str, dict[str, float]]:
    output: dict[str, dict[str, float]] = {}
    reference_cycles = None
    for cell, result in results:
        count = dict(cell.simulator.arch_overrides)["pe.num_tppes"]
        if reference_cycles is None:
            reference_cycles = result.cycles
        output[_unique_key(output.__contains__, "PE=%d" % count)] = {
            "cycles": result.cycles,
            "compute_cycles": result.compute_cycles,
            "memory_cycles": result.memory_cycles,
            "speedup_vs_first": reference_cycles / result.cycles,
            "energy_pj": result.energy_pj,
            "pe_utilization": result.extra.get("pe_utilization", 0.0),
        }
    return output


def dse_sram_plan(
    layer: str = DEFAULT_DSE_LAYER,
    scale: float = 0.5,
    seed: int = 1,
    arch: str = DEFAULT_ARCH,
    capacities_kb: tuple[int, ...] = DEFAULT_SRAM_KB,
    simulators: tuple[str, ...] = DEFAULT_SRAM_SIMULATORS,
    arch_overrides: tuple[tuple[str, object], ...] = (),
) -> SweepPlan:
    """Capacity-sensitive models at every global-SRAM capacity (pure cost).

    All design points share one cached evaluation per (layer, variant): the
    SRAM capacity only re-prices refetches and spills, never the tensors.
    """
    archs = tuple(
        (arch, normalize_overrides(arch_overrides) + (("memory.global_cache_bytes", int(kb) * 1024),))
        for kb in capacities_kb
    )
    return SweepPlan.product(
        "dse-sram-sweep",
        (WorkloadSpec("layer", layer, scale=scale),),
        tuple(SimulatorSpec(name) for name in simulators),
        seeds=(seed,),
        archs=archs,
    )


def _shape_dse_sram(results, **_) -> dict[str, dict[str, dict[str, float]]]:
    output: dict[str, dict[str, dict[str, float]]] = {}
    for cell, result in results:
        capacity = dict(cell.simulator.arch_overrides)["memory.global_cache_bytes"]
        label = _unique_key(
            lambda key: cell.simulator.key in output.get(key, {}),
            "SRAM=%dKB" % (capacity // 1024),
        )
        output.setdefault(label, {})[cell.simulator.key] = {
            "cycles": result.cycles,
            "offchip_kb": result.dram_bytes / 1e3,
            "onchip_kb": result.sram_bytes / 1e3,
            "energy_pj": result.energy_pj,
        }
    return output


def dse_timestep_plan(
    layer: str = DEFAULT_DSE_LAYER,
    scale: float = 0.5,
    seed: int = 1,
    arch: str = DEFAULT_ARCH,
    timesteps: tuple[int, ...] = DEFAULT_DSE_TIMESTEPS,
    arch_overrides: tuple[tuple[str, object], ...] = (),
) -> SweepPlan:
    """LoAS at every timestep point, hardware and workload re-provisioned.

    ``pe.timesteps`` is the one tensor-coupled arch field: each point gets
    its own workload fingerprint (and hence its own evaluation), reproducing
    the paper's ablation where both the datapath and the spike trains are
    provisioned for ``T``.
    """
    archs = tuple(
        (arch, normalize_overrides(arch_overrides) + (("pe.timesteps", int(t)),)) for t in timesteps
    )
    return SweepPlan.product(
        "dse-timestep-ablation",
        (WorkloadSpec("layer", layer, scale=scale),),
        (SimulatorSpec("LoAS"),),
        seeds=(seed,),
        archs=archs,
    )


def _shape_dse_timesteps(
    results, arch: str = DEFAULT_ARCH, arch_overrides=(), **_
) -> dict[str, dict[str, float]]:
    base = resolve_arch(arch, arch_overrides)
    output: dict[str, dict[str, float]] = {}
    reference_cycles = None
    for cell, result in results:
        # An axis whose every point matches the base preset's T never
        # re-timesteps the workload (no tensor coupling); the point's value
        # then lives only on the resolved design point.
        t = cell.workload.timesteps
        if t is None:
            t = (cell.simulator.resolve_arch() or base).pe.timesteps
        if reference_cycles is None:
            reference_cycles = result.cycles
        area_ratio, power_ratio = tppe_scaling(t, area=base.area)
        output[_unique_key(output.__contains__, "T=%d" % t)] = {
            "cycles": result.cycles,
            "relative_performance": reference_cycles / result.cycles,
            "energy_pj": result.energy_pj,
            "tppe_area_ratio": area_ratio,
            "tppe_power_ratio": power_ratio,
        }
    return output


register_scenario(
    Scenario(
        name="dse-pe-scaling",
        description="DSE: LoAS cycles/energy across TPPE counts (pure-cost arch sweep)",
        build=dse_pe_plan,
        shape=_shape_dse_pe,
        defaults=(
            ("layer", DEFAULT_DSE_LAYER),
            ("scale", 0.5),
            ("seed", 1),
            ("arch", DEFAULT_ARCH),
            ("pe_counts", DEFAULT_PE_COUNTS),
            ("arch_overrides", ()),
        ),
    )
)

register_scenario(
    Scenario(
        name="dse-sram-sweep",
        description="DSE: traffic/energy across global-SRAM capacities (pure-cost arch sweep)",
        build=dse_sram_plan,
        shape=_shape_dse_sram,
        defaults=(
            ("layer", DEFAULT_DSE_LAYER),
            ("scale", 0.5),
            ("seed", 1),
            ("arch", DEFAULT_ARCH),
            ("capacities_kb", DEFAULT_SRAM_KB),
            ("simulators", DEFAULT_SRAM_SIMULATORS),
            ("arch_overrides", ()),
        ),
    )
)

register_scenario(
    Scenario(
        name="dse-timestep-ablation",
        description="DSE: the paper's timestep ablation (hardware + workload re-provisioned)",
        build=dse_timestep_plan,
        shape=_shape_dse_timesteps,
        defaults=(
            ("layer", DEFAULT_DSE_LAYER),
            ("scale", 0.5),
            ("seed", 1),
            ("arch", DEFAULT_ARCH),
            ("timesteps", DEFAULT_DSE_TIMESTEPS),
            ("arch_overrides", ()),
        ),
    )
)
