"""Table I, Table II, Table IV and Figure 15 regeneration.

These experiments are either static (capability matrix, area / power model)
or statistical (measuring that the synthetic workload generator reproduces
the published sparsity numbers), so they run in well under a second and are
also exercised directly by the unit tests.
"""

from __future__ import annotations

import numpy as np

from ..api.session import _legacy_shim_warning, default_session
from ..arch.area import loas_system_cost, system_power_breakdown, tppe_power_breakdown
from ..baselines.capabilities import TABLE1_CAPABILITIES
from ..metrics.report import format_table
from ..runner import Scenario, register_scenario
from ..sparse.matrix import silent_neuron_fraction, sparsity
from ..snn.workloads import (
    TABLE2_LAYER_PROFILES,
    TABLE2_NETWORK_PROFILES,
    get_layer_workload,
)

__all__ = [
    "run_table1",
    "format_table1",
    "run_table2",
    "format_table2",
    "run_table4",
    "format_table4",
]


# --------------------------------------------------------------------- #
# Table I -- accelerator capability comparison
# --------------------------------------------------------------------- #
def _table1_capabilities() -> dict[str, dict[str, object]]:
    """Capability matrix of SpinalFlow, PTB, Stellar and LoAS."""
    return {
        name: {
            "spike_sparsity": caps.spike_sparsity,
            "weight_sparsity": caps.weight_sparsity,
            "parallelism": caps.parallelism,
            "neuron_model": caps.neuron_model,
        }
        for name, caps in TABLE1_CAPABILITIES.items()
    }


def format_table1() -> str:
    """ASCII rendition of Table I."""
    rows = [
        [name, "yes" if row["spike_sparsity"] else "no", "yes" if row["weight_sparsity"] else "no", row["parallelism"], row["neuron_model"]]
        for name, row in _table1_capabilities().items()
    ]
    return format_table(
        ["Accelerator", "Spike sparsity", "Weight sparsity", "Parallelism", "Neuron"],
        rows,
        title="Table I: SNN accelerator capabilities",
    )


# --------------------------------------------------------------------- #
# Table II -- workload sparsity statistics
# --------------------------------------------------------------------- #
def _table2_workloads(scale: float = 0.25, seed: int = 0) -> dict[str, dict[str, float]]:
    """Measure the generated workloads against the published Table II numbers.

    For each representative layer the spike tensor is generated at ``scale``
    of its published shape and the realised spike sparsity / silent-neuron
    fraction / weight sparsity are measured, alongside the published targets.
    """
    results: dict[str, dict[str, float]] = {}
    rng = np.random.default_rng(seed)
    for name, profile in TABLE2_LAYER_PROFILES.items():
        workload = get_layer_workload(name).scaled(scale)
        spikes, weights = workload.generate(rng=rng)
        spikes_ft, _ = workload.generate(rng=rng, finetuned=True)
        results[name] = {
            "target_spike_sparsity": profile.spike_sparsity,
            "measured_spike_sparsity": sparsity(spikes),
            "target_silent_fraction": profile.silent_fraction,
            "measured_silent_fraction": silent_neuron_fraction(spikes),
            "target_silent_fraction_ft": profile.silent_fraction_finetuned,
            "measured_silent_fraction_ft": silent_neuron_fraction(spikes_ft),
            "target_weight_sparsity": profile.weight_sparsity,
            "measured_weight_sparsity": sparsity(weights),
        }
    for name, profile in TABLE2_NETWORK_PROFILES.items():
        results[name] = {
            "target_spike_sparsity": profile.spike_sparsity,
            "target_silent_fraction": profile.silent_fraction,
            "target_silent_fraction_ft": profile.silent_fraction_finetuned,
            "target_weight_sparsity": profile.weight_sparsity,
        }
    return results


def format_table2(scale: float = 0.25, seed: int = 0) -> str:
    """ASCII rendition of Table II (published vs measured)."""
    data = _table2_workloads(scale=scale, seed=seed)
    rows = []
    for name, stats in data.items():
        rows.append(
            [
                name,
                stats["target_spike_sparsity"],
                stats.get("measured_spike_sparsity", float("nan")),
                stats["target_silent_fraction"],
                stats.get("measured_silent_fraction", float("nan")),
                stats["target_weight_sparsity"],
                stats.get("measured_weight_sparsity", float("nan")),
            ]
        )
    return format_table(
        ["Workload", "AvSpA (paper)", "AvSpA (meas)", "Silent (paper)", "Silent (meas)", "AvSpB (paper)", "AvSpB (meas)"],
        rows,
        title="Table II: workload sparsity statistics",
    )


# --------------------------------------------------------------------- #
# Table IV / Figure 15 -- area and power breakdown
# --------------------------------------------------------------------- #
def _table4_area_power(
    num_tppes: int | None = None,
    timesteps: int | None = None,
    arch: str = "loas-32nm",
    arch_overrides=(),
) -> dict[str, dict[str, float]]:
    """System and TPPE area / power breakdown plus the Figure 15 fractions.

    The cost tables and default provisioning come from the ``arch`` design
    point (its :class:`~repro.arch.AreaSpec`); ``num_tppes`` / ``timesteps``
    override the spec's provisioning when given explicitly.
    """
    from ..arch.spec import resolve_arch

    spec = resolve_arch(arch, arch_overrides)
    num_tppes = spec.pe.num_tppes if num_tppes is None else num_tppes
    timesteps = spec.pe.timesteps if timesteps is None else timesteps
    system = loas_system_cost(num_tppes=num_tppes, timesteps=timesteps, area=spec.area)
    tppe_components = spec.area.tppe_table()
    return {
        "system_area_mm2": {name: cost.area_mm2 for name, cost in system.items()},
        "system_power_mw": {name: cost.power_mw for name, cost in system.items()},
        "tppe_area_mm2": {name: cost.area_mm2 for name, cost in tppe_components.items()},
        "tppe_power_mw": {name: cost.power_mw for name, cost in tppe_components.items()},
        "system_power_fraction": system_power_breakdown(num_tppes, timesteps, area=spec.area),
        "tppe_power_fraction": tppe_power_breakdown(area=spec.area),
    }


def format_table4() -> str:
    """ASCII rendition of Table IV and the Figure 15 power breakup."""
    data = _table4_area_power()
    rows = [
        [name, data["system_area_mm2"][name], data["system_power_mw"][name]]
        for name in data["system_area_mm2"]
    ]
    system = format_table(
        ["Component", "Area (mm^2)", "Power (mW)"], rows, title="Table IV: LoAS breakdown"
    )
    tppe_rows = [
        [name, data["tppe_area_mm2"][name], data["tppe_power_mw"][name], data["tppe_power_fraction"][name]]
        for name in data["tppe_area_mm2"]
    ]
    tppe = format_table(
        ["TPPE unit", "Area (mm^2)", "Power (mW)", "Power fraction"],
        tppe_rows,
        title="Table IV / Figure 15: TPPE breakdown",
    )
    return system + "\n\n" + tppe


# The table experiments are static / statistical (no accelerator sweep), so
# they register as bespoke scenarios: named entry points in the same registry
# as the figure sweeps, without a SweepPlan behind them.
register_scenario(
    Scenario(
        name="table1-capabilities",
        description="Table I: accelerator capability matrix",
        run=_table1_capabilities,
    )
)

register_scenario(
    Scenario(
        name="table2-workloads",
        description="Table II: generated-workload sparsity vs published numbers",
        run=_table2_workloads,
        defaults=(("scale", 0.25), ("seed", 0)),
    )
)

register_scenario(
    Scenario(
        name="table4-area-power",
        description="Table IV / Figure 15: area and power breakdown",
        run=_table4_area_power,
        defaults=(
            ("num_tppes", None),
            ("timesteps", None),
            ("arch", "loas-32nm"),
            ("arch_overrides", ()),
        ),
    )
)

def run_table1() -> dict[str, dict[str, object]]:
    """Capability matrix of SpinalFlow, PTB, Stellar and LoAS (Table I).

    .. deprecated:: Shim over ``Session.run("table1-capabilities")``.
    """
    _legacy_shim_warning("run_table1", "table1-capabilities")
    return default_session().run("table1-capabilities").payload


def run_table2(scale: float = 0.25, seed: int = 0) -> dict[str, dict[str, float]]:
    """Generated-workload sparsity vs the published Table II numbers.

    .. deprecated:: Shim over ``Session.run("table2-workloads", ...)``.
    """
    _legacy_shim_warning("run_table2", "table2-workloads")
    return default_session().run("table2-workloads", scale=scale, seed=seed).payload


def run_table4(num_tppes: int = 16, timesteps: int = 4) -> dict[str, dict[str, float]]:
    """System and TPPE area / power breakdown plus the Figure 15 fractions.

    .. deprecated:: Shim over ``Session.run("table4-area-power", ...)``.
    """
    _legacy_shim_warning("run_table4", "table4-area-power")
    return default_session().run(
        "table4-area-power", num_tppes=num_tppes, timesteps=timesteps
    ).payload
