"""Workload-evaluation cache: one evaluation per workload fingerprint.

Every figure sweep in the paper drives *several* simulators over the *same*
workloads with the *same* seeds: without sharing, each simulator regenerates
identical random tensors and recomputes identical statistics.  The cache
here makes workload evaluation a first-class, cacheable value.

Cache-key semantics
-------------------
A cached entry is keyed by the exact information that determines the
generated tensors:

* the **workload fingerprint** -- layer dimensions ``(m, k, n, t)``, the
  four sparsity-profile fractions, the weight bit-width and the
  ``finetuned`` flag (workload *names* are deliberately excluded: tensors
  depend only on shape and sparsity), and
* the **generator fingerprint** -- the full ``bit_generator.state`` of the
  :class:`numpy.random.Generator` at the moment of generation.

Keying on the generator state makes the cache exact for *sequences* of
layers: when ``simulate_network`` walks a network with one shared generator,
each layer's key captures the generator position, so two simulators walking
the same network with equal seeds hit the cache layer by layer.  On a hit
the generator is fast-forwarded to the recorded post-generation state, so
the caller's stream of randomness is bit-identical to having regenerated --
downstream draws cannot diverge.

Tier stack
----------
:class:`WorkloadEvaluationCache` orchestrates fingerprinting, generator
fast-forwarding and write-back over a stack of
:class:`~repro.engine.backend.CacheBackend` tiers: its own
:class:`~repro.engine.backend.MemoryBackend` LRU on top, then any **lower
tiers** -- the on-disk :class:`~repro.engine.DiskEvaluationCache` and/or a
network-addressed :class:`~repro.engine.backend.RemoteBackend` -- composed
with promote-on-hit by a :class:`~repro.engine.backend.TieredCache`.  A full
miss publishes the freshly generated tensors to every lower tier
immediately; once the simulators have *enriched* the evaluation (statistics
GEMMs, LIF outputs, compressions), :meth:`flush_writebacks` re-publishes the
entry so lower-tier hits skip that work too (the executor flushes after
every layer).

Generated tensors are marked non-writeable before they are shared, so a
misbehaving simulator cannot corrupt other simulators' results.
"""

from __future__ import annotations

import os
import threading

import numpy as np
import numpy.random  # noqa: F401 -- eager: numpy loads this lazily, and the
# first simulated workload should not pay the submodule-import cost.

from ..snn.workloads import LayerWorkload
from .backend import CacheBackend, CacheEntry, CacheStats, MemoryBackend, TieredCache
from .evaluation import LayerEvaluation

__all__ = [
    "ATTACHED_TIER",
    "CacheStats",
    "TENSOR_COUPLED_ARCH_FIELDS",
    "WorkloadEvaluationCache",
    "arch_tensor_fingerprint",
    "clear_default_cache",
    "default_cache",
    "generator_fingerprint",
    "workload_fingerprint",
]

#: Sentinel for :meth:`WorkloadEvaluationCache.evaluate`'s ``tiers``
#: parameter: consult whatever lower tiers are attached to the cache (the
#: default).  Callers that own tiers pass them explicitly instead of
#: attaching them to the process-wide cache -- an explicit stack is
#: thread-safe and cannot leak into unrelated runs.
ATTACHED_TIER = object()

#: Auto-flush bound: evaluate() flushes the pending write-backs itself once
#: this many accumulate, so callers that never call flush_writebacks()
#: (plain ``simulate_workload`` loops) cannot grow the list without bound.
_DIRTY_FLUSH_THRESHOLD = 64


def _freeze(value):
    """Recursively convert a bit-generator state into a hashable value."""
    if isinstance(value, dict):
        return tuple((key, _freeze(entry)) for key, entry in sorted(value.items()))
    if isinstance(value, np.ndarray):
        return (value.dtype.str, value.shape, value.tobytes())
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(entry) for entry in value)
    return value


def generator_fingerprint(rng: np.random.Generator):
    """Hashable fingerprint of a generator's exact current state."""
    return _freeze(rng.bit_generator.state)


#: The flat :class:`~repro.arch.spec.ArchSpec` paths whose value can affect
#: the *generated tensors* of a workload (everything else on an arch is a
#: pure cost parameter).  Hardware design points never enter the evaluation
#: cache key directly: when an arch-axis sweep overrides one of these fields,
#: the plan builder couples the value into ``WorkloadSpec.timesteps``, where
#: it joins the *workload* fingerprint below -- so a pure-cost sweep
#: (PE counts, SRAM capacity, energy constants) over N design points reuses
#: one cached evaluation per (layer, variant), while a timestep ablation
#: evaluates once per timestep point, exactly as the tensors require.
TENSOR_COUPLED_ARCH_FIELDS = ("pe.timesteps",)


def arch_tensor_fingerprint(spec) -> tuple:
    """The (tiny) subset of an arch spec that can affect generated tensors.

    See :data:`TENSOR_COUPLED_ARCH_FIELDS`: the provisioned timestep count is
    the only arch knob with a tensor-side twin.  Two specs with equal
    fingerprints here may share every cached evaluation.
    """
    return tuple((path, spec.get(path)) for path in TENSOR_COUPLED_ARCH_FIELDS)


def workload_fingerprint(workload: LayerWorkload, finetuned: bool = False):
    """Hashable fingerprint of everything that determines a workload's tensors."""
    shape = workload.shape
    profile = workload.profile
    return (
        shape.m,
        shape.k,
        shape.n,
        shape.t,
        profile.spike_sparsity,
        profile.silent_fraction,
        profile.silent_fraction_finetuned,
        profile.weight_sparsity,
        workload.weight_bits,
        bool(finetuned),
    )


class _Dirty:
    """One pending write-back: an entry whose evaluation may still change.

    ``baseline`` is the evaluation's derived-state *signature* at
    registration: the flush re-publishes when the signature differs, not
    when a count grows -- simulators both add artifacts (statistics,
    compressions) and deliberately drop them (``compress_output`` frees the
    full sums and LIF outputs it supersedes), and a count cannot see an
    add-and-drop that nets to zero.  The stored entry thereby mirrors the
    warm in-memory state, superseded artifacts included-out.
    """

    __slots__ = ("key", "entry", "lower", "baseline")

    def __init__(self, key, entry: CacheEntry, lower, baseline: tuple):
        self.key = key
        self.entry = entry
        self.lower = lower
        self.baseline = baseline


class WorkloadEvaluationCache:
    """LRU-topped tier stack of evaluations keyed by fingerprint.

    ``maxsize`` bounds the number of evaluations the in-process
    :class:`~repro.engine.backend.MemoryBackend` holds (the paper's three
    networks evaluated with and without fine-tuning need ~80 entries).
    The cache is thread-safe: the whole of :meth:`evaluate` -- lookup,
    fast-forward, generation and insertion -- runs under one internal lock,
    so concurrent callers sharing a cache (but not a generator) observe
    consistent entries and counters.  The coarse lock deliberately trades
    cross-thread concurrency for simplicity (generation work serialises);
    parallel sweeps scale across *processes* (:class:`repro.runner.SweepRunner`),
    each with its own cache, sharing evaluations through the lower tiers.

    **Lower tiers** (an on-disk
    :class:`~repro.engine.DiskEvaluationCache`, a network-addressed
    :class:`~repro.engine.backend.RemoteBackend`, or any
    :class:`~repro.engine.backend.CacheBackend`) attach with
    :meth:`attach_backends` (or the historical :meth:`attach_disk_tier`):
    an in-memory miss consults them top-down with promote-on-hit, and a
    full miss publishes the freshly generated tensors back to all of them.
    """

    def __init__(self, maxsize: int = 128, disk_tier=None, backends=None):
        self._memory = MemoryBackend(maxsize)
        self._lock = threading.RLock()
        if backends is not None and disk_tier is not None:
            raise ValueError("pass either disk_tier or backends, not both")
        if backends is not None:
            self._lower = tuple(backends)
        else:
            self._lower = (disk_tier,) if disk_tier is not None else ()
        self._lower_pid = os.getpid()
        self._dirty: list[_Dirty] = []
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0

    # ------------------------------------------------------------------ #
    # Introspection / configuration
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._memory)

    @property
    def maxsize(self) -> int:
        """The LRU's entry-count bound."""
        return self._memory.maxsize

    @property
    def evictions(self) -> int:
        """Entries the LRU dropped to respect ``maxsize``."""
        return self._memory.evictions

    @property
    def memory_backend(self) -> MemoryBackend:
        """The top (in-process LRU) tier."""
        return self._memory

    @property
    def lower_backends(self) -> tuple[CacheBackend, ...]:
        """The attached lower tiers, top-down (empty when none attached)."""
        with self._lock:
            return self._lower

    @property
    def disk_tier(self):
        """The first attached on-disk tier (``None`` when there is none)."""
        from .disk_cache import DiskEvaluationCache

        with self._lock:
            for backend in self._lower:
                if isinstance(backend, DiskEvaluationCache):
                    return backend
        return None

    @property
    def lower_attached_in_process(self) -> bool:
        """Whether the lower tiers were attached by *this* process.

        ``False`` means they arrived through a ``fork`` -- live backends
        hold locks and sockets that must not be shared across processes, so
        worker bootstrap (:func:`repro.runner.executor._ensure_backends`)
        rebuilds equivalent backends from specs instead of reusing them.
        """
        with self._lock:
            return self._lower_pid == os.getpid()

    def attach_backends(self, backends) -> None:
        """Replace the lower-tier stack (pass ``()`` to detach everything)."""
        with self._lock:
            self._lower = tuple(backends)
            self._lower_pid = os.getpid()

    def attach_disk_tier(self, tier) -> None:
        """Attach (or with ``None`` detach) a single shared lower tier.

        The historical single-tier surface; :meth:`attach_backends` installs
        a full stack.
        """
        self.attach_backends((tier,) if tier is not None else ())

    def clear(self) -> None:
        """Drop every cached evaluation and reset the hit/miss counters.

        The lower tiers, if attached, keep their entries (they are the
        cross-process tiers; clear them explicitly via their own
        ``clear()``).
        """
        with self._lock:
            self._memory.clear()
            self._dirty.clear()
            self.hits = 0
            self.misses = 0
            self.disk_hits = 0

    def resize(self, maxsize: int) -> None:
        """Change the entry bound, evicting least-recently-used overflow now."""
        self._memory.resize(maxsize)

    def stats(self) -> "CacheStats":
        """Snapshot of the hit/miss/eviction counters and current occupancy."""
        with self._lock:
            return CacheStats(
                hits=self.hits,
                misses=self.misses,
                evictions=self._memory.evictions,
                entries=len(self._memory),
                disk_hits=self.disk_hits,
                maxsize=self._memory.maxsize,
            )

    def cache_info(self) -> dict[str, int]:
        """:meth:`stats` as a plain dict (hits/misses/evictions/occupancy)."""
        return self.stats().as_dict()

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def evaluate(
        self,
        workload: LayerWorkload,
        rng: np.random.Generator,
        finetuned: bool = False,
        disk_tier=ATTACHED_TIER,
        tiers=ATTACHED_TIER,
    ) -> LayerEvaluation:
        """Return the (possibly cached) evaluation of ``workload``.

        On a cache hit the generator is advanced to the state it would have
        reached by regenerating, so callers sharing one generator across a
        sequence of layers observe bit-identical randomness either way.

        ``tiers`` selects the lower tiers for this call: the default
        :data:`ATTACHED_TIER` uses whatever :meth:`attach_backends`
        installed, an explicit backend or sequence of backends uses that
        stack without touching the attached one (so concurrent callers with
        different tiers cannot interfere), and ``None`` / ``()`` disables
        the lower tiers for this call.  ``disk_tier`` is the historical
        alias of the same parameter.
        """
        try:
            key = (workload_fingerprint(workload, finetuned), generator_fingerprint(rng))
        except AttributeError:
            # Custom workload objects without shape/profile fingerprints fall
            # back to uncached generation.
            spikes, weights = workload.generate(rng=rng, finetuned=finetuned)
            return LayerEvaluation(spikes, weights)
        with self._lock:
            lower = self._resolve_lower(tiers, disk_tier)
            if len(self._dirty) >= _DIRTY_FLUSH_THRESHOLD:
                self._flush_locked()
            stack = TieredCache((self._memory,) + lower)
            entry, level = stack.get(key)
            if entry is not None:
                if level == 0:
                    self.hits += 1
                else:
                    self.disk_hits += 1
                    if lower:
                        # A lower-tier hit may carry less than the simulators
                        # are about to compute (a v1 tensor-only entry, or a
                        # v2 entry from a run that exercised fewer
                        # simulators); remember it so the write-back pass can
                        # upgrade the stored entry in place.
                        self._dirty.append(
                            _Dirty(key, entry, lower, entry.evaluation.derived_signature())
                        )
                rng.bit_generator.state = entry.state_after
                return entry.evaluation
            self.misses += 1
            spikes, weights = workload.generate(rng=rng, finetuned=finetuned)
            spikes.setflags(write=False)
            weights.setflags(write=False)
            entry = CacheEntry(LayerEvaluation(spikes, weights), rng.bit_generator.state)
            stack.put(key, entry)
            if lower:
                self._dirty.append(
                    _Dirty(key, entry, lower, entry.evaluation.derived_signature())
                )
            return entry.evaluation

    def _resolve_lower(self, tiers, disk_tier) -> tuple[CacheBackend, ...]:
        selected = tiers if tiers is not ATTACHED_TIER else disk_tier
        if selected is ATTACHED_TIER:
            return self._lower
        if selected is None:
            return ()
        if isinstance(selected, (list, tuple)):
            return tuple(selected)
        return (selected,)

    # ------------------------------------------------------------------ #
    # Write-back
    # ------------------------------------------------------------------ #
    def flush_writebacks(self) -> int:
        """Re-publish enriched evaluations to their lower tiers.

        A full miss publishes tensors immediately, but the derived
        artifacts -- statistics GEMMs, LIF outputs, compressions,
        preprocessed children -- only exist after the simulators consumed
        the evaluation.  Calling this once they have (the sweep executor
        does so after every layer) refreshes the stored entries with the
        dehydrated derived state, which is what makes lower-tier-warm runs
        skip recomputation.  Entries whose evaluation gained nothing are
        dropped silently.  Returns the number of entries re-published.
        """
        with self._lock:
            return self._flush_locked()

    def _flush_locked(self) -> int:
        flushed = 0
        for dirty in self._dirty:
            if dirty.entry.evaluation.derived_signature() != dirty.baseline:
                for backend in dirty.lower:
                    backend.put(dirty.key, dirty.entry, replace=True)
                dirty.entry.packed_cache = None  # bytes shared across tiers only
                flushed += 1
        self._dirty.clear()
        return flushed


_DEFAULT_CACHE = WorkloadEvaluationCache()


def default_cache() -> WorkloadEvaluationCache:
    """The process-wide cache used by ``SimulatorBase.simulate_workload``."""
    return _DEFAULT_CACHE


def clear_default_cache() -> None:
    """Reset the process-wide cache (used by cold-start benchmarks)."""
    _DEFAULT_CACHE.clear()
