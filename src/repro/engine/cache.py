"""Workload-evaluation cache: one evaluation per workload fingerprint.

Every figure sweep in the paper drives *several* simulators over the *same*
workloads with the *same* seeds: without sharing, each simulator regenerates
identical random tensors and recomputes identical statistics.  The cache
here makes workload evaluation a first-class, cacheable value.

Cache-key semantics
-------------------
A cached entry is keyed by the exact information that determines the
generated tensors:

* the **workload fingerprint** -- layer dimensions ``(m, k, n, t)``, the
  four sparsity-profile fractions, the weight bit-width and the
  ``finetuned`` flag (workload *names* are deliberately excluded: tensors
  depend only on shape and sparsity), and
* the **generator fingerprint** -- the full ``bit_generator.state`` of the
  :class:`numpy.random.Generator` at the moment of generation.

Keying on the generator state makes the cache exact for *sequences* of
layers: when ``simulate_network`` walks a network with one shared generator,
each layer's key captures the generator position, so two simulators walking
the same network with equal seeds hit the cache layer by layer.  On a hit
the generator is fast-forwarded to the recorded post-generation state, so
the caller's stream of randomness is bit-identical to having regenerated --
downstream draws cannot diverge.

Generated tensors are marked non-writeable before they are shared, so a
misbehaving simulator cannot corrupt other simulators' results.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np
import numpy.random  # noqa: F401 -- eager: numpy loads this lazily, and the
# first simulated workload should not pay the submodule-import cost.

from ..snn.workloads import LayerWorkload
from .evaluation import LayerEvaluation

__all__ = [
    "ATTACHED_TIER",
    "CacheStats",
    "WorkloadEvaluationCache",
    "default_cache",
    "clear_default_cache",
    "workload_fingerprint",
    "generator_fingerprint",
]

#: Sentinel for :meth:`WorkloadEvaluationCache.evaluate`'s ``disk_tier``
#: parameter: consult whatever tier is attached to the cache (the default).
#: Callers that own a tier pass it explicitly instead of attaching it to the
#: process-wide cache -- an explicit tier is thread-safe and cannot leak
#: into unrelated runs.
ATTACHED_TIER = object()


@dataclass(frozen=True)
class CacheStats:
    """Counter snapshot of one cache tier.

    Shared by the in-memory LRU (:class:`WorkloadEvaluationCache`) and the
    on-disk tier (:class:`~repro.engine.disk_cache.DiskEvaluationCache`);
    fields that do not apply to a tier keep their defaults.

    Attributes
    ----------
    hits / misses:
        Lookups served from / absent from this tier since the last reset.
    evictions:
        Entries dropped to respect the tier's capacity bound (the LRU's
        ``maxsize``, the disk tier's ``max_bytes``).
    entries:
        Entries currently held.
    disk_hits:
        LRU only -- lookups absent from the LRU but served by the disk
        tier.  Counted separately from ``misses`` (which only counts full
        misses that regenerated tensors), so total lookups are
        ``hits + disk_hits + misses``.
    maxsize:
        LRU only -- the entry-count bound.
    stores:
        Disk tier only -- entries published since the last reset.
    corrupt_dropped:
        Disk tier only -- torn/corrupt entries deleted on load.
    total_bytes:
        Disk tier only -- sum of entry-file sizes currently on disk.
    """

    hits: int
    misses: int
    evictions: int
    entries: int
    disk_hits: int = 0
    maxsize: int | None = None
    stores: int = 0
    corrupt_dropped: int = 0
    total_bytes: int | None = None

    def as_dict(self) -> dict[str, int]:
        """The populated counters as a plain dict (``None`` fields omitted)."""
        out = {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": self.entries,
        }
        if self.maxsize is not None:
            out["disk_hits"] = self.disk_hits
            out["maxsize"] = self.maxsize
        if self.total_bytes is not None:
            out["stores"] = self.stores
            out["corrupt_dropped"] = self.corrupt_dropped
            out["total_bytes"] = self.total_bytes
        return out


def _freeze(value):
    """Recursively convert a bit-generator state into a hashable value."""
    if isinstance(value, dict):
        return tuple((key, _freeze(entry)) for key, entry in sorted(value.items()))
    if isinstance(value, np.ndarray):
        return (value.dtype.str, value.shape, value.tobytes())
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(entry) for entry in value)
    return value


def generator_fingerprint(rng: np.random.Generator):
    """Hashable fingerprint of a generator's exact current state."""
    return _freeze(rng.bit_generator.state)


def workload_fingerprint(workload: LayerWorkload, finetuned: bool = False):
    """Hashable fingerprint of everything that determines a workload's tensors."""
    shape = workload.shape
    profile = workload.profile
    return (
        shape.m,
        shape.k,
        shape.n,
        shape.t,
        profile.spike_sparsity,
        profile.silent_fraction,
        profile.silent_fraction_finetuned,
        profile.weight_sparsity,
        workload.weight_bits,
        bool(finetuned),
    )


@dataclass
class _CacheEntry:
    evaluation: LayerEvaluation
    state_after: dict


class WorkloadEvaluationCache:
    """LRU cache of :class:`LayerEvaluation` objects keyed by fingerprint.

    ``maxsize`` bounds the number of cached layer evaluations (the paper's
    three networks evaluated with and without fine-tuning need ~80 entries).
    The cache is thread-safe: the whole of :meth:`evaluate` -- lookup,
    fast-forward, generation and insertion -- runs under one internal lock,
    so concurrent callers sharing a cache (but not a generator) observe
    consistent entries and counters.  The coarse lock deliberately trades
    cross-thread concurrency for simplicity (generation work serialises);
    parallel sweeps scale across *processes* (:class:`repro.runner.SweepRunner`),
    each with its own cache, sharing tensors through the disk tier instead.

    An optional **disk tier** (:class:`~repro.engine.disk_cache.DiskEvaluationCache`,
    attached with :meth:`attach_disk_tier`) sits below the LRU: an in-memory
    miss first consults the disk tier -- reusing tensors generated by other
    worker processes or previous CLI runs -- and a full miss spills the
    freshly generated tensors back to it.
    """

    def __init__(self, maxsize: int = 128, disk_tier=None):
        if maxsize < 1:
            raise ValueError("maxsize must be at least 1")
        self.maxsize = maxsize
        self._entries: OrderedDict[tuple, _CacheEntry] = OrderedDict()
        self._lock = threading.RLock()
        self.disk_tier = disk_tier
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def attach_disk_tier(self, tier) -> None:
        """Attach (or with ``None`` detach) the shared on-disk tier."""
        with self._lock:
            self.disk_tier = tier

    def clear(self) -> None:
        """Drop every cached evaluation and reset the hit/miss counters.

        The disk tier, if attached, keeps its entries (it is the
        cross-process tier; clear it explicitly via ``disk_tier.clear()``).
        """
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.disk_hits = 0
            self.evictions = 0

    def resize(self, maxsize: int) -> None:
        """Change the entry bound, evicting least-recently-used overflow now."""
        if maxsize < 1:
            raise ValueError("maxsize must be at least 1")
        with self._lock:
            self.maxsize = maxsize
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1

    def stats(self) -> "CacheStats":
        """Snapshot of the hit/miss/eviction counters and current occupancy."""
        with self._lock:
            return CacheStats(
                hits=self.hits,
                misses=self.misses,
                evictions=self.evictions,
                entries=len(self._entries),
                disk_hits=self.disk_hits,
                maxsize=self.maxsize,
            )

    def cache_info(self) -> dict[str, int]:
        """:meth:`stats` as a plain dict (hits/misses/evictions/occupancy)."""
        return self.stats().as_dict()

    def evaluate(
        self,
        workload: LayerWorkload,
        rng: np.random.Generator,
        finetuned: bool = False,
        disk_tier=ATTACHED_TIER,
    ) -> LayerEvaluation:
        """Return the (possibly cached) evaluation of ``workload``.

        On a cache hit the generator is advanced to the state it would have
        reached by regenerating, so callers sharing one generator across a
        sequence of layers observe bit-identical randomness either way.

        ``disk_tier`` selects the on-disk tier for this call: the default
        :data:`ATTACHED_TIER` uses whatever :meth:`attach_disk_tier`
        installed, an explicit :class:`~repro.engine.DiskEvaluationCache`
        uses that tier without touching the attached one (so concurrent
        callers with different tiers cannot interfere), and ``None``
        disables the tier for this call.
        """
        try:
            key = (workload_fingerprint(workload, finetuned), generator_fingerprint(rng))
        except AttributeError:
            # Custom workload objects without shape/profile fingerprints fall
            # back to uncached generation.
            spikes, weights = workload.generate(rng=rng, finetuned=finetuned)
            return LayerEvaluation(spikes, weights)
        with self._lock:
            tier = self.disk_tier if disk_tier is ATTACHED_TIER else disk_tier
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                rng.bit_generator.state = entry.state_after
                return entry.evaluation
            if tier is not None:
                loaded = tier.load(key)
                if loaded is not None:
                    spikes, weights, state_after = loaded
                    spikes.setflags(write=False)
                    weights.setflags(write=False)
                    entry = _CacheEntry(LayerEvaluation(spikes, weights), state_after)
                    self._insert(key, entry)
                    self.disk_hits += 1
                    rng.bit_generator.state = state_after
                    return entry.evaluation
            self.misses += 1
            spikes, weights = workload.generate(rng=rng, finetuned=finetuned)
            spikes.setflags(write=False)
            weights.setflags(write=False)
            entry = _CacheEntry(LayerEvaluation(spikes, weights), rng.bit_generator.state)
            self._insert(key, entry)
            if tier is not None:
                tier.store(key, spikes, weights, entry.state_after)
            return entry.evaluation

    def _insert(self, key: tuple, entry: _CacheEntry) -> None:
        self._entries[key] = entry
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1


_DEFAULT_CACHE = WorkloadEvaluationCache()


def default_cache() -> WorkloadEvaluationCache:
    """The process-wide cache used by ``SimulatorBase.simulate_workload``."""
    return _DEFAULT_CACHE


def clear_default_cache() -> None:
    """Reset the process-wide cache (used by cold-start benchmarks)."""
    _DEFAULT_CACHE.clear()
