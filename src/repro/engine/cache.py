"""Workload-evaluation cache: one evaluation per workload fingerprint.

Every figure sweep in the paper drives *several* simulators over the *same*
workloads with the *same* seeds: without sharing, each simulator regenerates
identical random tensors and recomputes identical statistics.  The cache
here makes workload evaluation a first-class, cacheable value.

Cache-key semantics
-------------------
A cached entry is keyed by the exact information that determines the
generated tensors:

* the **workload fingerprint** -- layer dimensions ``(m, k, n, t)``, the
  four sparsity-profile fractions, the weight bit-width and the
  ``finetuned`` flag (workload *names* are deliberately excluded: tensors
  depend only on shape and sparsity), and
* the **generator fingerprint** -- the full ``bit_generator.state`` of the
  :class:`numpy.random.Generator` at the moment of generation.

Keying on the generator state makes the cache exact for *sequences* of
layers: when ``simulate_network`` walks a network with one shared generator,
each layer's key captures the generator position, so two simulators walking
the same network with equal seeds hit the cache layer by layer.  On a hit
the generator is fast-forwarded to the recorded post-generation state, so
the caller's stream of randomness is bit-identical to having regenerated --
downstream draws cannot diverge.

Generated tensors are marked non-writeable before they are shared, so a
misbehaving simulator cannot corrupt other simulators' results.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np
import numpy.random  # noqa: F401 -- eager: numpy loads this lazily, and the
# first simulated workload should not pay the submodule-import cost.

from ..snn.workloads import LayerWorkload
from .evaluation import LayerEvaluation

__all__ = [
    "WorkloadEvaluationCache",
    "default_cache",
    "clear_default_cache",
    "workload_fingerprint",
    "generator_fingerprint",
]


def _freeze(value):
    """Recursively convert a bit-generator state into a hashable value."""
    if isinstance(value, dict):
        return tuple((key, _freeze(entry)) for key, entry in sorted(value.items()))
    if isinstance(value, np.ndarray):
        return (value.dtype.str, value.shape, value.tobytes())
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(entry) for entry in value)
    return value


def generator_fingerprint(rng: np.random.Generator):
    """Hashable fingerprint of a generator's exact current state."""
    return _freeze(rng.bit_generator.state)


def workload_fingerprint(workload: LayerWorkload, finetuned: bool = False):
    """Hashable fingerprint of everything that determines a workload's tensors."""
    shape = workload.shape
    profile = workload.profile
    return (
        shape.m,
        shape.k,
        shape.n,
        shape.t,
        profile.spike_sparsity,
        profile.silent_fraction,
        profile.silent_fraction_finetuned,
        profile.weight_sparsity,
        workload.weight_bits,
        bool(finetuned),
    )


@dataclass
class _CacheEntry:
    evaluation: LayerEvaluation
    state_after: dict


class WorkloadEvaluationCache:
    """LRU cache of :class:`LayerEvaluation` objects keyed by fingerprint.

    ``maxsize`` bounds the number of cached layer evaluations (the paper's
    three networks evaluated with and without fine-tuning need ~80 entries).
    The cache is not thread-safe; use one cache per worker when sharding.
    """

    def __init__(self, maxsize: int = 128):
        if maxsize < 1:
            raise ValueError("maxsize must be at least 1")
        self.maxsize = maxsize
        self._entries: OrderedDict[tuple, _CacheEntry] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every cached evaluation and reset the hit/miss counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def cache_info(self) -> dict[str, int]:
        """Current ``{hits, misses, entries, maxsize}`` counters."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._entries),
            "maxsize": self.maxsize,
        }

    def evaluate(
        self,
        workload: LayerWorkload,
        rng: np.random.Generator,
        finetuned: bool = False,
    ) -> LayerEvaluation:
        """Return the (possibly cached) evaluation of ``workload``.

        On a cache hit the generator is advanced to the state it would have
        reached by regenerating, so callers sharing one generator across a
        sequence of layers observe bit-identical randomness either way.
        """
        try:
            key = (workload_fingerprint(workload, finetuned), generator_fingerprint(rng))
        except AttributeError:
            # Custom workload objects without shape/profile fingerprints fall
            # back to uncached generation.
            spikes, weights = workload.generate(rng=rng, finetuned=finetuned)
            return LayerEvaluation(spikes, weights)
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            rng.bit_generator.state = entry.state_after
            return entry.evaluation
        self.misses += 1
        spikes, weights = workload.generate(rng=rng, finetuned=finetuned)
        spikes.setflags(write=False)
        weights.setflags(write=False)
        entry = _CacheEntry(LayerEvaluation(spikes, weights), rng.bit_generator.state)
        self._entries[key] = entry
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return entry.evaluation


_DEFAULT_CACHE = WorkloadEvaluationCache()


def default_cache() -> WorkloadEvaluationCache:
    """The process-wide cache used by ``SimulatorBase.simulate_workload``."""
    return _DEFAULT_CACHE


def clear_default_cache() -> None:
    """Reset the process-wide cache (used by cold-start benchmarks)."""
    _DEFAULT_CACHE.clear()
