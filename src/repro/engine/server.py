"""The network-addressed evaluation-cache daemon (the remote tier's server).

A tiny, dependency-free (stdlib ``socketserver``) cache service holding
packed evaluation entries in memory, so distributed sweeps across machines
-- or repeated CLI runs on one machine -- share a single warm cache without
a shared filesystem.  Start it with::

    python -m repro cache serve --port 8737

and point any surface at it: ``Session(cache_url="host:8737")``,
``SweepRunner(cache_url=...)`` or ``python -m repro run ... --cache-url``.

Protocol
--------
Length-prefixed frames (:func:`repro.engine.serde.read_frame` /
:func:`~repro.engine.serde.write_frame`): one opcode byte plus an 8-byte
big-endian payload length.  The server never interprets entry payloads --
they are the same opaque entry bytes the disk tier stores
(:func:`repro.engine.backend.pack_entry`), keyed by the same SHA-256 digest
(:func:`repro.engine.serde.key_digest`) -- so the daemon stays oblivious to
entry schema versions.

========  ==========================  ==================================
request   payload                     response
========  ==========================  ==================================
``G`` et  64-byte key digest          ``H`` + entry bytes, or ``M`` iss
``P`` ut  digest + entry bytes        ``O`` (stored; no-op if present)
``R`` e-put  digest + entry bytes     ``O`` (stored, overwriting)
``S`` tats   --                       ``O`` + JSON counter record
``C`` lear   --                       ``O``
``?`` ping   --                       ``O``
========  ==========================  ==================================

Unknown opcodes answer ``E`` and close the connection; a client speaking
garbage cannot wedge the daemon.  Entries are evicted least-recently-used
under the optional ``--max-bytes`` budget.
"""

from __future__ import annotations

import json
import socketserver
import sys
import threading
from collections import OrderedDict

from .backend import CacheStats
from .serde import read_frame, write_frame

__all__ = ["EvaluationCacheServer", "serve"]

_DIGEST_LENGTH = 64  # hex SHA-256


class _EntryStore:
    """Thread-safe LRU byte store with counters (the daemon's state)."""

    def __init__(self, max_bytes: int | None = None):
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive when given")
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[str, bytes]" = OrderedDict()
        self._total_bytes = 0  # running footprint: puts stay O(1), not O(entries)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.refreshes = 0
        self.evictions = 0

    def get(self, digest: str) -> bytes | None:
        with self._lock:
            payload = self._entries.get(digest)
            if payload is None:
                self.misses += 1
                return None
            self.hits += 1
            self._entries.move_to_end(digest)
            return payload

    def put(self, digest: str, payload: bytes, replace: bool) -> None:
        with self._lock:
            held = self._entries.get(digest)
            if held is not None:
                if not replace:
                    self._entries.move_to_end(digest)
                    return
                self.refreshes += 1
                self._total_bytes -= len(held)
            else:
                self.stores += 1
            self._entries[digest] = payload
            self._entries.move_to_end(digest)
            self._total_bytes += len(payload)
            if self.max_bytes is not None:
                while self._total_bytes > self.max_bytes and len(self._entries) > 1:
                    _, dropped = self._entries.popitem(last=False)
                    self._total_bytes -= len(dropped)
                    self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._total_bytes = 0
            self.hits = 0
            self.misses = 0
            self.stores = 0
            self.refreshes = 0
            self.evictions = 0

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self.hits,
                misses=self.misses,
                evictions=self.evictions,
                entries=len(self._entries),
                stores=self.stores,
                refreshes=self.refreshes,
                total_bytes=self._total_bytes,
            )


class _CacheRequestHandler(socketserver.BaseRequestHandler):
    """One connection: serve frames until the client hangs up."""

    def handle(self) -> None:  # pragma: no cover - exercised via the client
        self.request.settimeout(self.server.io_timeout)
        store: _EntryStore = self.server.store
        while True:
            try:
                op, payload = read_frame(self.request)
            except (ConnectionError, OSError, ValueError):
                return  # client gone or speaking garbage: drop the connection
            try:
                if op == b"G":
                    entry = store.get(payload.decode("ascii"))
                    if entry is None:
                        write_frame(self.request, b"M")
                    else:
                        write_frame(self.request, b"H", entry)
                elif op in (b"P", b"R"):
                    digest = payload[:_DIGEST_LENGTH].decode("ascii")
                    store.put(digest, payload[_DIGEST_LENGTH:], replace=op == b"R")
                    write_frame(self.request, b"O")
                elif op == b"S":
                    record = json.dumps(store.stats().as_dict()).encode("utf-8")
                    write_frame(self.request, b"O", record)
                elif op == b"C":
                    store.clear()
                    write_frame(self.request, b"O")
                elif op == b"?":
                    write_frame(self.request, b"O")
                else:
                    write_frame(self.request, b"E", b"unknown opcode")
                    return
            except OSError:
                return
            except Exception:
                # Garbage inside a well-framed request (e.g. a non-ASCII
                # digest): answer E and drop the connection instead of
                # letting the handler thread die with a traceback.
                try:
                    write_frame(self.request, b"E", b"malformed request")
                except OSError:
                    pass
                return


class EvaluationCacheServer(socketserver.ThreadingTCPServer):
    """The evaluation-cache daemon.

    One instance serves many concurrent clients (thread per connection).
    ``server_address`` follows :class:`socketserver.TCPServer`
    (``("", 0)`` binds an ephemeral port -- handy for tests, which read the
    bound port back from ``server.server_address``).
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, server_address, max_bytes: int | None = None, io_timeout: float = 30.0):
        self.store = _EntryStore(max_bytes=max_bytes)
        self.io_timeout = io_timeout
        super().__init__(server_address, _CacheRequestHandler)

    @property
    def url(self) -> str:
        """The ``host:port`` clients should pass as ``cache_url``."""
        host, port = self.server_address[:2]
        return "%s:%d" % (host or "127.0.0.1", port)

    def start_background(self) -> threading.Thread:
        """Serve from a daemon thread (tests and embedded use)."""
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread


def serve(
    host: str = "127.0.0.1",
    port: int | None = None,
    max_bytes: int | None = None,
    ready_message: bool = True,
) -> int:
    """Run the daemon in the foreground until interrupted (CLI entry).

    Prints a ``serving on host:port`` line to stderr once the socket is
    bound, so wrappers (CI jobs, launch scripts) can wait for readiness.
    """
    from .backend import RemoteBackend

    if port is None:
        port = RemoteBackend.DEFAULT_PORT
    with EvaluationCacheServer((host, port), max_bytes=max_bytes) as server:
        if ready_message:
            print("evaluation-cache daemon serving on %s" % server.url, file=sys.stderr, flush=True)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
    return 0
