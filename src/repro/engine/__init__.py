"""Shared workload-evaluation engine.

The engine turns workload evaluation into a first-class, cacheable value:

* :class:`~repro.engine.evaluation.LayerEvaluation` computes everything any
  simulator needs from one ``(spikes, weights)`` pair -- packed formats,
  masks, matched positions, full sums, LIF outputs, activity profiles --
  lazily and exactly once (and can ``dehydrate()``/``hydrate()`` that state
  for the persistent cache tiers),
* :class:`~repro.engine.statistics.LayerStatistics` is the statistics bundle
  the baseline cost models consume, and
* :class:`~repro.engine.cache.WorkloadEvaluationCache` shares evaluations
  across simulators (and across repeated sweeps) behind an LRU keyed by the
  workload + generator fingerprint, stacked over pluggable
  :class:`~repro.engine.backend.CacheBackend` tiers -- the on-disk
  :class:`~repro.engine.disk_cache.DiskEvaluationCache` and the
  network-addressed :class:`~repro.engine.backend.RemoteBackend` speaking to
  the :mod:`repro.engine.server` daemon.

``SimulatorBase.simulate_workload`` pulls from the process-wide default
cache, so running five simulators over one figure sweep generates and
analyses each workload once instead of five times.  See ``ROADMAP.md``
("Shared workload-evaluation engine" and "cache tiers") for how to build a
new simulator -- or a new cache backend -- on top of the engine.
"""

from .backend import (
    CacheBackend,
    CacheEntry,
    CacheStats,
    MemoryBackend,
    RemoteBackend,
    TieredCache,
    build_backends,
)
from .cache import (
    TENSOR_COUPLED_ARCH_FIELDS,
    WorkloadEvaluationCache,
    arch_tensor_fingerprint,
    clear_default_cache,
    default_cache,
    generator_fingerprint,
    workload_fingerprint,
)
from .disk_cache import DiskBackend, DiskEvaluationCache
from .evaluation import AnnLayerEvaluation, LayerEvaluation
from .statistics import LayerStatistics

__all__ = [
    "AnnLayerEvaluation",
    "CacheBackend",
    "CacheEntry",
    "CacheStats",
    "DiskBackend",
    "DiskEvaluationCache",
    "LayerEvaluation",
    "LayerStatistics",
    "MemoryBackend",
    "RemoteBackend",
    "TieredCache",
    "WorkloadEvaluationCache",
    "TENSOR_COUPLED_ARCH_FIELDS",
    "arch_tensor_fingerprint",
    "build_backends",
    "clear_default_cache",
    "default_cache",
    "generator_fingerprint",
    "workload_fingerprint",
]
