"""Shared workload-evaluation engine.

The engine turns workload evaluation into a first-class, cacheable value:

* :class:`~repro.engine.evaluation.LayerEvaluation` computes everything any
  simulator needs from one ``(spikes, weights)`` pair -- packed formats,
  masks, matched positions, full sums, LIF outputs, activity profiles --
  lazily and exactly once,
* :class:`~repro.engine.statistics.LayerStatistics` is the statistics bundle
  the baseline cost models consume, and
* :class:`~repro.engine.cache.WorkloadEvaluationCache` shares evaluations
  across simulators (and across repeated sweeps) behind an LRU keyed by the
  workload + generator fingerprint.

``SimulatorBase.simulate_workload`` pulls from the process-wide default
cache, so running five simulators over one figure sweep generates and
analyses each workload once instead of five times.  See ``ROADMAP.md``
("Shared workload-evaluation engine") for how to build a new simulator on
top of the engine.
"""

from .cache import (
    CacheStats,
    WorkloadEvaluationCache,
    clear_default_cache,
    default_cache,
    generator_fingerprint,
    workload_fingerprint,
)
from .disk_cache import DiskEvaluationCache
from .evaluation import AnnLayerEvaluation, LayerEvaluation
from .statistics import LayerStatistics

__all__ = [
    "AnnLayerEvaluation",
    "CacheStats",
    "DiskEvaluationCache",
    "LayerEvaluation",
    "LayerStatistics",
    "WorkloadEvaluationCache",
    "clear_default_cache",
    "default_cache",
    "generator_fingerprint",
    "workload_fingerprint",
]
