"""Single-computation evaluation of one dual-sparse layer.

:class:`LayerEvaluation` is the shared substrate of every accelerator model
in this repository: it owns the ``(spikes A, weights B)`` tensor pair of one
layer and computes -- lazily, and exactly once -- every derived quantity a
simulator may ask for:

* the packed-temporal compression of ``A`` and the non-silent / weight masks,
* the ``(M, N)`` matched-position matrix of the inner join,
* the full-sum tensor ``O`` (one ``np.tensordot`` over ``k`` instead of a
  per-timestep GEMM loop) and the LIF output spikes derived from it,
* per-accelerator true-accumulation counts and the per-timestep / per-row /
  per-column activity profiles the baseline dataflows charge traffic for,
* the compressed output footprint of the next layer.

Everything is integer-valued, so the vectorised contractions are
bit-identical to the loop-based seed implementations regardless of
summation order (all intermediates are exactly representable in float64).

Simulators receive a ``LayerEvaluation`` either from the workload cache
(:mod:`repro.engine.cache`) -- in which case the heavy statistics are shared
across *all* simulators evaluating the same workload -- or build a private
one on the fly when driven with raw tensors through ``simulate_layer``.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from ..snn.lif import LIFParameters, lif_fire
from ..sparse.packed import PackedSpikeMatrix, pack_spike_words, popcount
from .statistics import LayerStatistics

__all__ = ["LayerEvaluation", "AnnLayerEvaluation"]


def _readonly(array: np.ndarray) -> np.ndarray:
    """Mark a derived array read-only before it is shared across simulators."""
    array.setflags(write=False)
    return array


class LayerEvaluation:
    """Lazily-computed, shareable evaluation of one ``(A, B)`` layer pair.

    Parameters
    ----------
    spikes:
        Input spike tensor ``A`` of shape ``(M, K, T)``.
    weights:
        Weight matrix ``B`` of shape ``(K, N)``.

    The instance is read-only: one evaluation may be shared by many
    simulators, so every derived array is marked non-writeable as it is
    computed, and the workload cache additionally marks the generated
    ``spikes`` / ``weights`` tensors non-writeable.
    """

    def __init__(self, spikes: np.ndarray, weights: np.ndarray):
        spikes = np.asarray(spikes)
        weights = np.asarray(weights)
        if spikes.ndim != 3 or weights.ndim != 2:
            raise ValueError("expected spikes (M, K, T) and weights (K, N)")
        if spikes.shape[1] != weights.shape[0]:
            raise ValueError("contraction dimension mismatch")
        self.spikes = spikes
        self.weights = weights
        self._output_spikes: dict[tuple, np.ndarray] = {}
        self._compressions: dict[tuple, object] = {}
        self._preprocessed: dict[int, "LayerEvaluation"] = {}

    # ------------------------------------------------------------------ #
    # Dimensions
    # ------------------------------------------------------------------ #
    @property
    def m(self) -> int:
        """Number of rows of ``A`` (output spatial positions)."""
        return self.spikes.shape[0]

    @property
    def k(self) -> int:
        """Contraction dimension."""
        return self.spikes.shape[1]

    @property
    def t(self) -> int:
        """Number of timesteps."""
        return self.spikes.shape[2]

    @property
    def n(self) -> int:
        """Number of output neurons (columns of ``B``)."""
        return self.weights.shape[1]

    # ------------------------------------------------------------------ #
    # Compression and masks
    # ------------------------------------------------------------------ #
    @cached_property
    def packed_words(self) -> np.ndarray:
        """``(M, K)`` int64 matrix of packed ``T``-bit spike words."""
        return _readonly(pack_spike_words(self.spikes))

    @cached_property
    def packed(self) -> PackedSpikeMatrix:
        """``A`` compressed into the FTP-friendly packed-temporal format."""
        return PackedSpikeMatrix(
            words=self.packed_words, nonsilent=self.nonsilent, shape=self.spikes.shape
        )

    @cached_property
    def nonsilent(self) -> np.ndarray:
        """Boolean ``(M, K)`` mask of neurons firing at least once.

        Derived from the packed words (a neuron is silent exactly when its
        packed word is zero), so the dense tensor is scanned only once for
        both the compression and the mask.
        """
        return _readonly(self.packed_words != 0)

    @cached_property
    def weight_mask(self) -> np.ndarray:
        """Float ``(K, N)`` indicator of non-zero weights."""
        return _readonly((self.weights != 0).astype(np.float64))

    @cached_property
    def nnz_weights(self) -> int:
        """Number of non-zero weights in ``B``."""
        return int(self.weight_row_nnz.sum())

    @cached_property
    def spike_counts_int(self) -> np.ndarray:
        """``(M, K)`` per-neuron spike counts (popcount of the packed words)."""
        return _readonly(popcount(self.packed_words))

    @cached_property
    def nnz_spikes(self) -> int:
        """Number of non-zero spikes in ``A`` across all timesteps."""
        return int(self.spike_counts_int.sum(dtype=np.int64))

    @cached_property
    def spike_density(self) -> float:
        """Fraction of non-zero entries in ``A``."""
        if self.spikes.size == 0:
            return 0.0
        return float(np.count_nonzero(self.spikes) / self.spikes.size)

    # ------------------------------------------------------------------ #
    # Inner-join statistics
    # ------------------------------------------------------------------ #
    @cached_property
    def _join_products(self) -> tuple[np.ndarray, np.ndarray]:
        """Matches and true accumulations from one stacked GEMM.

        Both are ``X @ weight_mask`` products with integer-valued operands,
        so stacking the two left-hand sides halves the GEMM dispatch
        overhead without changing any value.
        """
        stacked = np.concatenate(
            [self.nonsilent.astype(np.float64), self.spike_counts], axis=0
        )
        product = stacked @ self.weight_mask
        return _readonly(product[: self.m]), _readonly(product[self.m :])

    @cached_property
    def matches(self) -> np.ndarray:
        """``(M, N)`` matched (non-silent x non-zero-weight) positions."""
        return self._join_products[0]

    @cached_property
    def total_matches(self) -> float:
        """Total matched positions across all output neurons."""
        return float(self.matches.sum())

    @property
    def spike_counts(self) -> np.ndarray:
        """Float ``(M, K)`` spike counts per neuron (sum over timesteps).

        Deliberately not cached: it is consumed once (by the stacked join
        GEMM) and is cheap to rebuild from the integer counts.
        """
        return self.spike_counts_int.astype(np.float64)

    @cached_property
    def true_acs(self) -> np.ndarray:
        """``(M, N)`` genuine accumulations, summed over timesteps."""
        return self._join_products[1]

    @cached_property
    def true_accumulations(self) -> float:
        """Total genuine accumulate operations of the layer."""
        return float(self.true_acs.sum())

    @cached_property
    def true_acs_per_t(self) -> np.ndarray:
        """Total genuine accumulations per timestep, shape ``(T,)``."""
        per_column = self.spikes_per_column_t.astype(np.float64)  # (K, T)
        return _readonly(per_column.T @ self.weight_row_nnz.astype(np.float64))

    # ------------------------------------------------------------------ #
    # Activity profiles (baseline dataflow traffic drivers)
    # ------------------------------------------------------------------ #
    @cached_property
    def active_column_mask(self) -> np.ndarray:
        """Boolean ``(K, T)`` mask of columns with at least one spike."""
        return _readonly(self.spikes_per_column_t > 0)

    @cached_property
    def active_columns_per_t(self) -> np.ndarray:
        """Active ``k`` columns per timestep, shape ``(T,)`` (int64)."""
        return _readonly(self.active_column_mask.sum(axis=0, dtype=np.int64))

    @cached_property
    def weight_row_nnz(self) -> np.ndarray:
        """Non-zero weights per row of ``B``, shape ``(K,)`` (int64)."""
        return _readonly(self.weight_mask.sum(axis=1).astype(np.int64))

    @cached_property
    def spikes_per_row_t(self) -> np.ndarray:
        """Spikes per ``(m, t)`` pair, shape ``(M, T)`` (int64)."""
        return _readonly(self.spikes.sum(axis=1, dtype=np.int64))

    @cached_property
    def spikes_per_column_t(self) -> np.ndarray:
        """Spikes per ``(k, t)`` pair, shape ``(K, T)`` (int64)."""
        return _readonly(self.spikes.sum(axis=0, dtype=np.int64))

    @cached_property
    def statistics(self) -> LayerStatistics:
        """The full statistics bundle the baseline models consume."""
        return LayerStatistics(
            m=self.m,
            k=self.k,
            n=self.n,
            t=self.t,
            nnz_weights=self.nnz_weights,
            nnz_spikes=self.nnz_spikes,
            nonsilent_neurons=int(self.nonsilent.sum()),
            matches=self.matches,
            true_acs=self.true_acs,
            true_acs_per_t=self.true_acs_per_t,
            active_columns_per_t=self.active_columns_per_t,
            weight_row_nnz=self.weight_row_nnz,
            spikes_per_row_t=self.spikes_per_row_t,
            active_column_mask=self.active_column_mask,
            spikes_per_column_t=self.spikes_per_column_t,
        )

    # ------------------------------------------------------------------ #
    # Functional outputs
    # ------------------------------------------------------------------ #
    @cached_property
    def full_sums(self) -> np.ndarray:
        """Full-sum tensor ``O`` of shape ``(M, N, T)`` (float64, exact).

        One contraction over ``k`` for all timesteps at once; every
        intermediate is an exactly representable integer, so the result is
        bit-identical to a per-timestep GEMM loop.  The operand is laid out
        as one ``(M*T, K)`` matrix up front so the GEMM runs without any
        internal re-copy.
        """
        m, k, t, n = self.m, self.k, self.t, self.n
        lhs = self.spikes.transpose(0, 2, 1).astype(np.float64).reshape(m * t, k)
        sums = lhs @ self.weights.astype(np.float64)  # (M*T, N)
        return _readonly(sums.reshape(m, t, n).transpose(0, 2, 1))

    def output_spikes(self, params: LIFParameters | None = None) -> np.ndarray:
        """LIF output spikes for ``full_sums`` (memoised per parameter set)."""
        params = params or LIFParameters()
        key = (params.threshold, params.leak)
        spikes = self._output_spikes.get(key)
        if spikes is None:
            spikes = _readonly(lif_fire(self.full_sums, params))
            self._output_spikes[key] = spikes
        return spikes

    def compress_output(self, compressor, params: LIFParameters | None = None, preprocess: bool = False):
        """Compressed next-layer footprint of the output spikes.

        ``compressor`` is an :class:`repro.core.compressor.OutputCompressor`
        (typed loosely to keep the engine free of core imports); the result
        is memoised on the compressor-config attributes the compression
        actually depends on, so simulators sharing one evaluation also share
        the packing work.
        """
        params = params or LIFParameters()
        cfg = compressor.config
        key = (
            params.threshold,
            params.leak,
            bool(preprocess),
            cfg.pointer_bits,
            cfg.bitmask_chunk_bits,
            cfg.laggy_adders,
        )
        compression = self._compressions.get(key)
        if compression is None:
            compression = compressor.compress(self.output_spikes(params), preprocess=preprocess)
            self._compressions[key] = compression
            # The full-sum and output-spike tensors are the largest derived
            # arrays and no cost model reads them once the compression is
            # memoised; drop them so cached evaluations stay light.  They
            # are lazily recomputed if a caller asks again.
            self._output_spikes.pop((params.threshold, params.leak), None)
            self.__dict__.pop("full_sums", None)
        return compression

    def preprocessed(self, max_spikes: int = 1) -> "LayerEvaluation":
        """Evaluation of the fine-tuned preprocessed copy of this layer.

        Neurons firing at most ``max_spikes`` times are masked (treated as
        silent); the derived evaluation is memoised so the preprocessed
        statistics are also computed only once.
        """
        derived = self._preprocessed.get(max_spikes)
        if derived is None:
            # Same semantics as sparse.matrix.mask_low_activity_neurons, but
            # reusing the already-computed per-neuron spike counts.
            counts = self.spike_counts_int
            dropped = (counts > 0) & (counts <= max_spikes)
            masked = self.spikes.copy()
            masked[dropped] = 0
            derived = LayerEvaluation(masked, self.weights)
            # Masking a neuron zeroes exactly its packed word, so the
            # derived packed words need no second scan of the dense tensor.
            derived.packed_words = np.where(dropped, 0, self.packed_words)
            self._preprocessed[max_spikes] = derived
        return derived


class AnnLayerEvaluation:
    """Shared evaluation of one dual-sparse ANN ``(activations, weights)`` pair.

    The ANN counterpart of :class:`LayerEvaluation` for the SNN-vs-ANN
    comparison (Figure 18): the SparTen-ANN and Gamma-ANN baselines consume
    the same activation/weight masks, matched-position matrix and ReLU
    outputs, so one evaluation can drive both models.
    """

    def __init__(self, activations: np.ndarray, weights: np.ndarray):
        activations = np.asarray(activations)
        weights = np.asarray(weights)
        if activations.ndim != 2 or weights.ndim != 2:
            raise ValueError("expected activations (M, K) and weights (K, N)")
        if activations.shape[1] != weights.shape[0]:
            raise ValueError("contraction dimension mismatch")
        self.activations = activations
        self.weights = weights

    @property
    def m(self) -> int:
        """Number of activation rows."""
        return self.activations.shape[0]

    @property
    def k(self) -> int:
        """Contraction dimension."""
        return self.activations.shape[1]

    @property
    def n(self) -> int:
        """Number of output neurons."""
        return self.weights.shape[1]

    @cached_property
    def act_mask(self) -> np.ndarray:
        """Float ``(M, K)`` indicator of non-zero activations."""
        return _readonly((self.activations != 0).astype(np.float64))

    @cached_property
    def weight_mask(self) -> np.ndarray:
        """Float ``(K, N)`` indicator of non-zero weights."""
        return _readonly((self.weights != 0).astype(np.float64))

    @cached_property
    def nnz_activations(self) -> int:
        """Number of non-zero activations."""
        return int(self.act_mask.sum())

    @cached_property
    def nnz_weights(self) -> int:
        """Number of non-zero weights."""
        return int(self.weight_mask.sum())

    @cached_property
    def weight_row_nnz(self) -> np.ndarray:
        """Non-zero weights per row of ``B``, shape ``(K,)``."""
        return _readonly(self.weight_mask.sum(axis=1))

    @cached_property
    def matches(self) -> np.ndarray:
        """``(M, N)`` matched (non-zero activation x non-zero weight) pairs."""
        return _readonly(self.act_mask @ self.weight_mask)

    @cached_property
    def total_matches(self) -> float:
        """Total matched positions (genuine multiply-accumulates)."""
        return float(self.matches.sum())

    @cached_property
    def outputs(self) -> np.ndarray:
        """ReLU outputs ``max(A @ B, 0)`` in float64 (exact integers)."""
        return _readonly(
            np.maximum(
                self.activations.astype(np.float64) @ self.weights.astype(np.float64), 0
            )
        )

    @cached_property
    def output_nnz(self) -> int:
        """Number of non-zero ReLU outputs."""
        return int((self.outputs > 0).sum())
