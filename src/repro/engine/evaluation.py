"""Single-computation evaluation of one dual-sparse layer.

:class:`LayerEvaluation` is the shared substrate of every accelerator model
in this repository: it owns the ``(spikes A, weights B)`` tensor pair of one
layer and computes -- lazily, and exactly once -- every derived quantity a
simulator may ask for:

* the packed-temporal compression of ``A`` and the non-silent / weight masks,
* the ``(M, N)`` matched-position matrix of the inner join,
* the full-sum tensor ``O`` (one ``np.tensordot`` over ``k`` instead of a
  per-timestep GEMM loop) and the LIF output spikes derived from it,
* per-accelerator true-accumulation counts and the per-timestep / per-row /
  per-column activity profiles the baseline dataflows charge traffic for,
* the compressed output footprint of the next layer.

Everything is integer-valued, so the vectorised contractions are
bit-identical to the loop-based seed implementations regardless of
summation order (all intermediates are exactly representable in float64).

Simulators receive a ``LayerEvaluation`` either from the workload cache
(:mod:`repro.engine.cache`) -- in which case the heavy statistics are shared
across *all* simulators evaluating the same workload -- or build a private
one on the fly when driven with raw tensors through ``simulate_layer``.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from ..snn.lif import LIFParameters, lif_fire
from ..sparse.packed import PackedSpikeMatrix, pack_spike_words, popcount
from .serde import DeferredArray
from .statistics import LayerStatistics

__all__ = ["LayerEvaluation", "AnnLayerEvaluation"]


def _readonly(array: np.ndarray) -> np.ndarray:
    """Mark a derived array read-only before it is shared across simulators."""
    array.setflags(write=False)
    return array


#: Cached-property names persisted by :meth:`LayerEvaluation.dehydrate`.
#: Everything here is a pure array-valued function of ``(spikes, weights)``,
#: stored losslessly, so hydration is bit-identical to recomputation.  The
#: cheap mask/count properties (``nonsilent``, ``weight_mask``, ...) are
#: deliberately absent: they rebuild in microseconds from the seeded arrays.
_DEHYDRATED_PROPERTIES = (
    "packed_words",
    "matches",
    "true_acs",
    "true_acs_per_t",
    "active_columns_per_t",
    "weight_row_nnz",
    "spikes_per_row_t",
    "spikes_per_column_t",
    "active_column_mask",
    "full_sums",
)


class LayerEvaluation:
    """Lazily-computed, shareable evaluation of one ``(A, B)`` layer pair.

    Parameters
    ----------
    spikes:
        Input spike tensor ``A`` of shape ``(M, K, T)``.
    weights:
        Weight matrix ``B`` of shape ``(K, N)``.

    The instance is read-only: one evaluation may be shared by many
    simulators, so every derived array is marked non-writeable as it is
    computed, and the workload cache additionally marks the generated
    ``spikes`` / ``weights`` tensors non-writeable.
    """

    def __init__(self, spikes, weights):
        # A hydrated evaluation may receive its dense tensors as
        # DeferredArray handles (shape/dtype known, bytes not yet decoded):
        # on the statistics-warm path every consumer reads the pre-seeded
        # derived arrays, so the dense tensors often never materialise.
        if not isinstance(spikes, DeferredArray):
            spikes = np.asarray(spikes)
        if not isinstance(weights, DeferredArray):
            weights = np.asarray(weights)
        if spikes.ndim != 3 or weights.ndim != 2:
            raise ValueError("expected spikes (M, K, T) and weights (K, N)")
        if spikes.shape[1] != weights.shape[0]:
            raise ValueError("contraction dimension mismatch")
        self._spikes = spikes
        self._weights = weights
        self._output_spikes: dict[tuple, np.ndarray] = {}
        self._compressions: dict[tuple, object] = {}
        self._preprocessed: dict[int, "LayerEvaluation"] = {}
        #: Hydration payloads of preprocessed children not yet rebuilt --
        #: rebuilding masks a copy of the dense spikes, so a hydrated entry
        #: defers it until :meth:`preprocessed` is actually called.
        self._pending_preprocessed: dict[int, tuple] = {}

    @property
    def spikes(self) -> np.ndarray:
        """Input spike tensor ``A`` (materialised on first access)."""
        if isinstance(self._spikes, DeferredArray):
            self._spikes = self._spikes.materialise()
        return self._spikes

    @property
    def weights(self) -> np.ndarray:
        """Weight matrix ``B`` (materialised on first access)."""
        if isinstance(self._weights, DeferredArray):
            self._weights = self._weights.materialise()
        return self._weights

    @property
    def tensors(self) -> tuple:
        """The ``(spikes, weights)`` pair *without* forcing materialisation.

        For callers that forward the tensors positionally alongside the
        evaluation itself (``SimulatorBase.simulate_workload``): every
        simulator reads the evaluation when one is passed, so handing over
        still-deferred handles keeps the statistics-warm path free of the
        dense-tensor decode.  The handles are accepted back by
        ``LayerEvaluation(...)`` should a consumer rebuild one.
        """
        return self._spikes, self._weights

    # ------------------------------------------------------------------ #
    # Dimensions
    # ------------------------------------------------------------------ #
    @property
    def m(self) -> int:
        """Number of rows of ``A`` (output spatial positions)."""
        return self._spikes.shape[0]

    @property
    def k(self) -> int:
        """Contraction dimension."""
        return self._spikes.shape[1]

    @property
    def t(self) -> int:
        """Number of timesteps."""
        return self._spikes.shape[2]

    @property
    def n(self) -> int:
        """Number of output neurons (columns of ``B``)."""
        return self._weights.shape[1]

    # ------------------------------------------------------------------ #
    # Compression and masks
    # ------------------------------------------------------------------ #
    @cached_property
    def packed_words(self) -> np.ndarray:
        """``(M, K)`` int64 matrix of packed ``T``-bit spike words."""
        return _readonly(pack_spike_words(self.spikes))

    @cached_property
    def packed(self) -> PackedSpikeMatrix:
        """``A`` compressed into the FTP-friendly packed-temporal format."""
        return PackedSpikeMatrix(
            words=self.packed_words, nonsilent=self.nonsilent, shape=(self.m, self.k, self.t)
        )

    @cached_property
    def nonsilent(self) -> np.ndarray:
        """Boolean ``(M, K)`` mask of neurons firing at least once.

        Derived from the packed words (a neuron is silent exactly when its
        packed word is zero), so the dense tensor is scanned only once for
        both the compression and the mask.
        """
        return _readonly(self.packed_words != 0)

    @cached_property
    def weight_mask(self) -> np.ndarray:
        """Float ``(K, N)`` indicator of non-zero weights."""
        return _readonly((self.weights != 0).astype(np.float64))

    @cached_property
    def nnz_weights(self) -> int:
        """Number of non-zero weights in ``B``."""
        return int(self.weight_row_nnz.sum())

    @cached_property
    def spike_counts_int(self) -> np.ndarray:
        """``(M, K)`` per-neuron spike counts (popcount of the packed words)."""
        return _readonly(popcount(self.packed_words))

    @cached_property
    def nnz_spikes(self) -> int:
        """Number of non-zero spikes in ``A`` across all timesteps."""
        return int(self.spike_counts_int.sum(dtype=np.int64))

    @cached_property
    def spike_density(self) -> float:
        """Fraction of non-zero entries in ``A``."""
        if self.spikes.size == 0:
            return 0.0
        return float(np.count_nonzero(self.spikes) / self.spikes.size)

    # ------------------------------------------------------------------ #
    # Inner-join statistics
    # ------------------------------------------------------------------ #
    @cached_property
    def _join_products(self) -> tuple[np.ndarray, np.ndarray]:
        """Matches and true accumulations from one stacked GEMM.

        Both are ``X @ weight_mask`` products with integer-valued operands,
        so stacking the two left-hand sides halves the GEMM dispatch
        overhead without changing any value.
        """
        stacked = np.concatenate(
            [self.nonsilent.astype(np.float64), self.spike_counts], axis=0
        )
        product = stacked @ self.weight_mask
        return _readonly(product[: self.m]), _readonly(product[self.m :])

    @cached_property
    def matches(self) -> np.ndarray:
        """``(M, N)`` matched (non-silent x non-zero-weight) positions."""
        return self._join_products[0]

    @cached_property
    def total_matches(self) -> float:
        """Total matched positions across all output neurons."""
        return float(self.matches.sum())

    @property
    def spike_counts(self) -> np.ndarray:
        """Float ``(M, K)`` spike counts per neuron (sum over timesteps).

        Deliberately not cached: it is consumed once (by the stacked join
        GEMM) and is cheap to rebuild from the integer counts.
        """
        return self.spike_counts_int.astype(np.float64)

    @cached_property
    def true_acs(self) -> np.ndarray:
        """``(M, N)`` genuine accumulations, summed over timesteps."""
        return self._join_products[1]

    @cached_property
    def true_accumulations(self) -> float:
        """Total genuine accumulate operations of the layer."""
        return float(self.true_acs.sum())

    @cached_property
    def true_acs_per_t(self) -> np.ndarray:
        """Total genuine accumulations per timestep, shape ``(T,)``."""
        per_column = self.spikes_per_column_t.astype(np.float64)  # (K, T)
        return _readonly(per_column.T @ self.weight_row_nnz.astype(np.float64))

    # ------------------------------------------------------------------ #
    # Activity profiles (baseline dataflow traffic drivers)
    # ------------------------------------------------------------------ #
    @cached_property
    def active_column_mask(self) -> np.ndarray:
        """Boolean ``(K, T)`` mask of columns with at least one spike."""
        return _readonly(self.spikes_per_column_t > 0)

    @cached_property
    def active_columns_per_t(self) -> np.ndarray:
        """Active ``k`` columns per timestep, shape ``(T,)`` (int64)."""
        return _readonly(self.active_column_mask.sum(axis=0, dtype=np.int64))

    @cached_property
    def weight_row_nnz(self) -> np.ndarray:
        """Non-zero weights per row of ``B``, shape ``(K,)`` (int64)."""
        return _readonly(self.weight_mask.sum(axis=1).astype(np.int64))

    @cached_property
    def spikes_per_row_t(self) -> np.ndarray:
        """Spikes per ``(m, t)`` pair, shape ``(M, T)`` (int64)."""
        return _readonly(self.spikes.sum(axis=1, dtype=np.int64))

    @cached_property
    def spikes_per_column_t(self) -> np.ndarray:
        """Spikes per ``(k, t)`` pair, shape ``(K, T)`` (int64)."""
        return _readonly(self.spikes.sum(axis=0, dtype=np.int64))

    @cached_property
    def statistics(self) -> LayerStatistics:
        """The full statistics bundle the baseline models consume."""
        return LayerStatistics(
            m=self.m,
            k=self.k,
            n=self.n,
            t=self.t,
            nnz_weights=self.nnz_weights,
            nnz_spikes=self.nnz_spikes,
            nonsilent_neurons=int(self.nonsilent.sum()),
            matches=self.matches,
            true_acs=self.true_acs,
            true_acs_per_t=self.true_acs_per_t,
            active_columns_per_t=self.active_columns_per_t,
            weight_row_nnz=self.weight_row_nnz,
            spikes_per_row_t=self.spikes_per_row_t,
            active_column_mask=self.active_column_mask,
            spikes_per_column_t=self.spikes_per_column_t,
        )

    # ------------------------------------------------------------------ #
    # Functional outputs
    # ------------------------------------------------------------------ #
    @cached_property
    def full_sums(self) -> np.ndarray:
        """Full-sum tensor ``O`` of shape ``(M, N, T)`` (float64, exact).

        One contraction over ``k`` for all timesteps at once; every
        intermediate is an exactly representable integer, so the result is
        bit-identical to a per-timestep GEMM loop.  The operand is laid out
        as one ``(M*T, K)`` matrix up front so the GEMM runs without any
        internal re-copy.
        """
        m, k, t, n = self.m, self.k, self.t, self.n
        lhs = self.spikes.transpose(0, 2, 1).astype(np.float64).reshape(m * t, k)
        sums = lhs @ self.weights.astype(np.float64)  # (M*T, N)
        return _readonly(sums.reshape(m, t, n).transpose(0, 2, 1))

    def output_spikes(self, params: LIFParameters | None = None) -> np.ndarray:
        """LIF output spikes for ``full_sums`` (memoised per parameter set)."""
        params = params or LIFParameters()
        key = (params.threshold, params.leak)
        spikes = self._output_spikes.get(key)
        if spikes is None:
            spikes = _readonly(lif_fire(self.full_sums, params))
            self._output_spikes[key] = spikes
        return spikes

    def compress_output(self, compressor, params: LIFParameters | None = None, preprocess: bool = False):
        """Compressed next-layer footprint of the output spikes.

        ``compressor`` is an :class:`repro.core.compressor.OutputCompressor`
        (typed loosely to keep the engine free of core imports); the result
        is memoised on the compressor-config attributes the compression
        actually depends on, so simulators sharing one evaluation also share
        the packing work.
        """
        params = params or LIFParameters()
        cfg = compressor.config
        key = (
            params.threshold,
            params.leak,
            bool(preprocess),
            cfg.pointer_bits,
            cfg.bitmask_chunk_bits,
            cfg.laggy_adders,
        )
        compression = self._compressions.get(key)
        if compression is None:
            compression = compressor.compress(self.output_spikes(params), preprocess=preprocess)
            self._compressions[key] = compression
            # The full-sum and output-spike tensors are the largest derived
            # arrays and no cost model reads them once the compression is
            # memoised; drop them so cached evaluations stay light.  They
            # are lazily recomputed if a caller asks again.
            self._output_spikes.pop((params.threshold, params.leak), None)
            self.__dict__.pop("full_sums", None)
        return compression

    def preprocessed(self, max_spikes: int = 1) -> "LayerEvaluation":
        """Evaluation of the fine-tuned preprocessed copy of this layer.

        Neurons firing at most ``max_spikes`` times are masked (treated as
        silent); the derived evaluation is memoised so the preprocessed
        statistics are also computed only once.
        """
        derived = self._preprocessed.get(max_spikes)
        if derived is None:
            # Same semantics as sparse.matrix.mask_low_activity_neurons, but
            # reusing the already-computed per-neuron spike counts.
            counts = self.spike_counts_int
            dropped = (counts > 0) & (counts <= max_spikes)
            masked = self.spikes.copy()
            masked[dropped] = 0
            # The weights hand over as-is (possibly still deferred): the
            # child's cost models read its derived statistics, not ``B``.
            derived = LayerEvaluation(masked, self._weights)
            # Masking a neuron zeroes exactly its packed word, so the
            # derived packed words need no second scan of the dense tensor.
            derived.packed_words = np.where(dropped, 0, self.packed_words)
            self._preprocessed[max_spikes] = derived
            pending = self._pending_preprocessed.pop(max_spikes, None)
            if pending is not None:
                derived._hydrate_derived(pending[0], pending[1], prefix="pre%d_" % max_spikes)
        return derived

    # ------------------------------------------------------------------ #
    # Dehydration (cache-tier persistence)
    # ------------------------------------------------------------------ #
    def dehydrate(self) -> tuple[dict[str, np.ndarray], dict]:
        """The evaluation as ``(arrays, meta)`` for the lower cache tiers.

        Captures the base tensors plus every derived artifact **already
        computed** -- the persisted cached properties
        (:data:`_DEHYDRATED_PROPERTIES`), the memoised LIF output spikes and
        output compressions, and one level of memoised preprocessed child
        evaluations (each with its own derived artifacts).  Nothing is
        force-computed: dehydrating a fresh evaluation yields tensors only,
        dehydrating one that simulators have consumed yields exactly the
        warm in-memory state, so a hydrated entry skips the same work a warm
        LRU hit skips.

        The mapping is consumed by :func:`repro.engine.serde.pack_payload`;
        :meth:`hydrate` is the inverse.
        """
        # Children still pending (hydrated but never used) rebuild first, so
        # re-publishing a hydrated entry cannot drop its stored children.
        for max_spikes in sorted(self._pending_preprocessed):
            self.preprocessed(max_spikes)
        arrays: dict[str, np.ndarray] = {"spikes": self.spikes, "weights": self.weights}
        meta: dict = {"schema": 2}
        self._dehydrate_derived(arrays, meta, prefix="")
        preprocessed: dict[str, dict] = {}
        for max_spikes, child in self._preprocessed.items():
            child_meta: dict = {}
            child._dehydrate_derived(arrays, child_meta, prefix="pre%d_" % max_spikes)
            preprocessed[str(max_spikes)] = child_meta
        if preprocessed:
            meta["preprocessed"] = preprocessed
        return arrays, meta

    def _dehydrate_derived(self, arrays: dict, meta: dict, prefix: str) -> None:
        derived = [name for name in _DEHYDRATED_PROPERTIES if name in self.__dict__]
        for name in derived:
            arrays[prefix + "d_" + name] = self.__dict__[name]
        meta["derived"] = derived
        lif = []
        for index, ((threshold, leak), spikes) in enumerate(self._output_spikes.items()):
            arrays[prefix + "lif%d" % index] = spikes
            lif.append([float(threshold), float(leak)])
        meta["lif"] = lif
        compressions = []
        for index, (key, result) in enumerate(self._compressions.items()):
            arrays[prefix + "comp%d" % index] = result.packed.words
            compressions.append(
                {
                    "key": list(key),
                    "shape": [int(dim) for dim in result.packed.shape],
                    "cycles": float(result.cycles),
                    "output_bytes": float(result.output_bytes),
                    "dropped_neurons": int(result.dropped_neurons),
                    "silent_output_neurons": int(result.silent_output_neurons),
                }
            )
        meta["compressions"] = compressions

    @property
    def enrichment(self) -> int:
        """How many derived artifacts this evaluation currently holds.

        An observability counter (0 means tensors only); the write-back
        machinery itself compares :meth:`derived_signature`, which also
        sees artifacts being *replaced* rather than added.  Children still
        pending rebuild count exactly as their stored form would, so
        hydrating-then-ignoring an entry never reads as new enrichment.
        """
        count = sum(1 for name in _DEHYDRATED_PROPERTIES if name in self.__dict__)
        count += len(self._output_spikes) + len(self._compressions)
        for child in self._preprocessed.values():
            count += 1 + child.enrichment
        for _, child_meta in self._pending_preprocessed.values():
            count += (
                1
                + len(child_meta.get("derived", ()))
                + len(child_meta.get("lif", ()))
                + len(child_meta.get("compressions", ()))
            )
        return count

    def derived_signature(self) -> tuple:
        """Hashable fingerprint of which derived artifacts are present.

        Two equal signatures mean :meth:`dehydrate` would emit the same
        member set; ``pack_entry`` keys its serialised-bytes memo on it so
        one write-through serialises once while a later, further-enriched
        write-back repacks.  A child still pending rebuild signs exactly as
        its built form would, so hydrating an entry -- or rebuilding its
        children -- does not change the signature until something is
        genuinely added (this is what lets a promoted remote hit reuse the
        wire bytes verbatim).
        """
        children: dict[int, tuple] = {
            max_spikes: child.derived_signature()
            for max_spikes, child in self._preprocessed.items()
        }
        for max_spikes, (_, child_meta) in self._pending_preprocessed.items():
            children[max_spikes] = (
                tuple(child_meta.get("derived", ())),
                tuple(tuple(pair) for pair in child_meta.get("lif", ())),
                tuple(tuple(record["key"]) for record in child_meta.get("compressions", ())),
                (),
            )
        return (
            tuple(name for name in _DEHYDRATED_PROPERTIES if name in self.__dict__),
            tuple(self._output_spikes),
            tuple(self._compressions),
            tuple(sorted(children.items())),
        )

    @classmethod
    def hydrate(cls, arrays: dict[str, np.ndarray], meta: dict) -> "LayerEvaluation":
        """Rebuild an evaluation from :meth:`dehydrate` output.

        Derived artifacts are seeded directly into the lazy-property slots
        (marked read-only), so a hydrated evaluation never recomputes what
        the entry carries -- in particular the matches / full-sums GEMMs.
        Raises ``KeyError`` on an entry whose meta names artifacts the
        container lacks (a torn write); cache tiers treat that as corruption
        and fall back to recomputation.
        """
        spikes = arrays["spikes"]
        weights = arrays["weights"]
        if isinstance(spikes, np.ndarray):
            spikes.setflags(write=False)
        if isinstance(weights, np.ndarray):
            weights.setflags(write=False)
        evaluation = cls(spikes, weights)
        evaluation._hydrate_derived(arrays, meta, prefix="")
        for key, child_meta in (meta.get("preprocessed") or {}).items():
            # Rebuilding a child masks a copy of the dense spikes -- defer
            # it until preprocessed() is actually called, so an enriched
            # hit consumed without preprocessing never decodes the tensors.
            # Torn containers must still surface *here* as corruption (the
            # tiers turn that into a clean miss), so the member presence is
            # validated up front even though the rebuild is deferred.
            cls._validate_child_members(arrays, child_meta, prefix="pre%s_" % key)
            evaluation._pending_preprocessed[int(key)] = (arrays, child_meta)
        return evaluation

    @staticmethod
    def _validate_child_members(arrays: dict, child_meta: dict, prefix: str) -> None:
        for name in child_meta.get("derived", ()):
            if name not in _DEHYDRATED_PROPERTIES:
                raise KeyError("unknown derived artifact %r" % (name,))
            if prefix + "d_" + name not in arrays:
                raise KeyError("missing child artifact %r" % (prefix + "d_" + name,))
        for index in range(len(child_meta.get("lif", ()))):
            if prefix + "lif%d" % index not in arrays:
                raise KeyError("missing child artifact %r" % (prefix + "lif%d" % index,))
        for index in range(len(child_meta.get("compressions", ()))):
            if prefix + "comp%d" % index not in arrays:
                raise KeyError("missing child artifact %r" % (prefix + "comp%d" % index,))

    def _hydrate_derived(self, arrays: dict, meta: dict, prefix: str) -> None:
        from ..core.compressor import CompressorResult  # local: core imports engine

        for name in meta.get("derived", ()):
            if name not in _DEHYDRATED_PROPERTIES:
                raise KeyError("unknown derived artifact %r" % (name,))
            self.__dict__[name] = _readonly(arrays[prefix + "d_" + name])
        for index, (threshold, leak) in enumerate(meta.get("lif", ())):
            self._output_spikes[(threshold, leak)] = _readonly(arrays[prefix + "lif%d" % index])
        for index, record in enumerate(meta.get("compressions", ())):
            words = _readonly(arrays[prefix + "comp%d" % index])
            packed = PackedSpikeMatrix(
                words=words, nonsilent=words != 0, shape=tuple(record["shape"])
            )
            self._compressions[tuple(record["key"])] = CompressorResult(
                packed=packed,
                cycles=record["cycles"],
                output_bytes=record["output_bytes"],
                dropped_neurons=record["dropped_neurons"],
                silent_output_neurons=record["silent_output_neurons"],
            )


class AnnLayerEvaluation:
    """Shared evaluation of one dual-sparse ANN ``(activations, weights)`` pair.

    The ANN counterpart of :class:`LayerEvaluation` for the SNN-vs-ANN
    comparison (Figure 18): the SparTen-ANN and Gamma-ANN baselines consume
    the same activation/weight masks, matched-position matrix and ReLU
    outputs, so one evaluation can drive both models.
    """

    def __init__(self, activations: np.ndarray, weights: np.ndarray):
        activations = np.asarray(activations)
        weights = np.asarray(weights)
        if activations.ndim != 2 or weights.ndim != 2:
            raise ValueError("expected activations (M, K) and weights (K, N)")
        if activations.shape[1] != weights.shape[0]:
            raise ValueError("contraction dimension mismatch")
        self.activations = activations
        self.weights = weights

    @property
    def m(self) -> int:
        """Number of activation rows."""
        return self.activations.shape[0]

    @property
    def k(self) -> int:
        """Contraction dimension."""
        return self.activations.shape[1]

    @property
    def n(self) -> int:
        """Number of output neurons."""
        return self.weights.shape[1]

    @cached_property
    def act_mask(self) -> np.ndarray:
        """Float ``(M, K)`` indicator of non-zero activations."""
        return _readonly((self.activations != 0).astype(np.float64))

    @cached_property
    def weight_mask(self) -> np.ndarray:
        """Float ``(K, N)`` indicator of non-zero weights."""
        return _readonly((self.weights != 0).astype(np.float64))

    @cached_property
    def nnz_activations(self) -> int:
        """Number of non-zero activations."""
        return int(self.act_mask.sum())

    @cached_property
    def nnz_weights(self) -> int:
        """Number of non-zero weights."""
        return int(self.weight_mask.sum())

    @cached_property
    def weight_row_nnz(self) -> np.ndarray:
        """Non-zero weights per row of ``B``, shape ``(K,)``."""
        return _readonly(self.weight_mask.sum(axis=1))

    @cached_property
    def matches(self) -> np.ndarray:
        """``(M, N)`` matched (non-zero activation x non-zero weight) pairs."""
        return _readonly(self.act_mask @ self.weight_mask)

    @cached_property
    def total_matches(self) -> float:
        """Total matched positions (genuine multiply-accumulates)."""
        return float(self.matches.sum())

    @cached_property
    def outputs(self) -> np.ndarray:
        """ReLU outputs ``max(A @ B, 0)`` in float64 (exact integers)."""
        return _readonly(
            np.maximum(
                self.activations.astype(np.float64) @ self.weights.astype(np.float64), 0
            )
        )

    @cached_property
    def output_nnz(self) -> int:
        """Number of non-zero ReLU outputs."""
        return int((self.outputs > 0).sum())
