"""Shared serialisation for the evaluation-cache tiers.

Every tier below the in-process LRU moves the same value around -- a cache
entry holding the generated tensors, the post-generation bit-generator state
and the dehydrated derived artifacts -- so the byte format lives here, in one
place, and is reused verbatim by the on-disk tier (entry *files*) and the
network tier (entry *frames*):

* :func:`encode_state` / :func:`decode_state` -- the JSON round-trip of a
  ``numpy`` bit-generator state (arbitrary-precision integers natively,
  ndarray-valued fields -- e.g. Philox keys -- via a base64 envelope).
  Historically private to ``disk_cache.py``; shared now so the disk entry
  format and the remote wire format cannot drift apart.
* :func:`pack_payload` / :func:`unpack_payload` -- an ``{name: ndarray}``
  mapping plus a JSON ``meta`` record as one byte string.  v2 entries use a
  flat container (one JSON header, then the raw C-order array blobs): a v2
  entry holds a dozen-plus derived arrays and ``np.savez``'s per-member
  zipfile machinery costs more than the GEMMs the entry exists to skip,
  whereas the flat layout decodes with one read and ``np.frombuffer``
  slices.  The **v1** entry format (a ``.npz`` holding tensors + state
  only) decodes through the same reader -- the zip magic routes it to
  ``np.load`` and a missing ``meta`` member yields ``{"schema": 1}``.
* :func:`key_digest` -- the stable cross-process address of a cache key
  (the SHA-256 of the fingerprint tuple's ``repr``), used both as the disk
  entry file name and as the wire key of the remote tier.
* :func:`write_frame` / :func:`read_frame` -- the length-prefixed framing
  of the remote tier's socket protocol (one opcode byte, an 8-byte
  big-endian payload length, the payload).
"""

from __future__ import annotations

import base64
import hashlib
import io
import json
import socket
import struct

import numpy as np

__all__ = [
    "DeferredArray",
    "decode_state",
    "encode_state",
    "key_digest",
    "pack_payload",
    "read_frame",
    "unpack_payload",
    "write_frame",
]

_NDARRAY_TAG = "__ndarray__"

#: Reserved array name: the v2 header stores the meta record under it, and
#: legacy ``.npz`` containers may carry it as a member (absent from v1
#: entries, which decode as ``{"schema": 1}``).
META_MEMBER = "meta"


# --------------------------------------------------------------------- #
# Bit-generator state <-> JSON
# --------------------------------------------------------------------- #
def encode_state(value):
    """JSON-encodable copy of a bit-generator state (ndarrays via base64)."""
    if isinstance(value, dict):
        return {key: encode_state(entry) for key, entry in value.items()}
    if isinstance(value, np.ndarray):
        payload = base64.b64encode(np.ascontiguousarray(value).tobytes()).decode("ascii")
        return {_NDARRAY_TAG: [value.dtype.str, list(value.shape), payload]}
    if isinstance(value, (list, tuple)):
        return [encode_state(entry) for entry in value]
    if isinstance(value, np.integer):
        return int(value)
    return value


def decode_state(value):
    """Inverse of :func:`encode_state`."""
    if isinstance(value, dict):
        if set(value) == {_NDARRAY_TAG}:
            dtype, shape, payload = value[_NDARRAY_TAG]
            raw = np.frombuffer(base64.b64decode(payload), dtype=np.dtype(dtype))
            return raw.reshape(tuple(shape)).copy()
        return {key: decode_state(entry) for key, entry in value.items()}
    if isinstance(value, list):
        return [decode_state(entry) for entry in value]
    return value


# --------------------------------------------------------------------- #
# Addressing
# --------------------------------------------------------------------- #
def key_digest(key) -> str:
    """Stable cross-process address of a cache key.

    Keys are the hashable fingerprint tuples the in-memory LRU uses;
    ``repr`` of those tuples is deterministic (ints, floats, bools, strings
    and byte strings only), so its SHA-256 is a stable address across
    processes, runs and machines.
    """
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


# --------------------------------------------------------------------- #
# Entry payload <-> bytes
# --------------------------------------------------------------------- #
#: v2 flat-container magic (v1 entries are zip archives starting ``PK``).
_MAGIC = b"RPRC\x02\n"
_HEADER_LENGTH = struct.Struct(">Q")

_INT_DOWNCASTS = {
    "i": (np.int8, np.int16, np.int32),
    "u": (np.uint8, np.uint16, np.uint32),
}


#: Storage-codec marker for bit-packed binary arrays (``np.packbits``).
_BITS_CODEC = "bits"


def _storage_form(array: np.ndarray) -> tuple[np.ndarray, str]:
    """``(storage array, stored dtype str or codec)`` -- value-exact compaction.

    The generated tensors and derived counts are small-valued integers
    living in wide dtypes (int64 weights, float64 GEMM outputs, 0/1 byte
    spike tensors): storing them verbatim makes entry IO, not the skipped
    GEMMs, the disk-warm bottleneck.  Three value-exact forms apply:

    * a **binary** integer/bool array (values 0/1 only) is bit-packed
      8-to-a-byte (``np.packbits``),
    * an integer array whose range fits a narrower kin dtype is downcast,
    * an integer-*valued* float64 array within int32 range is stored int32.

    :func:`unpack_payload` reverses the form and casts back to the recorded
    original dtype, so the round-trip reproduces every value (and the
    dtype) exactly.  Arrays that do not qualify are stored verbatim.
    """
    array = np.ascontiguousarray(array)
    dtype = array.dtype
    if array.size == 0:
        return array, dtype.str
    if dtype.kind in ("b", "i", "u"):
        low, high = int(array.min()), int(array.max())
        if 0 <= low and high <= 1:
            return np.packbits(array.astype(np.uint8, copy=False).ravel()), _BITS_CODEC
        if dtype.kind in _INT_DOWNCASTS and dtype.itemsize > 1:
            for candidate in _INT_DOWNCASTS[dtype.kind]:
                info = np.iinfo(candidate)
                if np.dtype(candidate).itemsize >= dtype.itemsize:
                    break
                if info.min <= low and high <= info.max:
                    return array.astype(candidate), np.dtype(candidate).str
    elif dtype.kind == "f" and dtype.itemsize == 8:
        bound = float(np.iinfo(np.int32).max)
        with np.errstate(invalid="ignore"):
            exact = bool(
                np.all(np.isfinite(array))
                and np.all(np.abs(array) <= bound)
                and np.all(array == np.trunc(array))
            )
        if exact:
            low, high = int(array.min()), int(array.max())
            for candidate in (np.int8, np.int16, np.int32):
                info = np.iinfo(candidate)
                if info.min <= low and high <= info.max:
                    return array.astype(candidate), np.dtype(candidate).str
    return array, dtype.str


def pack_payload(arrays: dict, meta: dict) -> bytes:
    """Serialise ``arrays`` plus a JSON ``meta`` record into entry bytes.

    The container is flat: magic, one JSON header (the caller's ``meta``
    under ``"meta"`` plus each array's name/dtype/shape/byte-count under
    ``"arrays"``), then the raw C-order array blobs back to back.  Every
    value round-trips exactly (see :func:`_storage_form` for the
    value-exact dtype compaction).
    """
    if META_MEMBER in arrays:
        raise ValueError("array name %r is reserved" % (META_MEMBER,))
    blobs = []
    index = []
    for name, array in arrays.items():
        array = np.asarray(array)
        stored, stored_dtype = _storage_form(array)
        blob = stored.tobytes()
        record = {
            "name": name,
            "dtype": array.dtype.str,
            "shape": [int(dim) for dim in array.shape],
            "nbytes": len(blob),
        }
        if stored_dtype != array.dtype.str:
            record["stored"] = stored_dtype
        index.append(record)
        blobs.append(blob)
    header = json.dumps({"meta": meta, "arrays": index}).encode("utf-8")
    return b"".join([_MAGIC, _HEADER_LENGTH.pack(len(header)), header] + blobs)


class DeferredArray:
    """A not-yet-decoded array slice of an entry container.

    :func:`unpack_payload` hands these out for the names in its ``defer``
    set: the caller gets the ``shape`` / ``dtype`` / ``ndim`` immediately
    (enough to build evaluation shells and validate dimensions) and pays
    the decode -- bit-unpacking, dtype widening, the memory traffic -- only
    if the array is actually read.  On the statistics-warm path the dense
    tensors usually never are: every consumer reads the pre-seeded derived
    arrays instead.
    """

    __slots__ = ("_data", "_record", "_offset", "shape", "dtype")

    def __init__(self, data: bytes, record: dict, offset: int):
        self._data = data
        self._record = record
        self._offset = offset
        self.shape = tuple(record["shape"])
        self.dtype = np.dtype(record["dtype"])

    @property
    def ndim(self) -> int:
        return len(self.shape)

    def materialise(self) -> np.ndarray:
        """Decode the slice (read-only, exactly as the eager path would)."""
        array = _decode_array(self._data, self._record, self._offset)
        array.setflags(write=False)
        return array


def _decode_array(data: bytes, record: dict, offset: int) -> np.ndarray:
    dtype = np.dtype(record["dtype"])
    stored = record.get("stored", record["dtype"])
    shape = tuple(record["shape"])
    nbytes = int(record["nbytes"])
    if stored == _BITS_CODEC:
        packed = np.frombuffer(data, dtype=np.uint8, count=nbytes, offset=offset)
        size = int(np.prod(shape, dtype=np.int64)) if shape else 1
        array = np.unpackbits(packed, count=size).reshape(shape)
        if dtype != array.dtype:
            array = array.astype(dtype)
    else:
        stored_dtype = np.dtype(stored)
        array = np.frombuffer(
            data, dtype=stored_dtype, count=nbytes // stored_dtype.itemsize, offset=offset
        ).reshape(shape)
        if stored_dtype != dtype:
            array = array.astype(dtype)
    return array


def unpack_payload(data: bytes, defer=frozenset()) -> tuple[dict, dict]:
    """Inverse of :func:`pack_payload`: ``(arrays, meta)``.

    Decoded arrays are read-only ``np.frombuffer`` views over ``data`` (no
    copy; entries are shared read-only anyway).  Names listed in ``defer``
    come back as :class:`DeferredArray` handles instead of decoded arrays.
    A zip container is a **v1** entry (``np.savez`` tensors + state, no
    ``meta`` member) and decodes eagerly with ``meta == {"schema": 1}`` so
    callers can hydrate tensor-only.  Raises on a torn or corrupt container
    (callers treat that as a miss).
    """
    if not data.startswith(_MAGIC):
        return _unpack_npz(data)
    offset = len(_MAGIC)
    (header_length,) = _HEADER_LENGTH.unpack_from(data, offset)
    offset += _HEADER_LENGTH.size
    if header_length > len(data):
        raise ValueError("entry header overruns the container")
    record = json.loads(data[offset : offset + header_length].decode("utf-8"))
    offset += header_length
    arrays = {}
    for entry in record["arrays"]:
        nbytes = int(entry["nbytes"])
        if offset + nbytes > len(data):
            raise ValueError("entry array %r overruns the container" % (entry["name"],))
        if entry["name"] in defer:
            arrays[entry["name"]] = DeferredArray(data, entry, offset)
        else:
            arrays[entry["name"]] = _decode_array(data, entry, offset)
        offset += nbytes
    if offset != len(data):
        raise ValueError("entry container has trailing bytes")
    return arrays, record["meta"]


def _unpack_npz(data: bytes) -> tuple[dict, dict]:
    """Decode a legacy ``.npz`` (v1) entry container."""
    with np.load(io.BytesIO(data)) as npz:
        arrays = {name: npz[name] for name in npz.files if name != META_MEMBER}
        if META_MEMBER in npz.files:
            meta = json.loads(bytes(npz[META_MEMBER]).decode("utf-8"))
        else:
            meta = {"schema": 1}
    return arrays, meta


# --------------------------------------------------------------------- #
# Wire framing (remote tier)
# --------------------------------------------------------------------- #
_FRAME_HEADER = struct.Struct(">cQ")

#: Upper bound on a single frame's payload; a frame claiming more is treated
#: as protocol corruption (protects both sides from allocating on garbage).
MAX_FRAME_BYTES = 1 << 32


def write_frame(sock: socket.socket, op: bytes, payload: bytes = b"") -> None:
    """Send one ``op`` frame (a single opcode byte plus its payload)."""
    if len(op) != 1:
        raise ValueError("frame opcode must be a single byte")
    sock.sendall(_FRAME_HEADER.pack(op, len(payload)) + payload)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> tuple[bytes, bytes]:
    """Receive one frame: ``(op, payload)``.

    Raises :class:`ConnectionError` when the peer closes mid-frame and
    :class:`ValueError` on a corrupt header -- both make the remote tier
    degrade to the tiers below it rather than fail the sweep.
    """
    header = _recv_exact(sock, _FRAME_HEADER.size)
    op, length = _FRAME_HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ValueError("frame length %d exceeds protocol bound" % (length,))
    return op, _recv_exact(sock, length)
