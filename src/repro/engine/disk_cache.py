"""On-disk evaluation-cache backend below the in-process LRU.

Worker processes and repeated CLI runs each start with an empty in-memory
:class:`~repro.engine.backend.MemoryBackend`, so without a shared tier every
process regenerates the same random tensors.  The :class:`DiskEvaluationCache`
(a.k.a. ``DiskBackend`` on the :class:`~repro.engine.backend.CacheBackend`
protocol) is that shared tier: a directory of fingerprint-addressed entry
files, one per ``(workload fingerprint, generator fingerprint)`` cache key.
(The ``.npz`` file suffix is historical and kept for on-disk compatibility:
v2 entries are the flat :mod:`repro.engine.serde` container, only legacy v1
files are actual ``np.savez`` archives.)

Entry schema
------------
* **v2** (written today) -- the generated ``(spikes, weights)`` tensor pair,
  the post-generation bit-generator state, *and* the dehydrated derived
  artifacts of the evaluation (packed words, matches, full sums, the
  statistics-profile arrays, LIF output spikes, output compressions, one
  level of preprocessed children) via
  :meth:`~repro.engine.evaluation.LayerEvaluation.dehydrate`.  A disk-warm
  run therefore skips the matches/full-sums GEMM recomputation, not just
  tensor generation.  Entries are first published tensor-only at generation
  time and **refreshed** in place by the cache's write-back pass once the
  simulators have enriched the evaluation.
* **v1** (legacy, tensors + state only, no ``meta`` member) -- still loads;
  the evaluation hydrates tensor-only and recomputes its statistics, and the
  write-back pass upgrades the entry to v2 after its next use.

Design constraints:

* **Bit-identity** -- everything is stored losslessly
  (:mod:`repro.engine.serde`), so a disk hit is indistinguishable from
  regeneration.
* **Atomicity** -- entries are written to a temporary file in the cache
  directory and published with :func:`os.replace`, so a concurrent reader
  never observes a partial entry.  A corrupt entry (e.g. a torn write from
  a crashed process, or a v2 container whose meta names artifacts the
  archive lacks) is deleted and treated as a miss; the workload is simply
  regenerated.
* **Bounded size** -- an optional ``max_bytes`` budget evicts the
  least-recently-used entries (entry files carry their last-hit time as
  mtime).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

import numpy as np

from .backend import CacheBackend, CacheEntry, CacheStats, pack_entry, unpack_entry
from .serde import decode_state, encode_state, key_digest

__all__ = ["DiskBackend", "DiskEvaluationCache"]

_ENTRY_SUFFIX = ".npz"

# Back-compat aliases: these helpers lived here before they were shared with
# the remote wire format through repro.engine.serde.
_encode_state = encode_state
_decode_state = decode_state


class DiskEvaluationCache(CacheBackend):
    """Keyed on-disk store of evaluated workloads (the ``DiskBackend``).

    Parameters
    ----------
    directory:
        Where entries live; created if missing.  Safe to share between
        concurrent processes (writes are atomic, readers tolerate and drop
        torn entries).
    max_bytes:
        Optional budget for the sum of entry-file sizes.  When a store
        pushes the directory over the budget, the least-recently-used
        entries are deleted (the most recent entry is always kept, so a
        budget smaller than one entry still caches the current workload).
    store_derived:
        When ``False`` the tier strips the derived artifacts and persists
        tensors + state only (v1-sized entries) -- for space-constrained
        tiers, and for benchmarking the statistics persistence itself.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        max_bytes: int | None = None,
        store_derived: bool = True,
    ):
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive when given")
        # The directory is created lazily on the first store: constructing a
        # tier (or reading its stats) is a read-only act, so e.g. a CLI
        # `cache stats --cache-dir typo` does not litter the filesystem.
        self.directory = Path(directory)
        self.max_bytes = max_bytes
        self.store_derived = bool(store_derived)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.refreshes = 0
        self.corrupt_dropped = 0
        self.evictions = 0

    @classmethod
    def coerce(cls, cache_dir, max_bytes: int | None = None) -> "DiskEvaluationCache | None":
        """The shared ``cache_dir`` triage: ``None`` stays ``None``, an
        existing tier keeps its own budget and counters, and a path builds a
        fresh tier under ``max_bytes``.  Used by every surface that accepts
        a ``cache_dir`` (``SweepRunner``, ``repro.api.Session``) so the
        rules cannot drift apart.
        """
        if cache_dir is None:
            return None
        if isinstance(cache_dir, cls):
            return cache_dir
        return cls(cache_dir, max_bytes=max_bytes)

    # ------------------------------------------------------------------ #
    # Addressing
    # ------------------------------------------------------------------ #
    def entry_path(self, key) -> Path:
        """File holding the entry for ``key`` (exists only after a store).

        The address is :func:`repro.engine.serde.key_digest` -- the same
        digest the remote tier keys its frames by.
        """
        return self.directory / (key_digest(key) + _ENTRY_SUFFIX)

    # ------------------------------------------------------------------ #
    # Backend protocol
    # ------------------------------------------------------------------ #
    def get(self, key) -> CacheEntry | None:
        """The hydrated entry for ``key``, or ``None`` on a miss.

        A corrupt or partially written entry counts as a miss: the file is
        deleted so the caller's regeneration can re-publish a clean one.
        v1 entries hydrate tensor-only (their evaluation recomputes derived
        statistics on demand).
        """
        path = self.entry_path(key)
        try:
            entry = unpack_entry(path.read_bytes())
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Torn write / truncated zip / bad JSON / meta naming artifacts
            # the archive lacks: drop the entry.
            self.corrupt_dropped += 1
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        try:
            os.utime(path)  # record recency for the byte-budget eviction
        except OSError:
            pass
        return entry

    def put(self, key, entry: CacheEntry, replace: bool = False) -> None:
        """Atomically publish an entry (no-op if present, unless ``replace``)."""
        path = self.entry_path(key)
        if path.exists() and not replace:
            return
        if not self.store_derived:
            if replace and path.exists():
                return  # nothing to enrich a tensor-only tier with
            entry = CacheEntry(
                evaluation=type(entry.evaluation)(
                    entry.evaluation.spikes, entry.evaluation.weights
                ),
                state_after=entry.state_after,
            )
        refreshed = replace and path.exists()
        self._write_atomically(path, pack_entry(entry))
        if refreshed:
            self.refreshes += 1
        else:
            self.stores += 1
        if self.max_bytes is not None:
            self._evict_over_budget(keep=path)

    def _write_atomically(self, path: Path, payload: bytes) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def spec(self) -> tuple:
        return ("disk", str(self.directory), self.max_bytes, self.store_derived)

    # ------------------------------------------------------------------ #
    # Legacy tensor-level interface
    # ------------------------------------------------------------------ #
    def load(self, key) -> tuple[np.ndarray, np.ndarray, dict] | None:
        """Return ``(spikes, weights, state_after)`` or ``None`` on a miss.

        The pre-protocol interface; :meth:`get` returns the full hydrated
        entry instead.
        """
        entry = self.get(key)
        if entry is None:
            return None
        return entry.evaluation.spikes, entry.evaluation.weights, entry.state_after

    def store(self, key, spikes: np.ndarray, weights: np.ndarray, state_after: dict) -> None:
        """Publish a tensor-only entry for ``key`` (no-op if present)."""
        from .evaluation import LayerEvaluation

        self.put(key, CacheEntry(LayerEvaluation(spikes, weights), state_after))

    # ------------------------------------------------------------------ #
    # Path protocol
    # ------------------------------------------------------------------ #
    def __fspath__(self) -> str:
        """The tier *is* its directory to path-consuming code.

        Callers historically received ``cache_dir`` as a plain path; code
        that does ``Path(cache_dir)`` / ``os.path.join(cache_dir, ...)``
        keeps working when handed the tier object itself (as
        :class:`repro.api.Session` does to preserve its counters).
        """
        return str(self.directory)

    def __str__(self) -> str:
        return str(self.directory)

    # ------------------------------------------------------------------ #
    # Budget / inspection
    # ------------------------------------------------------------------ #
    def _entry_files(self) -> list[Path]:
        return [p for p in self.directory.glob("*" + _ENTRY_SUFFIX) if p.is_file()]

    def _evict_over_budget(self, keep: Path) -> None:
        entries = []
        for path in self._entry_files():
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime_ns, stat.st_size, path))
        entries.sort()  # oldest first
        total = sum(size for _, size, _ in entries)
        for _, size, path in entries:
            if total <= self.max_bytes:
                break
            if path == keep:
                continue  # never evict the entry just stored
            try:
                path.unlink()
            except OSError:
                continue
            self.evictions += 1
            total -= size

    def total_bytes(self) -> int:
        """Sum of entry-file sizes currently on disk."""
        total = 0
        for path in self._entry_files():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def __len__(self) -> int:
        return len(self._entry_files())

    def clear(self) -> None:
        """Delete every entry and reset the counters."""
        for path in self._entry_files():
            try:
                path.unlink()
            except OSError:
                pass
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.refreshes = 0
        self.corrupt_dropped = 0
        self.evictions = 0

    def cache_info(self) -> dict[str, int]:
        """:meth:`stats` as a plain dict (counters plus on-disk occupancy)."""
        return self.stats().as_dict()

    def stats(self) -> CacheStats:
        """Snapshot of the counters plus on-disk occupancy.

        Entry count and byte total come from one directory walk (stats are
        read per run for provenance; two scans would double the cost on
        large tiers).
        """
        entries = 0
        total = 0
        for path in self._entry_files():
            try:
                total += path.stat().st_size
            except OSError:
                continue
            entries += 1
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            entries=entries,
            stores=self.stores,
            refreshes=self.refreshes,
            corrupt_dropped=self.corrupt_dropped,
            total_bytes=total,
        )


#: The protocol-flavoured name of the tier (``backend.py`` documents the
#: stack; the class itself predates the protocol and keeps its import path).
DiskBackend = DiskEvaluationCache
