"""On-disk evaluation-cache tier below the in-process LRU.

Worker processes and repeated CLI runs each start with an empty in-memory
:class:`~repro.engine.cache.WorkloadEvaluationCache`, so without a shared
tier every process regenerates the same random tensors.  The
:class:`DiskEvaluationCache` is that shared tier: a directory of
fingerprint-addressed ``.npz`` entries, one per ``(workload fingerprint,
generator fingerprint)`` cache key, holding the generated ``(spikes,
weights)`` tensor pair plus the post-generation bit-generator state needed
to fast-forward the caller's generator on a hit.

Design constraints:

* **Bit-identity** -- tensors are stored losslessly (integer ``.npz``
  arrays) and the generator state round-trips through JSON exactly
  (arbitrary-precision integers natively, ndarray-valued state fields --
  e.g. Philox keys -- via a base64 envelope), so a disk hit is
  indistinguishable from regeneration.
* **Atomicity** -- entries are written to a temporary file in the cache
  directory and published with :func:`os.replace`, so a concurrent reader
  never observes a partial entry.  A corrupt entry (e.g. a torn write from
  a crashed process) is deleted and treated as a miss; the workload is
  simply regenerated.
* **Bounded size** -- an optional ``max_bytes`` budget evicts the
  least-recently-used entries (entry files carry their last-hit time as
  mtime).
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import tempfile
from pathlib import Path

import numpy as np

from .cache import CacheStats

__all__ = ["DiskEvaluationCache"]

_ENTRY_SUFFIX = ".npz"
_NDARRAY_TAG = "__ndarray__"


def _encode_state(value):
    """JSON-encodable copy of a bit-generator state (ndarrays via base64)."""
    if isinstance(value, dict):
        return {key: _encode_state(entry) for key, entry in value.items()}
    if isinstance(value, np.ndarray):
        payload = base64.b64encode(np.ascontiguousarray(value).tobytes()).decode("ascii")
        return {_NDARRAY_TAG: [value.dtype.str, list(value.shape), payload]}
    if isinstance(value, (list, tuple)):
        return [_encode_state(entry) for entry in value]
    if isinstance(value, np.integer):
        return int(value)
    return value


def _decode_state(value):
    """Inverse of :func:`_encode_state`."""
    if isinstance(value, dict):
        if set(value) == {_NDARRAY_TAG}:
            dtype, shape, payload = value[_NDARRAY_TAG]
            raw = np.frombuffer(base64.b64decode(payload), dtype=np.dtype(dtype))
            return raw.reshape(tuple(shape)).copy()
        return {key: _decode_state(entry) for key, entry in value.items()}
    if isinstance(value, list):
        return [_decode_state(entry) for entry in value]
    return value


class DiskEvaluationCache:
    """Keyed on-disk store of generated workload tensors.

    Parameters
    ----------
    directory:
        Where entries live; created if missing.  Safe to share between
        concurrent processes (writes are atomic, readers tolerate and drop
        torn entries).
    max_bytes:
        Optional budget for the sum of entry-file sizes.  When a store
        pushes the directory over the budget, the least-recently-used
        entries are deleted (the most recent entry is always kept, so a
        budget smaller than one entry still caches the current workload).
    """

    def __init__(self, directory: str | os.PathLike, max_bytes: int | None = None):
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive when given")
        # The directory is created lazily on the first store: constructing a
        # tier (or reading its stats) is a read-only act, so e.g. a CLI
        # `cache stats --cache-dir typo` does not litter the filesystem.
        self.directory = Path(directory)
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt_dropped = 0
        self.evictions = 0

    @classmethod
    def coerce(cls, cache_dir, max_bytes: int | None = None) -> "DiskEvaluationCache | None":
        """The shared ``cache_dir`` triage: ``None`` stays ``None``, an
        existing tier keeps its own budget and counters, and a path builds a
        fresh tier under ``max_bytes``.  Used by every surface that accepts
        a ``cache_dir`` (``SweepRunner``, ``repro.api.Session``) so the
        rules cannot drift apart.
        """
        if cache_dir is None:
            return None
        if isinstance(cache_dir, cls):
            return cache_dir
        return cls(cache_dir, max_bytes=max_bytes)

    # ------------------------------------------------------------------ #
    # Addressing
    # ------------------------------------------------------------------ #
    def entry_path(self, key) -> Path:
        """File holding the entry for ``key`` (exists only after a store).

        Keys are the same hashable fingerprint tuples the in-memory LRU
        uses; ``repr`` of those tuples is deterministic (ints, floats,
        bools, strings and byte strings only), so its SHA-256 is a stable
        address across processes and runs.
        """
        digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()
        return self.directory / (digest + _ENTRY_SUFFIX)

    # ------------------------------------------------------------------ #
    # Lookup / spill
    # ------------------------------------------------------------------ #
    def load(self, key) -> tuple[np.ndarray, np.ndarray, dict] | None:
        """Return ``(spikes, weights, state_after)`` or ``None`` on a miss.

        A corrupt or partially written entry counts as a miss: the file is
        deleted so the caller's regeneration can re-publish a clean one.
        """
        path = self.entry_path(key)
        try:
            with np.load(path) as data:
                spikes = data["spikes"]
                weights = data["weights"]
                state = _decode_state(json.loads(bytes(data["state"]).decode("utf-8")))
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Torn write / truncated zip / bad JSON: drop the entry.
            self.corrupt_dropped += 1
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        try:
            os.utime(path)  # record recency for the byte-budget eviction
        except OSError:
            pass
        return spikes, weights, state

    # ------------------------------------------------------------------ #
    # Path protocol
    # ------------------------------------------------------------------ #
    def __fspath__(self) -> str:
        """The tier *is* its directory to path-consuming code.

        Callers historically received ``cache_dir`` as a plain path; code
        that does ``Path(cache_dir)`` / ``os.path.join(cache_dir, ...)``
        keeps working when handed the tier object itself (as
        :class:`repro.api.Session` does to preserve its counters).
        """
        return str(self.directory)

    def __str__(self) -> str:
        return str(self.directory)

    def store(self, key, spikes: np.ndarray, weights: np.ndarray, state_after: dict) -> None:
        """Atomically publish an entry for ``key`` (no-op if present)."""
        path = self.entry_path(key)
        if path.exists():
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        state_payload = json.dumps(_encode_state(state_after)).encode("utf-8")
        fd, tmp_name = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(
                    handle,
                    spikes=np.asarray(spikes),
                    weights=np.asarray(weights),
                    state=np.frombuffer(state_payload, dtype=np.uint8),
                )
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stores += 1
        if self.max_bytes is not None:
            self._evict_over_budget(keep=path)

    # ------------------------------------------------------------------ #
    # Budget / inspection
    # ------------------------------------------------------------------ #
    def _entry_files(self) -> list[Path]:
        return [p for p in self.directory.glob("*" + _ENTRY_SUFFIX) if p.is_file()]

    def _evict_over_budget(self, keep: Path) -> None:
        entries = []
        for path in self._entry_files():
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime_ns, stat.st_size, path))
        entries.sort()  # oldest first
        total = sum(size for _, size, _ in entries)
        for _, size, path in entries:
            if total <= self.max_bytes:
                break
            if path == keep:
                continue  # never evict the entry just stored
            try:
                path.unlink()
            except OSError:
                continue
            self.evictions += 1
            total -= size

    def total_bytes(self) -> int:
        """Sum of entry-file sizes currently on disk."""
        total = 0
        for path in self._entry_files():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def __len__(self) -> int:
        return len(self._entry_files())

    def clear(self) -> None:
        """Delete every entry and reset the counters."""
        for path in self._entry_files():
            try:
                path.unlink()
            except OSError:
                pass
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt_dropped = 0
        self.evictions = 0

    def cache_info(self) -> dict[str, int]:
        """:meth:`stats` as a plain dict (counters plus on-disk occupancy)."""
        return self.stats().as_dict()

    def stats(self) -> CacheStats:
        """Snapshot of the counters plus on-disk occupancy.

        Entry count and byte total come from one directory walk (stats are
        read per run for provenance; two scans would double the cost on
        large tiers).
        """
        entries = 0
        total = 0
        for path in self._entry_files():
            try:
                total += path.stat().st_size
            except OSError:
                continue
            entries += 1
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            entries=entries,
            stores=self.stores,
            corrupt_dropped=self.corrupt_dropped,
            total_bytes=total,
        )
