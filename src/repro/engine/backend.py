"""Composable cache-backend stack below the evaluation LRU.

The evaluation cache used to be a hard-wired two-level arrangement (the
in-process LRU spilling to one ``DiskEvaluationCache``).  This module turns
the levels into interchangeable **backends** speaking one small protocol, so
a cache is now a *stack* -- memory over disk over a network-addressed remote
tier, or any subset -- composed by :class:`TieredCache`:

* :class:`CacheBackend` -- the protocol: ``get`` / ``put`` / ``stats`` /
  ``clear``, plus ``spec()`` (a picklable description worker processes use
  to reattach equivalent backends after ``fork``/``spawn``).
* :class:`MemoryBackend` -- the LRU level, extracted from
  ``WorkloadEvaluationCache`` (which now orchestrates fingerprinting,
  generator fast-forwarding and write-back *over* a stack of these).
* ``DiskBackend`` -- the on-disk entry-file tier rebuilt on the protocol;
  lives in
  :mod:`repro.engine.disk_cache` (as ``DiskEvaluationCache``) and is
  re-exported from :mod:`repro.engine`.
* :class:`RemoteBackend` -- a client of the evaluation-cache daemon
  (:mod:`repro.engine.server`), speaking the length-prefixed frame protocol
  from :mod:`repro.engine.serde`.  An unreachable daemon degrades the stack
  to the remaining tiers with a single warning instead of failing the sweep.
* :class:`TieredCache` -- ordered composition with promote-on-hit: a hit at
  tier *i* is re-published to every tier above it, write-through ``put``
  populates all tiers.

The value moving between tiers is a :class:`CacheEntry`; below the memory
level it is serialised with :func:`pack_entry` / :func:`unpack_entry`
(:meth:`LayerEvaluation.dehydrate` under one ``.npz`` envelope), the same
bytes on disk and on the wire.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from .evaluation import LayerEvaluation
from .serde import (
    decode_state,
    encode_state,
    key_digest,
    pack_payload,
    read_frame,
    unpack_payload,
    write_frame,
)

__all__ = [
    "CacheBackend",
    "CacheEntry",
    "CacheStats",
    "MemoryBackend",
    "RemoteBackend",
    "TieredCache",
    "build_backends",
    "pack_entry",
    "unpack_entry",
]


@dataclass(frozen=True)
class CacheStats:
    """Counter snapshot of one cache tier.

    Shared by every backend (memory LRU, disk, remote daemon) and by the
    orchestrating :class:`~repro.engine.cache.WorkloadEvaluationCache`;
    fields that do not apply to a tier keep their defaults.

    Attributes
    ----------
    hits / misses:
        Lookups served from / absent from this tier since the last reset.
    evictions:
        Entries dropped to respect the tier's capacity bound (the LRU's
        ``maxsize``, the disk tier's / daemon's ``max_bytes``).
    entries:
        Entries currently held.
    disk_hits:
        Evaluation-cache orchestrator only -- lookups absent from the LRU
        but served by a lower tier (disk *or* remote).  Counted separately
        from ``misses`` (which only counts full misses that regenerated
        tensors), so total lookups are ``hits + disk_hits + misses``.
    maxsize:
        Memory LRU only -- the entry-count bound.
    stores:
        Persistent tiers only -- entries published since the last reset.
    refreshes:
        Persistent tiers only -- already-stored entries re-published with
        more derived artifacts by the write-back pass.
    corrupt_dropped:
        Persistent tiers only -- torn/corrupt entries deleted on load.
    total_bytes:
        Persistent tiers only -- sum of entry sizes currently held.
    """

    hits: int
    misses: int
    evictions: int
    entries: int
    disk_hits: int = 0
    maxsize: int | None = None
    stores: int = 0
    refreshes: int = 0
    corrupt_dropped: int = 0
    total_bytes: int | None = None

    def as_dict(self) -> dict[str, int]:
        """The populated counters as a plain dict (``None`` fields omitted)."""
        out = {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": self.entries,
        }
        if self.maxsize is not None:
            out["disk_hits"] = self.disk_hits
            out["maxsize"] = self.maxsize
        if self.total_bytes is not None:
            out["stores"] = self.stores
            out["refreshes"] = self.refreshes
            out["corrupt_dropped"] = self.corrupt_dropped
            out["total_bytes"] = self.total_bytes
        return out


@dataclass
class CacheEntry:
    """The value one cache key addresses, whichever tier holds it.

    ``evaluation`` carries the generated tensors plus whatever derived
    artifacts have been computed (see :meth:`LayerEvaluation.dehydrate`);
    ``state_after`` is the post-generation bit-generator state used to
    fast-forward the caller's generator on a hit.  ``packed_cache`` memoises
    the serialised form across the tiers of one write-through (see
    :func:`pack_entry`); :class:`TieredCache` drops it once the stack is
    served so entry bytes are not retained alongside the live evaluation.
    """

    evaluation: LayerEvaluation
    state_after: dict
    packed_cache: tuple | None = field(default=None, repr=False, compare=False)


def pack_entry(entry: CacheEntry) -> bytes:
    """One entry as self-contained bytes (disk file == wire payload).

    Write-through stacks serialise each entry once: the packed bytes are
    memoised on the entry keyed by the evaluation's derived-state
    signature, so a disk tier and a remote tier publishing the same entry
    share one ``pack_payload`` pass (bit-packing the dense tensors is the
    expensive step), while an evaluation enriched since the last pack --
    a write-back -- repacks.
    """
    signature = entry.evaluation.derived_signature()
    if entry.packed_cache is not None and entry.packed_cache[0] == signature:
        return entry.packed_cache[1]
    arrays, meta = entry.evaluation.dehydrate()
    arrays = dict(arrays)
    arrays["state"] = np.frombuffer(
        json.dumps(encode_state(entry.state_after)).encode("utf-8"), dtype=np.uint8
    )
    data = pack_payload(arrays, meta)
    # dehydrate() may have rebuilt pending children; re-sign so the memo
    # matches the evaluation's state as serialised.
    entry.packed_cache = (entry.evaluation.derived_signature(), data)
    return data


def unpack_entry(data: bytes) -> CacheEntry:
    """Inverse of :func:`pack_entry`; raises on a torn/corrupt container.

    The dense tensors are deferred (:class:`~repro.engine.serde.DeferredArray`):
    an enriched entry's consumers read the pre-seeded derived arrays, so the
    tensor bytes decode only if something actually touches them.  The entry
    keeps the received bytes as its ``packed_cache``, so promoting a remote
    hit into the disk tier re-publishes them verbatim instead of paying a
    full dehydrate/re-pack (:class:`TieredCache` drops the memo once the
    promotion is done).
    """
    arrays, meta = unpack_payload(data, defer={"spikes", "weights"})
    state = decode_state(json.loads(bytes(arrays.pop("state")).decode("utf-8")))
    entry = CacheEntry(LayerEvaluation.hydrate(arrays, meta), state)
    entry.packed_cache = (entry.evaluation.derived_signature(), data)
    return entry


class CacheBackend:
    """Protocol of one cache tier.

    Concrete backends implement:

    * ``get(key) -> CacheEntry | None`` -- a miss is ``None``; internal
      failures (torn entries, dead connections) degrade to a miss rather
      than raise, so a broken tier never fails the sweep.
    * ``put(key, entry, replace=False)`` -- publish an entry; with
      ``replace`` an existing entry is overwritten (the write-back pass uses
      this to enrich tensor-only entries with derived artifacts).
    * ``stats() -> CacheStats`` and ``clear()``.
    * ``spec()`` -- a picklable ``(kind, ...)`` tuple describing how to
      build an equivalent backend in another process (worker processes
      reattach their tiers from specs after ``fork``/``spawn``; live
      backends hold locks and sockets and must not cross process
      boundaries).  :func:`build_backends` is the inverse.

    Adding a backend is exactly these five methods -- see the "cache tiers"
    section of ``ROADMAP.md`` for the recipe.
    """

    def get(self, key) -> CacheEntry | None:
        raise NotImplementedError

    def put(self, key, entry: CacheEntry, replace: bool = False) -> None:
        raise NotImplementedError

    def stats(self) -> CacheStats:
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError

    def spec(self) -> tuple:
        raise NotImplementedError


class MemoryBackend(CacheBackend):
    """The in-process LRU level, bounded by entry count.

    Thread-safe behind one lock.  This tier alone stores live
    :class:`CacheEntry` objects (no serialisation), so a hit shares the very
    evaluation instance -- and all its memoised statistics -- across
    simulators.
    """

    def __init__(self, maxsize: int = 128):
        if maxsize < 1:
            raise ValueError("maxsize must be at least 1")
        self.maxsize = maxsize
        self._entries: "OrderedDict[tuple, CacheEntry]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key) -> CacheEntry | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self.hits += 1
            self._entries.move_to_end(key)
            return entry

    def put(self, key, entry: CacheEntry, replace: bool = False) -> None:
        with self._lock:
            if key in self._entries and not replace:
                self._entries.move_to_end(key)
                return
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1

    def resize(self, maxsize: int) -> None:
        """Change the entry bound, evicting least-recently-used overflow now."""
        if maxsize < 1:
            raise ValueError("maxsize must be at least 1")
        with self._lock:
            self.maxsize = maxsize
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self.hits,
                misses=self.misses,
                evictions=self.evictions,
                entries=len(self._entries),
                maxsize=self.maxsize,
            )

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def spec(self) -> tuple:
        return ("memory", self.maxsize)


class RemoteBackend(CacheBackend):
    """Client of the network-addressed evaluation-cache daemon.

    Speaks the length-prefixed frame protocol of
    :mod:`repro.engine.server` over one persistent TCP connection (lazily
    opened, transparently re-opened once per operation on failure).  A dead
    or unreachable daemon does **not** fail the sweep: the backend emits a
    single :class:`RuntimeWarning`, marks itself down and answers every
    further lookup as a miss, so the stack degrades to the remaining tiers.

    ``url`` is ``host:port`` (optionally prefixed ``tcp://``); a bare
    ``host`` uses the daemon's default port.
    """

    #: Default daemon port (also used by ``python -m repro cache serve``).
    DEFAULT_PORT = 8737

    def __init__(self, url: str, timeout: float = 5.0):
        self.url = str(url)
        self.timeout = timeout
        self.host, self.port = self._parse(self.url)
        self._sock: socket.socket | None = None
        self._sock_pid: int | None = None
        self._lock = threading.RLock()
        self._down = False
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.refreshes = 0
        self.errors = 0

    def __str__(self) -> str:
        """The backend *is* its URL to string-consuming code (the same
        convention as ``DiskEvaluationCache.__str__`` for its directory)."""
        return self.url

    @staticmethod
    def _parse(url: str) -> tuple[str, int]:
        text = url
        for prefix in ("tcp://", "cache://"):
            if text.startswith(prefix):
                text = text[len(prefix) :]
        host, _, port = text.partition(":")
        if not host:
            raise ValueError("cache URL %r has no host" % (url,))
        return host, int(port) if port else RemoteBackend.DEFAULT_PORT

    @classmethod
    def coerce(cls, cache_url) -> "RemoteBackend | None":
        """``None`` stays ``None``, an existing backend keeps its counters
        and connection, a URL string builds a fresh client (the same triage
        rule as ``DiskEvaluationCache.coerce``)."""
        if cache_url is None:
            return None
        if isinstance(cache_url, cls):
            return cache_url
        return cls(cache_url)

    # ------------------------------------------------------------------ #
    # Connection plumbing
    # ------------------------------------------------------------------ #
    @property
    def alive(self) -> bool:
        """Whether the backend is still in service (not marked down)."""
        return not self._down

    def _connect(self) -> socket.socket:
        sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        sock.settimeout(self.timeout)
        return sock

    def _mark_down(self, error: BaseException) -> None:
        self._down = True
        self.errors += 1
        warnings.warn(
            "remote evaluation-cache tier %s is unreachable (%s: %s); "
            "continuing with the remaining cache tiers"
            % (self.url, type(error).__name__, error),
            RuntimeWarning,
            stacklevel=4,
        )

    def _request(self, op: bytes, payload: bytes) -> tuple[bytes, bytes] | None:
        """One round-trip; ``None`` when the tier is (or just went) down."""
        with self._lock:
            if self._down:
                return None
            if self._sock is not None and self._sock_pid != os.getpid():
                # A fork inherited this connection: two processes writing
                # interleaved frames on one TCP stream would cross-deliver
                # responses.  Drop the FD (without shutting the parent's
                # connection down) and dial fresh from this process.
                self._sock = None
            for attempt in (0, 1):
                try:
                    if self._sock is None:
                        self._sock = self._connect()
                        self._sock_pid = os.getpid()
                    write_frame(self._sock, op, payload)
                    return read_frame(self._sock)
                except (OSError, ValueError) as error:
                    # Broken pipe / half-open peer: drop the socket and retry
                    # once on a fresh connection before declaring the tier
                    # down (a daemon restart should not cost a whole run).
                    self.close()
                    if attempt:
                        self._mark_down(error)
            return None

    def close(self) -> None:
        """Drop the persistent connection (it re-opens lazily on next use)."""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    # ------------------------------------------------------------------ #
    # Backend protocol
    # ------------------------------------------------------------------ #
    def get(self, key) -> CacheEntry | None:
        response = self._request(b"G", key_digest(key).encode("ascii"))
        if response is None or response[0] != b"H":
            self.misses += 1
            return None
        try:
            entry = unpack_entry(response[1])
        except Exception:
            # A corrupt frame body counts as a miss; the entry will be
            # regenerated and re-published over the torn one.
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(self, key, entry: CacheEntry, replace: bool = False) -> None:
        payload = key_digest(key).encode("ascii") + pack_entry(entry)
        response = self._request(b"R" if replace else b"P", payload)
        if response is not None and response[0] == b"O":
            if replace:
                self.refreshes += 1
            else:
                self.stores += 1

    def server_stats(self) -> CacheStats | None:
        """The daemon's own counters, or ``None`` when unreachable."""
        response = self._request(b"S", b"")
        if response is None or response[0] != b"O":
            return None
        try:
            record = json.loads(response[1].decode("utf-8"))
            return CacheStats(**record)
        except (ValueError, TypeError):
            return None

    def stats(self) -> CacheStats:
        """Daemon-side counters when reachable, client-side ones otherwise."""
        remote = self.server_stats()
        if remote is not None:
            return remote
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=0,
            entries=0,
            stores=self.stores,
            refreshes=self.refreshes,
            total_bytes=0,
        )

    def clear(self) -> bool:
        """Ask the daemon to drop its entries; ``True`` when acknowledged.

        ``False`` means the clear never reached the daemon (unreachable or
        timed out) -- callers reporting an irreversible clear to a user
        must check, since a degraded tier swallows the request silently.
        """
        response = self._request(b"C", b"")
        return response is not None and response[0] == b"O"

    def spec(self) -> tuple:
        return ("remote", self.url, self.timeout)


class TieredCache:
    """An ordered stack of backends with promote-on-hit.

    ``get`` consults the tiers top-down and re-publishes a hit into every
    tier above the one that served it (so the next lookup is faster);
    ``put`` writes through to every tier.  Backends that fail internally
    answer as misses, so a degraded tier shrinks the stack instead of
    breaking it.
    """

    def __init__(self, backends):
        self.backends = tuple(backends)

    def __len__(self) -> int:
        return len(self.backends)

    def get(self, key) -> tuple[CacheEntry | None, int]:
        """``(entry, level)`` -- the hit's tier index, or ``(None, -1)``."""
        for level, backend in enumerate(self.backends):
            entry = backend.get(key)
            if entry is not None:
                for upper in self.backends[:level]:
                    upper.put(key, entry)
                entry.packed_cache = None  # bytes reuse ends with the promote
                return entry, level
        return None, -1

    def put(self, key, entry: CacheEntry, replace: bool = False) -> None:
        for backend in self.backends:
            backend.put(key, entry, replace=replace)
        entry.packed_cache = None  # bytes reuse ends with the write-through

    def stats(self) -> list[CacheStats]:
        return [backend.stats() for backend in self.backends]

    def clear(self) -> None:
        for backend in self.backends:
            backend.clear()

    def spec(self) -> tuple:
        return tuple(backend.spec() for backend in self.backends)


def build_backends(specs) -> tuple[CacheBackend, ...]:
    """Rebuild a backend stack from picklable ``spec()`` tuples.

    The inverse of ``[backend.spec() for backend in stack]``; worker
    processes call this after ``fork``/``spawn`` to attach tiers equivalent
    to the parent's (fresh locks, fresh connections).
    """
    from .disk_cache import DiskEvaluationCache  # local: disk_cache imports us

    backends: list[CacheBackend] = []
    for spec in specs:
        kind = spec[0]
        if kind == "memory":
            backends.append(MemoryBackend(maxsize=spec[1]))
        elif kind == "disk":
            backends.append(
                DiskEvaluationCache(spec[1], max_bytes=spec[2], store_derived=spec[3])
            )
        elif kind == "remote":
            backends.append(RemoteBackend(spec[1], timeout=spec[2]))
        else:
            raise ValueError("unknown cache-backend spec %r" % (spec,))
    return tuple(backends)
