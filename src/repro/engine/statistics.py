"""Exact per-layer sparsity statistics shared by every accelerator model.

:class:`LayerStatistics` is the value object the baseline simulators consume:
every count in it is computed from the *actual* tensors of a layer (not from
expected densities), so the cost models stay exact with respect to the
workload's sparsity structure.  The statistics are produced once per layer by
:class:`repro.engine.evaluation.LayerEvaluation` and shared by all
simulators; :func:`repro.baselines.common.collect_layer_statistics` remains
as a thin compatibility wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LayerStatistics"]


@dataclass
class LayerStatistics:
    """Exact sparsity statistics of one ``(A, B)`` layer pair.

    Attributes
    ----------
    m, k, n, t:
        Layer dimensions.
    nnz_weights:
        Non-zero weights in ``B``.
    nnz_spikes:
        Non-zero spikes in ``A`` (across all timesteps).
    nonsilent_neurons:
        ``(m, k)`` positions that fire at least once.
    matches:
        ``(M, N)`` array of non-silent x non-zero-weight matched positions.
    true_acs:
        ``(M, N)`` array of genuine accumulate operations (spike = 1 and
        weight != 0, summed over timesteps).
    true_acs_per_t:
        Total genuine accumulations per timestep, shape ``(T,)``.
    active_columns_per_t:
        Number of ``k`` columns of ``A`` with at least one spike, per
        timestep (drives outer-product B-row fetches).
    weight_row_nnz:
        Non-zeros per row of ``B``, shape ``(K,)``.
    spikes_per_row_t:
        Non-zero spikes per ``(m, t)`` pair, shape ``(M, T)``.
    active_column_mask:
        Boolean ``(K, T)`` mask of ``k`` columns with at least one spike in
        each timestep (``active_columns_per_t`` is its per-timestep sum).
    spikes_per_column_t:
        Non-zero spikes per ``(k, t)`` pair, shape ``(K, T)`` (drives
        Gustavson weight-row fetch counts).
    """

    m: int
    k: int
    n: int
    t: int
    nnz_weights: int
    nnz_spikes: int
    nonsilent_neurons: int
    matches: np.ndarray
    true_acs: np.ndarray
    true_acs_per_t: np.ndarray
    active_columns_per_t: np.ndarray
    weight_row_nnz: np.ndarray
    spikes_per_row_t: np.ndarray
    active_column_mask: np.ndarray
    spikes_per_column_t: np.ndarray
