"""``ArchSpec``: one frozen, hashable description of a hardware design point.

Every hardware knob the cost models read -- TPPE provisioning, memory
capacities and bandwidths, the clock, the per-event energy constants, the
Table IV area tables and the baseline-accelerator microparameters -- lives in
one dataclass tree:

* :class:`PESpec` -- the temporal-parallel processing elements (count,
  provisioned timesteps, bitmask chunking, prefix-sum adders, FIFOs),
* :class:`MemorySpec` -- global SRAM capacity / banking / port width and the
  off-chip (HBM) bandwidth,
* :class:`~repro.arch.energy.EnergyModel` -- per-access / per-operation
  energies,
* :class:`~repro.arch.area.AreaSpec` -- the synthesis-derived component cost
  tables and timestep-scaling fractions,
* :class:`BaselineSpec` -- the published microarchitectural parameters of
  the baseline accelerators (systolic array shape, merger radix, psum
  scratchpad size, ...), so a design-space sweep moves *every* simulator's
  knobs through one addressing scheme.

An :class:`ArchSpec` is immutable and hashable, so it can ride inside
:class:`~repro.runner.SimulatorSpec` cells, be pickled to worker processes
and key result dictionaries.  Design points derive from named **presets**
(``"loas-32nm"`` is the paper's Table III machine) via
:meth:`ArchSpec.with_overrides`, which accepts flat ``"group.field"`` paths
as well as unambiguous bare field names::

    spec = get_arch_spec("loas-32nm").with_overrides(**{
        "pe.num_tppes": 32,
        "memory.global_cache_bytes": 512 * 1024,
        "dram_per_byte": 48.0,          # bare name, unique across groups
    })

Hardware design points are pure *cost* parameters: the workload tensors the
evaluation engine caches depend only on the workload (shape including ``T``,
sparsity profile, weight bits) and the generator state, never on the arch.
The one knob with a tensor-side twin is ``pe.timesteps`` -- sweep builders
couple it into ``WorkloadSpec.timesteps`` (where it joins the workload
fingerprint; see :data:`repro.engine.TENSOR_COUPLED_ARCH_FIELDS`) and
nothing else, so pure-cost sweeps (PE counts, SRAM capacity, energy
constants) share one cached evaluation per (layer, variant).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields as dataclass_fields, replace
from typing import Iterable, Mapping

from .area import AreaSpec
from .energy import EnergyModel
from .memory import DRAMModel, SRAMModel

__all__ = [
    "ARCH_PRESETS",
    "ArchSpec",
    "BaselineSpec",
    "DEFAULT_ARCH",
    "MemorySpec",
    "PESpec",
    "arch_label",
    "default_arch",
    "get_arch_spec",
    "list_arch_presets",
    "normalize_overrides",
    "register_arch_preset",
    "resolve_arch",
]

#: Name of the paper's Table III machine, the default design point.
DEFAULT_ARCH = "loas-32nm"


@dataclass(frozen=True)
class PESpec:
    """Provisioning of the temporal-parallel processing elements.

    Attributes
    ----------
    num_tppes:
        Number of temporal-parallel processing elements.
    timesteps:
        Number of timesteps ``T`` the datapath is provisioned for (one
        pseudo-accumulator plus ``T`` correction accumulators per TPPE).
    weight_bits:
        Bit width of the weights of matrix ``B``.
    bitmask_chunk_bits:
        Width of the bitmask chunk processed per prefix-sum invocation.
    laggy_adders:
        Number of adders in the laggy prefix-sum circuit (latency =
        ``bitmask_chunk_bits / laggy_adders`` cycles).
    fifo_depth:
        Depth of the matched-position / matched-weight FIFOs.
    weight_buffer_bytes:
        Per-TPPE buffer holding the non-zero weights of the current fiber-B.
    pointer_bits:
        Width of the pointer stored after each fiber bitmask.
    task_overhead_cycles:
        Fixed per-output-neuron pipeline overhead (fiber hand-off, P-LIF
        hand-off, laggy-prefix drain at the end of a fiber).
    """

    num_tppes: int = 16
    timesteps: int = 4
    weight_bits: int = 8
    bitmask_chunk_bits: int = 128
    laggy_adders: int = 16
    fifo_depth: int = 8
    weight_buffer_bytes: int = 128
    pointer_bits: int = 32
    task_overhead_cycles: int = 8

    def __post_init__(self) -> None:
        if self.num_tppes < 1:
            raise ValueError("num_tppes must be at least 1")
        if self.timesteps < 1:
            raise ValueError("timesteps must be at least 1")
        if self.bitmask_chunk_bits < 1:
            raise ValueError("bitmask_chunk_bits must be at least 1")
        if self.laggy_adders < 1:
            raise ValueError("laggy_adders must be at least 1")


@dataclass(frozen=True)
class MemorySpec:
    """Global SRAM and off-chip DRAM provisioning.

    Attributes
    ----------
    global_cache_bytes:
        Global SRAM (FiberCache) capacity (256 KB in the paper).
    cache_banks:
        Number of independently accessible SRAM banks (16 in the paper).
    sram_bytes_per_bank_per_cycle:
        Bytes each bank delivers per cycle (a 128-bit port by default).
    dram_bandwidth_gbps:
        Peak off-chip (HBM) bandwidth in GB/s (128 GB/s in the paper).
    """

    global_cache_bytes: int = 256 * 1024
    cache_banks: int = 16
    sram_bytes_per_bank_per_cycle: float = 16.0
    dram_bandwidth_gbps: float = 128.0

    def __post_init__(self) -> None:
        if self.global_cache_bytes < 1:
            raise ValueError("global_cache_bytes must be at least 1")
        if self.cache_banks < 1:
            raise ValueError("cache_banks must be at least 1")
        if self.dram_bandwidth_gbps < 0:
            raise ValueError("dram_bandwidth_gbps must be non-negative")


@dataclass(frozen=True)
class BaselineSpec:
    """Published microparameters of the baseline accelerator models.

    These used to live as class attributes inside the individual models;
    collecting them here makes a design point sweep *every* simulator's
    hardware through one addressing scheme.  The defaults are the values the
    baseline papers publish (and the old class attributes carried).

    Attributes
    ----------
    systolic_rows / systolic_cols:
        Shape of the dense baselines' systolic array (PTB / Stellar use a
        16x4 array so 16 outputs x 4 timesteps match LoAS's output rate).
    merger_radix:
        Radix of Gamma's on-chip merger (scaled rows merged per pass).
    effective_merge_radix:
        Effective merge radix of Gamma-SNN under sequential timesteps (the
        per-timestep passes fragment the merge schedule).
    merge_throughput:
        Elements the merge pipeline retires per cycle across all PEs.
    psum_bytes:
        Bytes per partial-sum element (16-bit accumulators).
    psum_buffer_bytes:
        GoSPA's dedicated on-chip partial-sum scratchpad capacity.
    psum_access_bytes:
        Bytes moved per psum update (read-modify-write at line granularity).
    psum_update_throughput:
        Partial-sum updates GoSPA's banked psum memory absorbs per cycle.
    per_timestep_overhead_cycles:
        SparTen-SNN's extra cycles per (output neuron, timestep) for
        restarting the inner-join pipeline between sequential passes.
    window_capacity:
        Timesteps one PTB time-window column is nominally designed for.
    """

    systolic_rows: int = 16
    systolic_cols: int = 4
    merger_radix: int = 64
    effective_merge_radix: int = 2
    merge_throughput: float = 16.0
    psum_bytes: int = 2
    psum_buffer_bytes: int = 8 * 1024
    psum_access_bytes: float = 12.0
    psum_update_throughput: float = 4.0
    per_timestep_overhead_cycles: int = 12
    window_capacity: int = 16

    def __post_init__(self) -> None:
        if self.systolic_rows < 1 or self.systolic_cols < 1:
            raise ValueError("systolic array dimensions must be at least 1")
        if self.merger_radix < 1 or self.effective_merge_radix < 1:
            raise ValueError("merger radices must be at least 1")


@dataclass(frozen=True)
class ArchSpec:
    """One complete hardware design point (see the module docstring)."""

    name: str = DEFAULT_ARCH
    clock_ghz: float = 0.8
    pe: PESpec = field(default_factory=PESpec)
    memory: MemorySpec = field(default_factory=MemorySpec)
    energy: EnergyModel = field(default_factory=EnergyModel)
    area: AreaSpec = field(default_factory=AreaSpec)
    baseline: BaselineSpec = field(default_factory=BaselineSpec)

    #: The sub-spec groups addressable through ``"group.field"`` paths.
    GROUPS = ("pe", "memory", "energy", "area", "baseline")
    #: Top-level scalar fields addressable by bare name.
    SCALARS = ("name", "clock_ghz")

    # ------------------------------------------------------------------ #
    # Derived models
    # ------------------------------------------------------------------ #
    def dram_model(self) -> DRAMModel:
        """The off-chip bandwidth model at this spec's clock."""
        return DRAMModel(
            bandwidth_gbps=self.memory.dram_bandwidth_gbps, clock_ghz=self.clock_ghz
        )

    def sram_model(self) -> SRAMModel:
        """The banked global-SRAM model."""
        return SRAMModel(
            capacity_bytes=self.memory.global_cache_bytes,
            num_banks=self.memory.cache_banks,
            bytes_per_bank_per_cycle=self.memory.sram_bytes_per_bank_per_cycle,
        )

    # ------------------------------------------------------------------ #
    # Flat addressing
    # ------------------------------------------------------------------ #
    def get(self, path: str):
        """Value behind a flat path: ``"pe.num_tppes"``, ``"clock_ghz"``, ...

        Bare field names are resolved across the groups when unambiguous,
        exactly like :meth:`with_overrides`.
        """
        group, field_name = self._resolve_key(path)
        if group is None:
            return getattr(self, field_name)
        if field_name is None:
            return getattr(self, group)
        return getattr(getattr(self, group), field_name)

    def flat_items(self) -> tuple[tuple[str, object], ...]:
        """Every scalar knob as ordered ``("group.field", value)`` pairs.

        Composite values (the area component tables) are skipped -- they are
        addressable via :meth:`get`/:meth:`with_overrides` but have no
        scalar rendition.
        """
        items: list[tuple[str, object]] = [
            (scalar, getattr(self, scalar)) for scalar in self.SCALARS
        ]
        for group in self.GROUPS:
            sub = getattr(self, group)
            for spec_field in dataclass_fields(sub):
                value = getattr(sub, spec_field.name)
                if isinstance(value, (int, float, str, bool)):
                    items.append(("%s.%s" % (group, spec_field.name), value))
        return tuple(items)

    def with_overrides(self, **overrides) -> "ArchSpec":
        """Copy of the spec with flat-addressed fields replaced.

        Keys are ``"group.field"`` paths, bare field names (resolved across
        the groups; an unknown or ambiguous name raises ``KeyError``), bare
        group names replacing a whole sub-spec, or the top-level scalars
        ``name`` / ``clock_ghz``.  Values are validated by the sub-spec
        constructors (e.g. ``num_tppes`` must stay >= 1).
        """
        if not overrides:
            return self
        top: dict[str, object] = {}
        grouped: dict[str, dict[str, object]] = {}
        for key, value in overrides.items():
            group, field_name = self._resolve_key(key)
            if group is None:
                top[field_name] = value
            elif field_name is None:
                # A bare group name replaces the whole sub-spec; anything
                # else (e.g. ``pe=8`` meaning ``pe.num_tppes``) would build
                # a broken spec whose failure surfaces far from here.
                current = getattr(self, group)
                if not isinstance(value, type(current)):
                    raise TypeError(
                        "replacing arch group %r takes a %s, got %r"
                        % (group, type(current).__name__, value)
                    )
                top[group] = value
            else:
                grouped.setdefault(group, {})[field_name] = value
        for group, changes in grouped.items():
            base = top.get(group, getattr(self, group))
            top[group] = replace(base, **changes)
        return replace(self, **top)

    def _resolve_key(self, key: str) -> tuple[str | None, str | None]:
        """Map a flat key to ``(group, field)`` (``None`` marks top level)."""
        if "." in key:
            group, _, field_name = key.partition(".")
            if group not in self.GROUPS:
                raise KeyError(
                    "unknown arch group %r in %r (expected one of %s)"
                    % (group, key, list(self.GROUPS))
                )
            names = {spec_field.name for spec_field in dataclass_fields(getattr(self, group))}
            if field_name not in names:
                raise KeyError(
                    "unknown field %r in arch group %r (expected one of %s)"
                    % (field_name, group, sorted(names))
                )
            return group, field_name
        if key in self.SCALARS:
            return None, key
        if key in self.GROUPS:
            return key, None
        matches = [
            group
            for group in self.GROUPS
            if any(
                spec_field.name == key
                for spec_field in dataclass_fields(getattr(self, group))
            )
        ]
        if len(matches) == 1:
            return matches[0], key
        if matches:
            raise KeyError(
                "arch field %r is ambiguous across groups %s; use a "
                "'group.field' path" % (key, matches)
            )
        raise KeyError(
            "unknown arch field %r (valid paths: %s, group names %s, scalars %s)"
            % (
                key,
                ", ".join(path for path, _ in self.flat_items()[:6]) + ", ...",
                list(self.GROUPS),
                list(self.SCALARS),
            )
        )


# --------------------------------------------------------------------- #
# Preset registry
# --------------------------------------------------------------------- #
#: Named design points addressable from sweeps and the CLI (``--arch``).
ARCH_PRESETS: dict[str, ArchSpec] = {}


def register_arch_preset(spec: ArchSpec, replace_existing: bool = False) -> ArchSpec:
    """Add ``spec`` to the preset registry under ``spec.name``.

    Registering a *different* spec under a taken name raises ``ValueError``
    (a silent overwrite would re-price every sweep naming the preset); pass
    ``replace_existing=True`` to overwrite on purpose.  Re-registering an
    equal spec is a harmless no-op.
    """
    existing = ARCH_PRESETS.get(spec.name)
    if existing is not None and not replace_existing and existing != spec:
        raise ValueError(
            "arch preset %r is already registered; pass replace_existing=True "
            "to overwrite it" % (spec.name,)
        )
    ARCH_PRESETS[spec.name] = spec
    return spec


def get_arch_spec(name: str) -> ArchSpec:
    """Look up a registered preset by name."""
    try:
        return ARCH_PRESETS[name]
    except KeyError as exc:
        raise KeyError(
            "unknown arch preset %r (expected one of %s)"
            % (name, list_arch_presets())
        ) from exc


def list_arch_presets() -> list[str]:
    """Sorted names of every registered design-point preset."""
    return sorted(ARCH_PRESETS)


def default_arch() -> ArchSpec:
    """The default design point (the paper's Table III machine)."""
    return ARCH_PRESETS[DEFAULT_ARCH]


def normalize_overrides(overrides) -> tuple[tuple[str, object], ...]:
    """Coerce a mapping / pair-iterable of overrides into a hashable tuple."""
    if not overrides:
        return ()
    if isinstance(overrides, Mapping):
        return tuple(overrides.items())
    return tuple((str(key), value) for key, value in overrides)


def resolve_arch(arch=None, overrides: Iterable = ()) -> ArchSpec:
    """Materialise a design point from a preset name / spec plus overrides.

    ``arch`` may be ``None`` (the default preset), a preset name or an
    :class:`ArchSpec` instance; ``overrides`` is a mapping or pair-iterable
    of flat-addressed replacements (see :meth:`ArchSpec.with_overrides`).
    """
    if arch is None:
        spec = default_arch()
    elif isinstance(arch, ArchSpec):
        spec = arch
    elif isinstance(arch, str):
        spec = get_arch_spec(arch)
    else:
        raise TypeError(
            "arch must be None, a preset name or an ArchSpec, got %r" % (arch,)
        )
    pairs = normalize_overrides(overrides)
    if pairs:
        spec = spec.with_overrides(**dict(pairs))
    return spec


def arch_label(arch=None, overrides: Iterable = ()) -> str:
    """Short human-readable label of a design point (for sweep cell labels)."""
    if isinstance(arch, ArchSpec):
        base = arch.name
    else:
        base = arch if arch is not None else DEFAULT_ARCH
    pairs = normalize_overrides(overrides)
    if not pairs:
        return base
    return base + "+" + ",".join("%s=%s" % (key, value) for key, value in pairs)


# The shipped presets: the paper's machine plus scaled variants giving the
# design-space scenarios obvious anchor points.
register_arch_preset(ArchSpec())
register_arch_preset(
    ArchSpec().with_overrides(
        name="loas-32nm-small",
        **{
            "pe.num_tppes": 8,
            "memory.global_cache_bytes": 128 * 1024,
            "memory.cache_banks": 8,
            "memory.dram_bandwidth_gbps": 64.0,
        },
    )
)
register_arch_preset(
    ArchSpec().with_overrides(
        name="loas-32nm-large",
        **{
            "pe.num_tppes": 32,
            "memory.global_cache_bytes": 512 * 1024,
            "memory.cache_banks": 32,
            "memory.dram_bandwidth_gbps": 256.0,
        },
    )
)
