"""FiberCache: the banked, fiber-granular global SRAM used by LoAS and Gamma.

LoAS adopts a FiberCache-style unified global buffer (Section IV-D): each
cache line holds the bitmask + pointer of a fiber followed by as much of the
fiber's payload as fits, and the cache is highly banked so every TPPE can
fetch its fiber concurrently.  The model here layers fiber bookkeeping on top
of the generic :class:`~repro.arch.memory.CacheSimulator` and produces the
three quantities the experiments need: SRAM traffic, DRAM (miss) traffic and
the miss rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from .memory import CacheSimulator, TrafficCounter

__all__ = ["FiberCache"]


class FiberCache:
    """A fiber-granular cache front-end over the global SRAM.

    Parameters
    ----------
    capacity_bytes:
        Usable capacity of the global SRAM.
    num_banks:
        Number of banks, used as the set count of the underlying cache model.
    """

    def __init__(self, capacity_bytes: int = 256 * 1024, num_banks: int = 16):
        self._cache = CacheSimulator(capacity_bytes, num_sets=num_banks)
        self.sram_traffic = TrafficCounter()
        self.dram_traffic = TrafficCounter()

    def access_fiber(self, matrix: str, index: int, size_bytes: float, category: str | None = None) -> bool:
        """Read one fiber through the cache.

        Every access reads ``size_bytes`` from SRAM (the consumer always
        streams the fiber out of the global buffer); on a miss the same bytes
        are additionally fetched from DRAM and installed.  Returns ``True``
        on a hit.

        Parameters
        ----------
        matrix:
            Logical matrix the fiber belongs to (e.g. ``"A"`` or ``"B"``);
            also used as the default traffic category.
        index:
            Fiber index within the matrix.
        size_bytes:
            Compressed size of the fiber.
        category:
            Traffic category to record under; defaults to ``matrix``.
        """
        category = matrix if category is None else category
        hit = self._cache.access((matrix, index), size_bytes)
        self.sram_traffic.add(category, size_bytes)
        if not hit:
            self.dram_traffic.add(category, size_bytes)
        return hit

    def write_back(self, size_bytes: float, category: str = "output") -> None:
        """Record a write of produced data through the cache to DRAM."""
        self.sram_traffic.add(category, size_bytes)
        self.dram_traffic.add(category, size_bytes)

    @property
    def miss_rate(self) -> float:
        """Miss rate over all fiber accesses."""
        return self._cache.miss_rate

    @property
    def hits(self) -> int:
        """Number of fiber hits."""
        return self._cache.hits

    @property
    def misses(self) -> int:
        """Number of fiber misses."""
        return self._cache.misses
