"""Prefix-sum circuit models: the fast tree circuit and the laggy adder chain.

The inner-join mechanism converts bitmask match positions into payload
offsets with prefix sums.  SparTen pays for two *fast* single-cycle tree
circuits; LoAS keeps one fast circuit (for the weight fiber, whose payload
must be consumed at full rate) and replaces the other with a *laggy* circuit
built from a small group of adders that takes several cycles but costs a
fraction of the area and power (Section IV-C, Figure 9).

Both circuits are modelled functionally (they really compute offsets) plus a
latency attribute used by the cycle model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["exclusive_prefix_sum", "FastPrefixSum", "LaggyPrefixSum"]


def exclusive_prefix_sum(bitmask: np.ndarray) -> np.ndarray:
    """Exclusive prefix sum of a boolean bitmask.

    ``result[i]`` is the number of set bits strictly before position ``i`` --
    exactly the payload offset of the element stored at position ``i`` in a
    bitmask-compressed fiber.
    """
    bitmask = np.asarray(bitmask, dtype=np.int64)
    return np.concatenate(([0], np.cumsum(bitmask)[:-1]))


@dataclass(frozen=True)
class FastPrefixSum:
    """Single-cycle tree prefix-sum circuit over a fixed-width bitmask chunk.

    Attributes
    ----------
    width:
        Number of bitmask bits processed per invocation (128 in the paper).
    latency_cycles:
        Cycles per invocation (1 for the fast circuit).
    """

    width: int = 128
    latency_cycles: int = 1

    def offsets(self, bitmask: np.ndarray) -> np.ndarray:
        """Payload offsets for every position of ``bitmask``."""
        return exclusive_prefix_sum(bitmask)

    def invocations(self, bitmask_length: int) -> int:
        """Number of chunk invocations needed to cover ``bitmask_length`` bits."""
        if bitmask_length < 0:
            raise ValueError("bitmask length must be non-negative")
        return -(-bitmask_length // self.width)

    def cycles(self, bitmask_length: int) -> int:
        """Total cycles to process a bitmask of ``bitmask_length`` bits."""
        return self.invocations(bitmask_length) * self.latency_cycles


@dataclass(frozen=True)
class LaggyPrefixSum:
    """Iterative adder-group prefix-sum circuit (the "laggy" circuit).

    A group of ``num_adders`` adders walks the bitmask chunk sequentially, so
    one chunk of ``width`` bits takes ``width / num_adders`` cycles
    (8 cycles for the paper's 128-bit chunk and 16 adders).  The result is
    identical to the fast circuit -- only the latency differs.
    """

    width: int = 128
    num_adders: int = 16

    def offsets(self, bitmask: np.ndarray) -> np.ndarray:
        """Payload offsets for every position of ``bitmask``."""
        return exclusive_prefix_sum(bitmask)

    @property
    def latency_cycles(self) -> int:
        """Cycles needed to produce the offsets of one chunk."""
        return -(-self.width // self.num_adders)

    def invocations(self, bitmask_length: int) -> int:
        """Number of chunk invocations needed to cover ``bitmask_length`` bits."""
        if bitmask_length < 0:
            raise ValueError("bitmask length must be non-negative")
        return -(-bitmask_length // self.width)

    def cycles(self, bitmask_length: int) -> int:
        """Total cycles to process a bitmask of ``bitmask_length`` bits."""
        return self.invocations(bitmask_length) * self.latency_cycles
