"""Memory hierarchy models: traffic counters, DRAM (HBM) and banked SRAM.

The accelerator simulators account for memory behaviour at two levels:

* **Traffic accounting** -- every simulator records the bytes it moves to and
  from off-chip DRAM and the on-chip global SRAM, broken down by category
  (input spikes, weights, partial sums, outputs, compressed-format
  metadata).  :class:`TrafficCounter` holds those ledgers.
* **Timing / stalls** -- :class:`DRAMModel` converts off-chip bytes into the
  minimum number of cycles the memory system needs at the configured
  bandwidth; the compute model takes the max of compute and memory cycles
  (a roofline-style bound, which is how the original analytical simulator
  treats bandwidth).
* **Cache behaviour** -- :class:`CacheSimulator` is a set-associative LRU
  cache operating at fiber granularity; it produces the hit / miss statistics
  behind the "normalized SRAM miss rate" comparison of Figure 14.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

__all__ = ["TrafficCounter", "DRAMModel", "SRAMModel", "CacheSimulator"]


@dataclass
class TrafficCounter:
    """Byte counts keyed by traffic category."""

    entries: dict[str, float] = field(default_factory=dict)

    def add(self, category: str, num_bytes: float) -> None:
        """Record ``num_bytes`` of traffic under ``category``."""
        if num_bytes < 0:
            raise ValueError("traffic must be non-negative")
        self.entries[category] = self.entries.get(category, 0.0) + num_bytes

    def total(self) -> float:
        """Total bytes across all categories."""
        return float(sum(self.entries.values()))

    def get(self, category: str) -> float:
        """Bytes recorded under ``category`` (0 when absent)."""
        return self.entries.get(category, 0.0)

    def as_dict(self) -> dict[str, float]:
        """Copy of the per-category byte counts."""
        return dict(self.entries)

    def merged_with(self, other: "TrafficCounter") -> "TrafficCounter":
        """Return a new counter with the sum of both counters."""
        merged = TrafficCounter(dict(self.entries))
        for category, value in other.entries.items():
            merged.add(category, value)
        return merged


@dataclass(frozen=True)
class DRAMModel:
    """Off-chip memory (HBM) bandwidth and energy model.

    Attributes
    ----------
    bandwidth_gbps:
        Peak bandwidth in gigabytes per second (the paper uses a 128 GB/s
        HBM module).
    clock_ghz:
        Accelerator clock in GHz (0.8 GHz in the paper), used to convert
        bandwidth into bytes per cycle.
    """

    bandwidth_gbps: float = 128.0
    clock_ghz: float = 0.8

    @property
    def bytes_per_cycle(self) -> float:
        """Peak deliverable bytes per accelerator clock cycle."""
        return self.bandwidth_gbps / self.clock_ghz

    def cycles_for_bytes(self, num_bytes: float) -> float:
        """Minimum cycles needed to transfer ``num_bytes`` at peak bandwidth."""
        if num_bytes < 0:
            raise ValueError("byte count must be non-negative")
        if self.bytes_per_cycle == 0:
            return float("inf") if num_bytes else 0.0
        return num_bytes / self.bytes_per_cycle


@dataclass(frozen=True)
class SRAMModel:
    """Banked global SRAM: capacity and per-cycle service rate.

    Attributes
    ----------
    capacity_bytes:
        Total SRAM capacity (256 KB in the paper, double buffered).
    num_banks:
        Number of independently accessible banks (16 in the paper).
    bytes_per_bank_per_cycle:
        Bytes each bank can deliver per cycle (a 128-bit port by default).
    """

    capacity_bytes: int = 256 * 1024
    num_banks: int = 16
    bytes_per_bank_per_cycle: float = 16.0

    @property
    def bytes_per_cycle(self) -> float:
        """Aggregate on-chip bandwidth in bytes per cycle."""
        return self.num_banks * self.bytes_per_bank_per_cycle

    def cycles_for_bytes(self, num_bytes: float) -> float:
        """Minimum cycles needed to serve ``num_bytes`` from SRAM."""
        if num_bytes < 0:
            raise ValueError("byte count must be non-negative")
        return num_bytes / self.bytes_per_cycle

    def fits(self, working_set_bytes: float) -> bool:
        """Whether a working set fits entirely in the SRAM."""
        return working_set_bytes <= self.capacity_bytes


class CacheSimulator:
    """A set-associative LRU cache operating on arbitrary block keys.

    The simulators access the cache at *fiber* granularity: each block key is
    a ``(matrix, index)`` tuple and carries its compressed size in bytes.
    Blocks larger than one cache line simply occupy multiple lines' worth of
    capacity; the model tracks capacity per set rather than individual lines,
    which is accurate enough to reproduce relative miss-rate orderings.
    """

    def __init__(self, capacity_bytes: int, num_sets: int = 16):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if num_sets <= 0:
            raise ValueError("num_sets must be positive")
        self.capacity_bytes = capacity_bytes
        self.num_sets = num_sets
        self.set_capacity = capacity_bytes / num_sets
        self._sets: list[OrderedDict] = [OrderedDict() for _ in range(num_sets)]
        self._set_usage = [0.0] * num_sets
        self.hits = 0
        self.misses = 0
        self.bytes_from_dram = 0.0

    def _set_index(self, key) -> int:
        return hash(key) % self.num_sets

    def access(self, key, size_bytes: float) -> bool:
        """Access block ``key`` of ``size_bytes``; returns ``True`` on a hit.

        On a miss the block is installed, evicting least-recently-used blocks
        from the same set until it fits.
        """
        if size_bytes < 0:
            raise ValueError("block size must be non-negative")
        index = self._set_index(key)
        cache_set = self._sets[index]
        if key in cache_set:
            cache_set.move_to_end(key)
            self.hits += 1
            return True

        self.misses += 1
        self.bytes_from_dram += size_bytes
        # Evict until the new block fits (blocks larger than a whole set are
        # streamed and never resident).
        if size_bytes <= self.set_capacity:
            while self._set_usage[index] + size_bytes > self.set_capacity and cache_set:
                _, evicted_size = cache_set.popitem(last=False)
                self._set_usage[index] -= evicted_size
            cache_set[key] = size_bytes
            self._set_usage[index] += size_bytes
        return False

    @property
    def accesses(self) -> int:
        """Total number of accesses observed."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Miss rate over all accesses (0 when no accesses were made)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def reset_statistics(self) -> None:
        """Clear hit / miss counters but keep the cache contents."""
        self.hits = 0
        self.misses = 0
        self.bytes_from_dram = 0.0
