"""Energy model: per-access / per-operation energies and an accounting ledger.

The LoAS evaluation converts activity counts (memory accesses, accumulations,
prefix-sum invocations, LIF updates) into energy with per-event constants in
the style of CACTI / classic accelerator papers.  Absolute joules are not the
point of the reproduction -- the *ratios* between designs are -- so the
constants below are representative 32 nm-class values chosen to preserve the
orderings reported in the paper (DRAM >> SRAM >> register/compute energy, and
data movement dominating total energy at roughly 60 %).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["EnergyModel", "EnergyAccount"]


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energy constants, all in picojoules.

    Attributes
    ----------
    dram_per_byte:
        Off-chip (HBM) access energy per byte.
    sram_per_byte:
        Global on-chip SRAM (256 KB FiberCache) access energy per byte.
    buffer_per_byte:
        Small per-PE buffer / FIFO access energy per byte.
    accumulate:
        One addition into an accumulator register (the SNN "AC" op).
    multiply_accumulate:
        One 8-bit multiply-accumulate (used only by the ANN baselines).
    fast_prefix_sum:
        One invocation of the fast (single-cycle, tree) prefix-sum circuit
        over a 128-bit bitmask chunk.
    laggy_prefix_sum:
        One invocation of the laggy (iterative adder) prefix-sum circuit over
        a 128-bit bitmask chunk.
    lif_update:
        One LIF threshold-compare / reset / leak update for one timestep.
    merger_per_element:
        Energy per element flowing through a merge unit (outer-product /
        Gustavson baselines).
    crossbar_per_byte:
        Energy per byte through the distribution crossbar.
    """

    dram_per_byte: float = 60.0
    sram_per_byte: float = 0.5
    buffer_per_byte: float = 0.15
    accumulate: float = 0.1
    multiply_accumulate: float = 0.45
    fast_prefix_sum: float = 1.8
    laggy_prefix_sum: float = 0.4
    lif_update: float = 0.3
    merger_per_element: float = 0.9
    crossbar_per_byte: float = 0.2


@dataclass
class EnergyAccount:
    """Accumulates energy by category (all values in picojoules).

    Categories are free-form strings; the standard ones used across the
    simulators are ``"dram"``, ``"sram"``, ``"buffer"``, ``"compute"``,
    ``"prefix_sum"``, ``"lif"``, ``"merger"`` and ``"crossbar"``.
    """

    entries: dict[str, float] = field(default_factory=dict)

    def add(self, category: str, picojoules: float) -> None:
        """Add ``picojoules`` of energy under ``category``."""
        if picojoules < 0:
            raise ValueError("energy contributions must be non-negative")
        self.entries[category] = self.entries.get(category, 0.0) + picojoules

    def total(self) -> float:
        """Total energy across all categories, in picojoules."""
        return float(sum(self.entries.values()))

    def total_microjoules(self) -> float:
        """Total energy in microjoules."""
        return self.total() / 1e6

    def fraction(self, category: str) -> float:
        """Fraction of total energy spent in ``category``."""
        total = self.total()
        if total == 0:
            return 0.0
        return self.entries.get(category, 0.0) / total

    def data_movement_fraction(self) -> float:
        """Fraction of energy spent moving data (DRAM + SRAM + buffers + NoC)."""
        movement = sum(
            self.entries.get(cat, 0.0) for cat in ("dram", "sram", "buffer", "crossbar")
        )
        total = self.total()
        return movement / total if total else 0.0

    def merged_with(self, other: "EnergyAccount") -> "EnergyAccount":
        """Return a new account holding the sum of both accounts."""
        merged = EnergyAccount(dict(self.entries))
        for category, value in other.entries.items():
            merged.add(category, value)
        return merged

    def as_dict(self) -> dict[str, float]:
        """Copy of the per-category energies."""
        return dict(self.entries)
