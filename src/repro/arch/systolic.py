"""Analytical systolic-array model for the dense SNN baselines (PTB, Stellar).

The paper estimates PTB's and Stellar's cycle counts and memory traffic with
ScaleSim.  This module provides an analytical replacement that captures the
behaviours Figure 19 depends on:

* a weight-stationary systolic array of ``rows x cols`` processing elements,
* dense weight and activation traffic (no compression -- neither baseline
  supports weight sparsity),
* PTB's *partially* temporal-parallel mapping: time-windows map to array
  columns, timesteps inside a window run sequentially, and array utilisation
  collapses when the number of timesteps is far below the window capacity,
* Stellar's fully temporal-parallel FS-neuron mapping with spike skipping
  (zero activations do not occupy compute cycles).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

__all__ = ["SystolicArray", "SystolicRunEstimate"]


@dataclass(frozen=True)
class SystolicRunEstimate:
    """Cycle and traffic estimate of one GEMM on a systolic array.

    Attributes
    ----------
    cycles:
        Estimated compute cycles including pipeline fill/drain.
    macs:
        Number of multiply-accumulate (or AC) operations actually executed.
    utilization:
        Fraction of PE-cycles doing useful work.
    weight_bytes:
        Dense weight bytes streamed into the array.
    activation_bytes:
        Dense activation (spike) bytes streamed into the array.
    output_bytes:
        Output bytes written back.
    """

    cycles: float
    macs: float
    utilization: float
    weight_bytes: float
    activation_bytes: float
    output_bytes: float


@dataclass(frozen=True)
class SystolicArray:
    """A weight-stationary systolic array of ``rows x cols`` PEs."""

    rows: int = 16
    cols: int = 4

    @property
    def num_pes(self) -> int:
        """Total number of processing elements."""
        return self.rows * self.cols

    def dense_gemm(
        self,
        m: int,
        k: int,
        n: int,
        activation_density: float = 1.0,
        weight_bytes_per_element: float = 1.0,
        activation_bits_per_element: float = 1.0,
        output_bytes_per_element: float = 1.0,
        skip_zero_activations: bool = False,
        temporal_copies: int = 1,
    ) -> SystolicRunEstimate:
        """Estimate one ``(m x k) @ (k x n)`` GEMM pass.

        Parameters
        ----------
        activation_density:
            Fraction of non-zero activations (spikes).  Only consumes compute
            cycles when ``skip_zero_activations`` is set (Stellar); dense
            designs always pay the full cycle count.
        temporal_copies:
            How many copies of the pass are effectively run (e.g. sequential
            timesteps inside a PTB time-window).
        """
        if min(m, k, n) <= 0:
            raise ValueError("GEMM dimensions must be positive")
        if not 0.0 <= activation_density <= 1.0:
            raise ValueError("activation_density must lie in [0, 1]")
        row_folds = ceil(n / self.rows)
        col_folds = ceil(m / self.cols)
        effective_k = k * activation_density if skip_zero_activations else k
        # Weight-stationary pass: each fold streams K partial sums through the
        # array; fill/drain adds (rows + cols) cycles per fold.
        cycles_per_fold = effective_k + self.rows + self.cols
        cycles = row_folds * col_folds * cycles_per_fold * temporal_copies
        macs = m * k * n * (activation_density if skip_zero_activations else 1.0) * temporal_copies
        peak = cycles * self.num_pes
        utilization = macs / peak if peak else 0.0
        weight_bytes = k * n * weight_bytes_per_element * col_folds
        activation_bytes = m * k * activation_bits_per_element / 8.0 * row_folds * temporal_copies
        output_bytes = m * n * output_bytes_per_element * temporal_copies
        return SystolicRunEstimate(
            cycles=float(cycles),
            macs=float(macs),
            utilization=float(min(1.0, utilization)),
            weight_bytes=float(weight_bytes),
            activation_bytes=float(activation_bytes),
            output_bytes=float(output_bytes),
        )
