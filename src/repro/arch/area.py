"""Area / power model of LoAS (Table IV, Figure 15, Figure 16a).

The paper synthesises the key components in RTL (32 nm, 800 MHz) and reports
the component-level area and power in Table IV.  Re-running synthesis is out
of scope for a Python reproduction, so this module encodes the published
component costs directly and exposes:

* the system-level and TPPE-level breakdowns (Table IV / Figure 15), and
* an analytical scaling model of the TPPE with the number of timesteps
  (Figure 16a): only the correction accumulators and the packed-spike input
  buffer grow with ``T``; everything else (bitmask buffers, prefix-sum
  circuits, control) is timestep-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "ComponentCost",
    "TPPE_COMPONENTS",
    "SYSTEM_COMPONENTS",
    "tppe_cost",
    "loas_system_cost",
    "tppe_scaling",
    "system_power_breakdown",
    "tppe_power_breakdown",
]


@dataclass(frozen=True)
class ComponentCost:
    """Area (mm^2) and power (mW) of one hardware component."""

    area_mm2: float
    power_mw: float

    def scaled(self, factor: float) -> "ComponentCost":
        """Return the cost multiplied by ``factor`` (e.g. instance count)."""
        return ComponentCost(self.area_mm2 * factor, self.power_mw * factor)

    def __add__(self, other: "ComponentCost") -> "ComponentCost":
        return ComponentCost(self.area_mm2 + other.area_mm2, self.power_mw + other.power_mw)


#: Per-TPPE component costs at the default configuration (T = 4), Table IV.
TPPE_COMPONENTS: dict[str, ComponentCost] = {
    "accumulators": ComponentCost(2e-3, 0.16),
    "fast_prefix": ComponentCost(0.04, 1.46),
    "laggy_prefix": ComponentCost(5e-3, 0.32),
    "others": ComponentCost(0.013, 0.88),
}

#: System-level component costs at the default configuration, Table IV.
SYSTEM_COMPONENTS: dict[str, ComponentCost] = {
    "tppes": ComponentCost(0.96, 45.1),
    "plifs": ComponentCost(0.02, 1.2),
    "global_cache": ComponentCost(0.80, 124.5),
    "others": ComponentCost(0.30, 18.1),
}

#: Fraction of the TPPE cost that scales linearly with the number of
#: timesteps at the reference point T = 4 (Figure 16a): the correction
#: accumulators and the packed-spike input buffer.
_TIMESTEP_SCALED_AREA_FRACTION = 0.125
_TIMESTEP_SCALED_POWER_FRACTION = 0.084
_REFERENCE_TIMESTEPS = 4


def tppe_cost(timesteps: int = 4) -> ComponentCost:
    """Area / power of one TPPE configured for ``timesteps`` timesteps.

    Follows the Figure 16a model: a fixed portion plus a portion linear in
    ``T``.  At ``T = 4`` this reproduces the Table IV TPPE totals; at
    ``T = 16`` the area grows by ~1.37x and power by ~1.25x as reported.
    """
    if timesteps < 1:
        raise ValueError("timesteps must be at least 1")
    base = sum(TPPE_COMPONENTS.values(), ComponentCost(0.0, 0.0))
    area_per_t = base.area_mm2 * _TIMESTEP_SCALED_AREA_FRACTION / _REFERENCE_TIMESTEPS
    power_per_t = base.power_mw * _TIMESTEP_SCALED_POWER_FRACTION / _REFERENCE_TIMESTEPS
    fixed_area = base.area_mm2 * (1.0 - _TIMESTEP_SCALED_AREA_FRACTION)
    fixed_power = base.power_mw * (1.0 - _TIMESTEP_SCALED_POWER_FRACTION)
    return ComponentCost(fixed_area + area_per_t * timesteps, fixed_power + power_per_t * timesteps)


def tppe_scaling(timesteps: int, reference_timesteps: int = 4) -> tuple[float, float]:
    """Area and power of a TPPE at ``timesteps`` relative to the reference."""
    current = tppe_cost(timesteps)
    reference = tppe_cost(reference_timesteps)
    return current.area_mm2 / reference.area_mm2, current.power_mw / reference.power_mw


def loas_system_cost(num_tppes: int = 16, timesteps: int = 4) -> dict[str, ComponentCost]:
    """System-level breakdown of LoAS (Table IV left) plus the total.

    The global cache and miscellaneous logic are configuration-independent in
    the published table; the TPPE and P-LIF groups scale with instance count
    and timesteps.
    """
    per_tppe = tppe_cost(timesteps)
    reference_tppe = tppe_cost(_REFERENCE_TIMESTEPS)
    tppe_scale = num_tppes / 16 * (per_tppe.area_mm2 / reference_tppe.area_mm2)
    tppe_power_scale = num_tppes / 16 * (per_tppe.power_mw / reference_tppe.power_mw)
    breakdown = {
        "tppes": ComponentCost(
            SYSTEM_COMPONENTS["tppes"].area_mm2 * tppe_scale,
            SYSTEM_COMPONENTS["tppes"].power_mw * tppe_power_scale,
        ),
        "plifs": SYSTEM_COMPONENTS["plifs"].scaled(num_tppes / 16 * timesteps / _REFERENCE_TIMESTEPS),
        "global_cache": SYSTEM_COMPONENTS["global_cache"],
        "others": SYSTEM_COMPONENTS["others"],
    }
    breakdown["total"] = sum(breakdown.values(), ComponentCost(0.0, 0.0))
    return breakdown


def system_power_breakdown(num_tppes: int = 16, timesteps: int = 4) -> dict[str, float]:
    """Fraction of on-chip power per system component (Figure 15 left)."""
    breakdown = loas_system_cost(num_tppes, timesteps)
    total = breakdown["total"].power_mw
    return {
        name: cost.power_mw / total
        for name, cost in breakdown.items()
        if name != "total"
    }


def tppe_power_breakdown() -> dict[str, float]:
    """Fraction of TPPE power per component (Figure 15 right)."""
    total = sum(c.power_mw for c in TPPE_COMPONENTS.values())
    return {name: cost.power_mw / total for name, cost in TPPE_COMPONENTS.items()}
