"""Area / power model of LoAS (Table IV, Figure 15, Figure 16a).

The paper synthesises the key components in RTL (32 nm, 800 MHz) and reports
the component-level area and power in Table IV.  Re-running synthesis is out
of scope for a Python reproduction, so this module encodes the published
component costs as *data* -- an :class:`AreaSpec` held by every
:class:`~repro.arch.spec.ArchSpec` design point -- and exposes:

* the system-level and TPPE-level breakdowns (Table IV / Figure 15), and
* an analytical scaling model of the TPPE with the number of timesteps
  (Figure 16a): only the correction accumulators and the packed-spike input
  buffer grow with ``T``; everything else (bitmask buffers, prefix-sum
  circuits, control) is timestep-agnostic.

Every function accepts an ``area`` keyword selecting the cost table; the
default is the published 32 nm table (``AreaSpec()``), so existing callers
are bit-identical.  The legacy module constants ``TPPE_COMPONENTS`` /
``SYSTEM_COMPONENTS`` remain as read-only views of that default table.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

__all__ = [
    "AreaSpec",
    "ComponentCost",
    "TPPE_COMPONENTS",
    "SYSTEM_COMPONENTS",
    "tppe_cost",
    "loas_system_cost",
    "tppe_scaling",
    "system_power_breakdown",
    "tppe_power_breakdown",
]


@dataclass(frozen=True)
class ComponentCost:
    """Area (mm^2) and power (mW) of one hardware component."""

    area_mm2: float
    power_mw: float

    def scaled(self, factor: float) -> "ComponentCost":
        """Return the cost multiplied by ``factor`` (e.g. instance count)."""
        return ComponentCost(self.area_mm2 * factor, self.power_mw * factor)

    def __add__(self, other: "ComponentCost") -> "ComponentCost":
        return ComponentCost(self.area_mm2 + other.area_mm2, self.power_mw + other.power_mw)


@dataclass(frozen=True)
class AreaSpec:
    """The component cost tables and scaling fractions of one design point.

    The default values are the published 32 nm / 800 MHz synthesis results
    (Table IV) and the Figure 16a scaling fractions.  Component tables are
    stored as ``(name, ComponentCost)`` tuples so the whole spec stays
    hashable; use :meth:`tppe_table` / :meth:`system_table` for dict views.

    Attributes
    ----------
    tppe_components:
        Per-TPPE component costs at the reference configuration.
    system_components:
        System-level component costs at the reference configuration.
    timestep_scaled_area_fraction / timestep_scaled_power_fraction:
        Fraction of the TPPE cost that scales linearly with the number of
        timesteps at the reference point (Figure 16a): the correction
        accumulators and the packed-spike input buffer.
    reference_timesteps / reference_tppes:
        The configuration the tables were synthesised at.
    """

    tppe_components: tuple[tuple[str, ComponentCost], ...] = (
        ("accumulators", ComponentCost(2e-3, 0.16)),
        ("fast_prefix", ComponentCost(0.04, 1.46)),
        ("laggy_prefix", ComponentCost(5e-3, 0.32)),
        ("others", ComponentCost(0.013, 0.88)),
    )
    system_components: tuple[tuple[str, ComponentCost], ...] = (
        ("tppes", ComponentCost(0.96, 45.1)),
        ("plifs", ComponentCost(0.02, 1.2)),
        ("global_cache", ComponentCost(0.80, 124.5)),
        ("others", ComponentCost(0.30, 18.1)),
    )
    timestep_scaled_area_fraction: float = 0.125
    timestep_scaled_power_fraction: float = 0.084
    reference_timesteps: int = 4
    reference_tppes: int = 16

    def tppe_table(self) -> dict[str, ComponentCost]:
        """Per-TPPE component costs as a dict."""
        return dict(self.tppe_components)

    def system_table(self) -> dict[str, ComponentCost]:
        """System-level component costs as a dict."""
        return dict(self.system_components)


#: The published 32 nm cost table used when no explicit ``area`` is passed.
DEFAULT_AREA = AreaSpec()

#: Per-TPPE component costs at the default configuration (T = 4), Table IV.
#: A genuinely read-only view of ``DEFAULT_AREA``: the cost functions no
#: longer read this mapping (they read their ``area`` argument), so mutating
#: it could not change any result -- the proxy makes such an attempt fail
#: loudly.  To model a different cost table, pass ``area=AreaSpec(...)``.
TPPE_COMPONENTS: Mapping[str, ComponentCost] = MappingProxyType(
    DEFAULT_AREA.tppe_table()
)

#: System-level component costs at the default configuration, Table IV.
SYSTEM_COMPONENTS: Mapping[str, ComponentCost] = MappingProxyType(
    DEFAULT_AREA.system_table()
)


def tppe_cost(timesteps: int = 4, area: AreaSpec | None = None) -> ComponentCost:
    """Area / power of one TPPE configured for ``timesteps`` timesteps.

    Follows the Figure 16a model: a fixed portion plus a portion linear in
    ``T``.  At ``T = 4`` this reproduces the Table IV TPPE totals; at
    ``T = 16`` the area grows by ~1.37x and power by ~1.25x as reported.
    """
    if timesteps < 1:
        raise ValueError("timesteps must be at least 1")
    area = area if area is not None else DEFAULT_AREA
    base = sum((cost for _, cost in area.tppe_components), ComponentCost(0.0, 0.0))
    area_per_t = base.area_mm2 * area.timestep_scaled_area_fraction / area.reference_timesteps
    power_per_t = base.power_mw * area.timestep_scaled_power_fraction / area.reference_timesteps
    fixed_area = base.area_mm2 * (1.0 - area.timestep_scaled_area_fraction)
    fixed_power = base.power_mw * (1.0 - area.timestep_scaled_power_fraction)
    return ComponentCost(fixed_area + area_per_t * timesteps, fixed_power + power_per_t * timesteps)


def tppe_scaling(
    timesteps: int, reference_timesteps: int | None = None, area: AreaSpec | None = None
) -> tuple[float, float]:
    """Area and power of a TPPE at ``timesteps`` relative to the reference."""
    area = area if area is not None else DEFAULT_AREA
    if reference_timesteps is None:
        reference_timesteps = area.reference_timesteps
    current = tppe_cost(timesteps, area=area)
    reference = tppe_cost(reference_timesteps, area=area)
    return current.area_mm2 / reference.area_mm2, current.power_mw / reference.power_mw


def loas_system_cost(
    num_tppes: int = 16, timesteps: int = 4, area: AreaSpec | None = None
) -> dict[str, ComponentCost]:
    """System-level breakdown of LoAS (Table IV left) plus the total.

    The global cache and miscellaneous logic are configuration-independent in
    the published table; the TPPE and P-LIF groups scale with instance count
    and timesteps.
    """
    area = area if area is not None else DEFAULT_AREA
    system = area.system_table()
    per_tppe = tppe_cost(timesteps, area=area)
    reference_tppe = tppe_cost(area.reference_timesteps, area=area)
    tppe_scale = num_tppes / area.reference_tppes * (per_tppe.area_mm2 / reference_tppe.area_mm2)
    tppe_power_scale = num_tppes / area.reference_tppes * (per_tppe.power_mw / reference_tppe.power_mw)
    breakdown = {
        "tppes": ComponentCost(
            system["tppes"].area_mm2 * tppe_scale,
            system["tppes"].power_mw * tppe_power_scale,
        ),
        "plifs": system["plifs"].scaled(
            num_tppes / area.reference_tppes * timesteps / area.reference_timesteps
        ),
        "global_cache": system["global_cache"],
        "others": system["others"],
    }
    breakdown["total"] = sum(breakdown.values(), ComponentCost(0.0, 0.0))
    return breakdown


def system_power_breakdown(
    num_tppes: int = 16, timesteps: int = 4, area: AreaSpec | None = None
) -> dict[str, float]:
    """Fraction of on-chip power per system component (Figure 15 left)."""
    breakdown = loas_system_cost(num_tppes, timesteps, area=area)
    total = breakdown["total"].power_mw
    return {
        name: cost.power_mw / total
        for name, cost in breakdown.items()
        if name != "total"
    }


def tppe_power_breakdown(area: AreaSpec | None = None) -> dict[str, float]:
    """Fraction of TPPE power per component (Figure 15 right)."""
    area = area if area is not None else DEFAULT_AREA
    total = sum(cost.power_mw for _, cost in area.tppe_components)
    return {name: cost.power_mw / total for name, cost in area.tppe_components}
