"""Swizzle-switch crossbar model used to distribute fibers to the TPPEs.

LoAS uses two 16x16 swizzle-switch-based crossbars (Table III) to broadcast
weight fibers and to route spike fibers from the global cache banks to the
TPPEs.  For the analytical simulator only the transfer energy and the
broadcast fan-out matter, so the model is intentionally small.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Crossbar"]


@dataclass(frozen=True)
class Crossbar:
    """A simple input-to-output crossbar.

    Attributes
    ----------
    num_inputs:
        Number of input ports (cache banks).
    num_outputs:
        Number of output ports (TPPEs).
    energy_per_byte:
        Transfer energy per byte crossing the switch, in picojoules.
    bytes_per_cycle:
        Aggregate bytes the crossbar can move per cycle.
    """

    num_inputs: int = 16
    num_outputs: int = 16
    energy_per_byte: float = 0.2
    bytes_per_cycle: float = 256.0

    def unicast_energy(self, num_bytes: float) -> float:
        """Energy (pJ) to move ``num_bytes`` from one input to one output."""
        if num_bytes < 0:
            raise ValueError("byte count must be non-negative")
        return num_bytes * self.energy_per_byte

    def broadcast_energy(self, num_bytes: float, fanout: int | None = None) -> float:
        """Energy (pJ) to broadcast ``num_bytes`` to ``fanout`` outputs.

        Broadcasting on a swizzle switch reuses the same horizontal wire, so
        the cost grows sub-linearly with fan-out; a square-root law keeps the
        model between unicast and full replication.
        """
        if num_bytes < 0:
            raise ValueError("byte count must be non-negative")
        fanout = self.num_outputs if fanout is None else fanout
        if fanout < 1:
            raise ValueError("fanout must be at least 1")
        return num_bytes * self.energy_per_byte * float(fanout) ** 0.5

    def cycles_for_bytes(self, num_bytes: float) -> float:
        """Minimum cycles to move ``num_bytes`` through the crossbar."""
        if num_bytes < 0:
            raise ValueError("byte count must be non-negative")
        return num_bytes / self.bytes_per_cycle
