"""Hardware substrates shared by LoAS and every baseline accelerator model.

Contains the energy constants and ledger, the Table IV area / power model,
the memory hierarchy (traffic counters, HBM, banked SRAM, fiber cache), the
fast / laggy prefix-sum circuits, the distribution crossbar and the systolic
array used by the dense baselines.
"""

from .area import (
    ComponentCost,
    SYSTEM_COMPONENTS,
    TPPE_COMPONENTS,
    loas_system_cost,
    system_power_breakdown,
    tppe_cost,
    tppe_power_breakdown,
    tppe_scaling,
)
from .cache import FiberCache
from .crossbar import Crossbar
from .energy import EnergyAccount, EnergyModel
from .memory import CacheSimulator, DRAMModel, SRAMModel, TrafficCounter
from .prefix_sum import FastPrefixSum, LaggyPrefixSum, exclusive_prefix_sum
from .systolic import SystolicArray, SystolicRunEstimate

__all__ = [
    "CacheSimulator",
    "ComponentCost",
    "Crossbar",
    "DRAMModel",
    "EnergyAccount",
    "EnergyModel",
    "FastPrefixSum",
    "FiberCache",
    "LaggyPrefixSum",
    "SRAMModel",
    "SYSTEM_COMPONENTS",
    "SystolicArray",
    "SystolicRunEstimate",
    "TPPE_COMPONENTS",
    "TrafficCounter",
    "exclusive_prefix_sum",
    "loas_system_cost",
    "system_power_breakdown",
    "tppe_cost",
    "tppe_power_breakdown",
    "tppe_scaling",
]
