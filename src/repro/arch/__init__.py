"""Hardware substrates shared by LoAS and every baseline accelerator model.

Contains the :class:`~repro.arch.spec.ArchSpec` design-point layer (every
sweepable hardware knob behind one flat ``"group.field"`` addressing scheme,
with named presets), the energy constants and ledger, the Table IV area /
power model, the memory hierarchy (traffic counters, HBM, banked SRAM, fiber
cache), the fast / laggy prefix-sum circuits, the distribution crossbar and
the systolic array used by the dense baselines.
"""

from .area import (
    AreaSpec,
    ComponentCost,
    SYSTEM_COMPONENTS,
    TPPE_COMPONENTS,
    loas_system_cost,
    system_power_breakdown,
    tppe_cost,
    tppe_power_breakdown,
    tppe_scaling,
)
from .cache import FiberCache
from .crossbar import Crossbar
from .energy import EnergyAccount, EnergyModel
from .memory import CacheSimulator, DRAMModel, SRAMModel, TrafficCounter
from .prefix_sum import FastPrefixSum, LaggyPrefixSum, exclusive_prefix_sum
from .spec import (
    ARCH_PRESETS,
    ArchSpec,
    BaselineSpec,
    DEFAULT_ARCH,
    MemorySpec,
    PESpec,
    arch_label,
    default_arch,
    get_arch_spec,
    list_arch_presets,
    register_arch_preset,
    resolve_arch,
)
from .systolic import SystolicArray, SystolicRunEstimate

__all__ = [
    "ARCH_PRESETS",
    "ArchSpec",
    "AreaSpec",
    "BaselineSpec",
    "CacheSimulator",
    "ComponentCost",
    "Crossbar",
    "DEFAULT_ARCH",
    "DRAMModel",
    "EnergyAccount",
    "EnergyModel",
    "FastPrefixSum",
    "FiberCache",
    "LaggyPrefixSum",
    "MemorySpec",
    "PESpec",
    "SRAMModel",
    "SYSTEM_COMPONENTS",
    "SystolicArray",
    "SystolicRunEstimate",
    "TPPE_COMPONENTS",
    "TrafficCounter",
    "arch_label",
    "default_arch",
    "exclusive_prefix_sum",
    "get_arch_spec",
    "list_arch_presets",
    "loas_system_cost",
    "register_arch_preset",
    "resolve_arch",
    "system_power_breakdown",
    "tppe_cost",
    "tppe_power_breakdown",
    "tppe_scaling",
]
