"""Typed result records of the public API and their versioned JSON schema.

A :class:`ScenarioResult` is what :meth:`repro.api.Session.run` returns: the
scenario's shaped payload plus provenance (scenario name, fully merged
parameters, seeds, package version, execution policy and cache hit/miss
counters).  :class:`PartitionResult` is the streaming twin -- one completed
``(workload, seed)`` partition yielded by :meth:`repro.api.Session.stream`.

Serialisation
-------------
``ScenarioResult.to_json()`` / ``from_json()`` round-trip the record through
a **versioned** schema (``SCHEMA_VERSION``).  Payloads may contain raw
:class:`~repro.metrics.results.SimulationResult` objects (the ``networks`` /
``layers`` scenarios return them unshaped); those -- and their
:class:`~repro.arch.memory.TrafficCounter` / :class:`~repro.arch.energy.EnergyAccount`
ledgers -- are encoded as ``{"__kind__": ...}``-tagged objects and decoded
back to the original dataclasses, so a decoded record compares equal to the
one that was encoded.  Tuples are tagged too (JSON has only arrays), keeping
parameter values like ``networks=("alexnet",)`` exact across the trip.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..metrics.results import SimulationResult
from ..runner.scenario import SweepCell

__all__ = ["SCHEMA_VERSION", "PartitionResult", "ScenarioResult"]

#: Version of the ``to_json`` schema; bumped on any incompatible change.
SCHEMA_VERSION = 1

_KIND = "__kind__"


def _encode(value: Any) -> Any:
    """Recursively convert a payload value into JSON-encodable form."""
    if isinstance(value, SimulationResult):
        # The field values recurse through _encode too: ledgers and the
        # free-form ops/extra dicts may hold numpy scalars, which must get
        # the same coercion (and string-key check) as the rest of the tree.
        fields = value.as_dict()
        return {_KIND: "SimulationResult", **{key: _encode(entry) for key, entry in fields.items()}}
    if isinstance(value, dict):
        for key in value:
            # JSON objects only have string keys; coercing here would break
            # the decoded == encoded contract silently, so refuse instead.
            if not isinstance(key, str):
                raise TypeError(
                    "cannot serialise dict key %r (type %s) into the "
                    "ScenarioResult schema; only string keys survive a "
                    "JSON round-trip" % (key, type(key).__name__)
                )
        return {key: _encode(entry) for key, entry in value.items()}
    if isinstance(value, tuple):
        return {_KIND: "tuple", "items": [_encode(entry) for entry in value]}
    if isinstance(value, list):
        return [_encode(entry) for entry in value]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        "cannot serialise %r (type %s) into the ScenarioResult schema"
        % (value, type(value).__name__)
    )


def _decode(value: Any) -> Any:
    """Inverse of :func:`_encode`."""
    if isinstance(value, dict):
        kind = value.get(_KIND)
        if kind == "tuple":
            return tuple(_decode(entry) for entry in value["items"])
        if kind == "SimulationResult":
            return SimulationResult.from_dict(
                {key: _decode(entry) for key, entry in value.items() if key != _KIND}
            )
        return {key: _decode(entry) for key, entry in value.items()}
    if isinstance(value, list):
        return [_decode(entry) for entry in value]
    return value


@dataclass(frozen=True)
class PartitionResult:
    """One completed ``(workload, seed)`` partition of a streaming run.

    Yielded by :meth:`repro.api.Session.stream` the moment the partition
    finishes; over a worker pool partitions arrive in completion order, so
    ``index`` (the partition's ordinal in ``plan.partitions()``) is the
    stable identity, not the arrival position.
    """

    scenario: str
    index: int
    total: int
    cells: tuple[SweepCell, ...]
    results: tuple[SimulationResult, ...]

    @property
    def workload_label(self) -> str:
        """Label of the partition's shared workload."""
        return self.cells[0].workload.label

    @property
    def seed(self) -> int:
        """Seed of the partition's generators."""
        return self.cells[0].seed

    @property
    def simulator_labels(self) -> tuple[str, ...]:
        """Simulator labels in partition (plan) order."""
        return tuple(cell.simulator.label for cell in self.cells)


@dataclass
class ScenarioResult:
    """Shaped payload of one scenario run plus its provenance.

    Attributes
    ----------
    scenario:
        Registered scenario name.
    params:
        The fully merged parameter dict the scenario actually ran with
        (declared defaults overlaid with the caller's overrides).
    payload:
        The scenario's shaped result -- exactly what the legacy
        ``run_scenario`` returned.
    provenance:
        Execution record: ``package_version``, ``workers``, ``cache_dir``
        and the evaluation-cache counter deltas observed in this process
        (``cache``); sweep runs add ``seeds`` and cell/partition counts,
        bespoke runs add ``seeds`` when they declare a ``seed`` parameter.
        (The JSON document's ``schema_version`` lives at the top level of
        :meth:`to_json`, not in this dict.)
    """

    scenario: str
    params: dict[str, Any]
    payload: Any
    provenance: dict[str, Any] = field(default_factory=dict)

    def to_json(self, indent: int | None = None) -> str:
        """Serialise the record under the versioned schema."""
        document = {
            "schema_version": SCHEMA_VERSION,
            "scenario": self.scenario,
            "params": _encode(self.params),
            "payload": _encode(self.payload),
            "provenance": _encode(self.provenance),
        }
        return json.dumps(document, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioResult":
        """Decode a record serialised by :meth:`to_json`."""
        document = json.loads(text)
        version = document.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ValueError(
                "unsupported ScenarioResult schema version %r (this build reads %d)"
                % (version, SCHEMA_VERSION)
            )
        return cls(
            scenario=document["scenario"],
            params=_decode(document["params"]),
            payload=_decode(document["payload"]),
            provenance=_decode(document["provenance"]),
        )
