"""The :class:`Session` façade: one object owning resources and policy.

Historically every entry point (thirteen ``run_*`` functions plus
``run_scenario``) threaded ``workers`` / ``cache_dir`` / ``scale`` through
each call.  A :class:`Session` configures those once:

* **cache tiers** -- the size of the process-wide evaluation LRU
  (``lru_maxsize``), the shared on-disk tier (``cache_dir`` +
  ``disk_max_bytes``) and the network-addressed remote tier
  (``cache_url``, a ``python -m repro cache serve`` daemon).  The session
  owns its :class:`~repro.engine.DiskEvaluationCache` /
  :class:`~repro.engine.RemoteBackend` instances, so their counters
  accumulate across runs and :meth:`cache_stats` reports real numbers.
* **execution policy** -- the worker-pool size (``workers``; ``None``/0/1 =
  serial) and the multiprocessing start method (``mp_context``).
* **workload defaults** -- a default ``scale`` applied to every scenario
  that declares one, so quick-look sessions shrink every sweep uniformly.

Per-call keyword arguments always win over session defaults.  Session
defaults are *soft*: a bespoke scenario that cannot honour ``workers`` or
``cache_dir`` simply ignores the session-level value, whereas passing either
explicitly to :meth:`Session.run` for such a scenario raises ``TypeError``
(silently dropping an explicitly requested pool or disk tier would misreport
what ran).

Note the evaluation LRU itself is process-wide (simulators resolve it via
:func:`repro.engine.default_cache`), so sessions in one process share
cached tensors -- by design, that is the engine's cross-simulator sharing.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from ..engine import CacheStats, DiskEvaluationCache, RemoteBackend, default_cache
from ..runner.executor import SweepResults, SweepRunner
from ..runner.scenario import Scenario, get_scenario, list_scenarios
from .result import PartitionResult, ScenarioResult

__all__ = ["ScenarioStream", "Session", "default_session"]


def _legacy_shim_warning(old_name: str, scenario_name: str) -> None:
    """The ``DeprecationWarning`` every legacy ``run_*`` shim emits."""
    import warnings

    warnings.warn(
        "%s() is deprecated; use repro.api.Session.run(%r, ...) -- the "
        "returned payload is unchanged, plus provenance and streaming"
        % (old_name, scenario_name),
        DeprecationWarning,
        stacklevel=3,
    )


def _ensure_registry() -> None:
    """Populate the scenario registry (importing the experiment modules)."""
    from .. import experiments  # noqa: F401  -- import side effect registers


def _accepted_params(scenario: Scenario) -> set[str] | None:
    """Parameter names ``scenario`` accepts, or ``None`` when unbounded.

    The union of the declared defaults and the named parameters of the
    ``run``/``build`` callable; ``None`` (accept anything) when the
    callable takes ``**kwargs``.
    """
    import inspect

    function = scenario.run if scenario.run is not None else scenario.build
    try:
        signature = inspect.signature(function)
    except (TypeError, ValueError):
        return None
    names = set(dict(scenario.defaults))
    for parameter in signature.parameters.values():
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            return None
        if parameter.kind in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        ):
            names.add(parameter.name)
    return names


def _package_version() -> str:
    from .. import __version__

    return __version__


def _same_directory(a, b) -> bool:
    """Whether two directory spellings name the same place.

    Normalised (absolute, no trailing slash, symlinks resolved where the
    path exists) so ``"/tmp/tier/"`` and ``"/tmp/tier"`` compare equal.
    """
    from pathlib import Path

    return Path(a).expanduser().resolve() == Path(b).expanduser().resolve()


class ScenarioStream(Iterator[PartitionResult]):
    """Iterator over a sweep's partitions, finalising into a :class:`ScenarioResult`.

    Returned by :meth:`Session.stream`.  Yields one
    :class:`~repro.api.result.PartitionResult` per completed ``(workload,
    seed)`` partition -- in plan order serially, in completion order over a
    worker pool.  Once exhausted, :attr:`result` holds the merged
    :class:`~repro.api.result.ScenarioResult`, bit-identical to what
    :meth:`Session.run` returns for the same arguments (results are slotted
    by cell index, so completion order is irrelevant).

    In pooled mode the underlying executor holds the worker pool open for
    the stream's lifetime.  When abandoning a stream early, call
    :meth:`close` -- or iterate inside a ``with`` block -- to shut it down
    immediately instead of waiting for garbage collection.
    """

    def __init__(self, scenario_name: str, plan, runner: SweepRunner, capture, finalise):
        self.plan = plan
        self._scenario_name = scenario_name
        self._total = len(plan.partitions())
        self._iterator = runner.iter_partitions(plan)
        self._slots = [None] * len(plan.cells)
        self._capture = capture
        self._finalise = finalise
        self._result: ScenarioResult | None = None
        self._closed = False
        self._started = False

    def __iter__(self) -> "ScenarioStream":
        return self

    def __next__(self) -> PartitionResult:
        if not self._started:
            # Counter baselines are captured when execution actually starts
            # (the generator is lazy), so work interleaved between stream()
            # and the first partition doesn't pollute the provenance deltas.
            self._started = True
            self._capture()
        try:
            ordinal, indices, results = next(self._iterator)
        except StopIteration:
            # A closed stream's generator also raises StopIteration, but its
            # slots are only partially filled -- never finalise those.
            if self._result is None and not self._closed:
                self._result = self._finalise(SweepResults(self.plan, self._slots))
            raise
        for index, result in zip(indices, results):
            self._slots[index] = result
        return PartitionResult(
            scenario=self._scenario_name,
            index=ordinal,
            total=self._total,
            cells=tuple(self.plan.cells[i] for i in indices),
            results=tuple(results),
        )

    def close(self) -> None:
        """Stop early: end execution and shut the worker pool if one runs.

        A stream closed before exhaustion yields no further partitions and
        never produces a merged :attr:`result`; safe to call repeatedly, and
        harmless after exhaustion (the merged result stays available).
        """
        self._closed = True
        self._iterator.close()

    def __enter__(self) -> "ScenarioStream":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def result(self) -> ScenarioResult:
        """The merged result; available once every partition was consumed."""
        if self._result is None:
            if self._closed:
                raise RuntimeError(
                    "stream was closed before exhaustion; no merged result "
                    "exists (re-run via Session.run or a fresh stream)"
                )
            raise RuntimeError(
                "stream not exhausted; iterate every partition (or call "
                "collect()) before reading .result"
            )
        return self._result

    def collect(self) -> ScenarioResult:
        """Drain any remaining partitions and return the merged result."""
        for _ in self:
            pass
        return self.result


class Session:
    """Configured entry point to every registered scenario.

    Parameters
    ----------
    workers:
        Default worker-pool size for sweep execution (``None``/0/1 serial).
    cache_dir:
        Directory of the session's on-disk evaluation-cache tier; created on
        first use and shared with worker processes.
    cache_url:
        ``host:port`` of a running evaluation-cache daemon (``python -m
        repro cache serve``), stacked below the disk tier.  The connection
        opens lazily; an unreachable daemon degrades the stack to the
        remaining tiers with a single warning instead of failing the run.
    scale:
        Default workload ``scale`` for every scenario declaring one.
    lru_maxsize:
        Resize the process-wide evaluation LRU at construction.  The LRU is
        shared by every session in the process and the new bound persists
        beyond this session's lifetime -- shrinking it evicts entries other
        sessions may have warmed, so size it for the whole process, not one
        quick look.
    disk_max_bytes:
        Byte budget of the on-disk tier (LRU eviction above it).  Applies
        only when ``cache_dir`` is a path: an already-constructed
        :class:`~repro.engine.DiskEvaluationCache` instance keeps its own
        budget (the same rule as :class:`~repro.runner.SweepRunner`).
    mp_context:
        Multiprocessing start method (``"fork"`` / ``"spawn"``).

    Examples
    --------
    >>> session = Session(workers=2, cache_dir=".eval-cache", scale=0.25)
    >>> result = session.run("fig12-overall")
    >>> result.payload["vgg16"]["LoAS"]["speedup"]  # doctest: +SKIP
    >>> for partition in session.stream("fig13-traffic"):
    ...     print(partition.workload_label, partition.index, partition.total)
    """

    def __init__(
        self,
        workers: int | None = None,
        cache_dir=None,
        scale: float | None = None,
        lru_maxsize: int | None = None,
        disk_max_bytes: int | None = None,
        mp_context: str | None = None,
        cache_url=None,
    ):
        if workers is not None and workers < 0:
            raise ValueError("workers must be non-negative")
        self.workers = workers
        self.cache_dir = cache_dir
        self.scale = scale
        self.disk_max_bytes = disk_max_bytes
        self.mp_context = mp_context
        if lru_maxsize is not None:
            default_cache().resize(lru_maxsize)
        self._disk_tier = DiskEvaluationCache.coerce(cache_dir, max_bytes=disk_max_bytes)
        self._remote_tier = RemoteBackend.coerce(cache_url)
        self.cache_url = self._remote_tier.url if self._remote_tier is not None else None
        #: Per-call cache_url overrides resolve here, so a repeated override
        #: reuses one backend (one connection, one warn-once state) instead
        #: of dialling -- and possibly re-warning -- on every run.
        self._extra_remotes: dict[str, RemoteBackend] = {}

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def disk_tier(self) -> DiskEvaluationCache | None:
        """The session-owned on-disk tier (``None`` without ``cache_dir``)."""
        return self._disk_tier

    @property
    def remote_tier(self) -> RemoteBackend | None:
        """The session-owned remote tier (``None`` without ``cache_url``)."""
        return self._remote_tier

    def scenarios(self) -> list[str]:
        """Sorted names of every registered scenario."""
        _ensure_registry()
        return list_scenarios()

    def describe(self, name: str) -> Scenario:
        """The registered :class:`~repro.runner.Scenario` behind ``name``."""
        _ensure_registry()
        return get_scenario(name)

    def validate_run_options(
        self,
        scenario: Scenario,
        *,
        workers=None,
        cache_dir=None,
        cache_url=None,
        stream: bool = False,
        params: Mapping[str, Any] | None = None,
    ) -> None:
        """Raise if the explicit options/params cannot be honoured by ``scenario``.

        The single source of the option/scenario compatibility rules: a
        bespoke scenario cannot stream (``ValueError``) and only honours an
        explicitly requested ``workers`` / ``cache_dir`` when its declared
        defaults carry the option (``TypeError`` otherwise -- silently
        dropping a requested pool or disk tier would misreport what ran).
        When ``params`` is given, each key must be accepted by the
        scenario's ``build``/``run`` callable (declared defaults or a named
        parameter).  Used by :meth:`run` / :meth:`stream` and pre-flighted
        by the CLI.
        """
        if params:
            accepted = _accepted_params(scenario)
            if accepted is not None:
                for key in params:
                    if key not in accepted:
                        raise TypeError(
                            "scenario %r does not accept parameter %r "
                            "(accepted: %s)" % (scenario.name, key, sorted(accepted))
                        )
        if scenario.run is None:
            return
        if stream:
            raise ValueError(
                "scenario %r is bespoke (no sweep plan behind it); streaming "
                "requires a sweep-shaped scenario" % (scenario.name,)
            )
        supported = dict(scenario.defaults)
        for option, value in (
            ("workers", workers),
            ("cache_dir", cache_dir),
            ("cache_url", cache_url),
        ):
            if value is not None and option not in supported:
                raise TypeError(
                    "scenario %r does not support %r" % (scenario.name, option)
                )

    def cache_stats(self) -> dict[str, CacheStats | None]:
        """``{"lru": ..., "disk": ..., "remote": ...}`` tier snapshots.

        LRU counters are process-wide; disk counters belong to the session's
        own tier object; remote counters are the daemon's own (``None`` when
        no ``cache_url`` was configured or the daemon is unreachable).  Pool
        runs accumulate their counters in the worker processes, so only
        serial activity is visible here (the disk tier's ``entries`` /
        ``total_bytes`` and the daemon's counters are shared facts either
        way).
        """
        return {
            "lru": default_cache().stats(),
            "disk": self._disk_tier.stats() if self._disk_tier is not None else None,
            "remote": (
                self._remote_tier.server_stats() if self._remote_tier is not None else None
            ),
        }

    def clear_cache(self, disk: bool = False, remote: bool = False) -> None:
        """Reset the process-wide LRU; optionally also the persistent tiers.

        ``disk=True`` clears the session's on-disk tier, ``remote=True``
        asks the session's evaluation-cache daemon to drop its entries.
        """
        default_cache().clear()
        if disk and self._disk_tier is not None:
            self._disk_tier.clear()
        if remote and self._remote_tier is not None:
            self._remote_tier.clear()

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(
        self,
        name: str,
        *,
        workers: int | None = None,
        cache_dir=None,
        cache_url=None,
        **params,
    ) -> ScenarioResult:
        """Execute scenario ``name`` and return its :class:`ScenarioResult`.

        ``params`` override the scenario's declared defaults; ``workers`` /
        ``cache_dir`` / ``cache_url`` override the session's execution
        policy for this call.  Sweep-shaped scenarios run through
        :meth:`stream` internally, so batch and streaming results are one
        code path.
        """
        _ensure_registry()
        scenario = get_scenario(name)
        if scenario.run is not None:
            return self._run_bespoke(scenario, workers, cache_dir, cache_url, params)
        return self.stream(
            name, workers=workers, cache_dir=cache_dir, cache_url=cache_url, **params
        ).collect()

    def stream(
        self,
        name: str,
        *,
        workers: int | None = None,
        cache_dir=None,
        cache_url=None,
        **params,
    ) -> ScenarioStream:
        """Incremental execution: a :class:`ScenarioStream` over partitions.

        Only sweep-shaped scenarios stream (bespoke ones have no plan to
        partition -- ``ValueError``).  The merged ``stream.result`` is
        bit-identical to :meth:`run` for equal arguments, in serial and
        pooled modes alike.
        """
        _ensure_registry()
        scenario = get_scenario(name)
        self.validate_run_options(scenario, stream=True, params=params)
        merged = self._merge_params(scenario, params)
        plan = scenario.build(**merged)
        runner = self._make_runner(workers, cache_dir, cache_url)
        baselines: dict[str, Any] = {"lru": None, "disk": None}

        def capture() -> None:
            baselines["lru"] = default_cache().stats()
            baselines["disk"] = (
                runner.disk_tier.stats() if runner.disk_tier is not None else None
            )

        def finalise(sweep_results: SweepResults) -> ScenarioResult:
            payload = (
                scenario.shape(sweep_results, **merged)
                if scenario.shape is not None
                else sweep_results
            )
            # Mirror the executor's own fallback rule: a single-partition
            # plan runs serially even on a workers>=2 session, and the
            # record must say so.
            pooled = runner.workers >= 2 and len(plan.partitions()) > 1
            provenance = self._provenance(
                runner.disk_tier,
                runner.workers,
                baselines["lru"],
                baselines["disk"],
                pooled=pooled,
                cache_url=runner.cache_url,
            )
            provenance["seeds"] = tuple(sorted({cell.seed for cell in plan.cells}))
            provenance["cells"] = len(plan.cells)
            provenance["partitions"] = len(plan.partitions())
            return ScenarioResult(
                scenario=scenario.name,
                params=dict(merged),
                payload=payload,
                provenance=provenance,
            )

        return ScenarioStream(scenario.name, plan, runner, capture, finalise)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _run_bespoke(
        self, scenario: Scenario, workers, cache_dir, cache_url, params
    ) -> ScenarioResult:
        merged = self._merge_params(scenario, params)
        self.validate_run_options(
            scenario, workers=workers, cache_dir=cache_dir, cache_url=cache_url, params=params
        )
        supported = dict(scenario.defaults)
        effective_workers = workers if workers is not None else self.workers
        if effective_workers is not None and "workers" in supported:
            merged["workers"] = effective_workers
        if (
            self.mp_context is not None
            and "mp_context" in supported
            and "mp_context" not in params
        ):
            merged["mp_context"] = self.mp_context
        # The scenario receives the session-owned tier *objects* (keeping
        # their budgets, connections and counters); the recorded params keep
        # the string path/URL so the ScenarioResult stays JSON-serialisable.
        tier = self._tier_for(cache_dir)
        remote = self._remote_for(cache_url)
        call_kwargs = dict(merged)
        if tier is not None and "cache_dir" in supported:
            call_kwargs["cache_dir"] = tier
            merged["cache_dir"] = str(tier.directory)
        elif "cache_dir" not in supported:
            tier = None  # the scenario cannot use it; don't report it ran
        if remote is not None and "cache_url" in supported:
            call_kwargs["cache_url"] = remote
            merged["cache_url"] = remote.url
        elif "cache_url" not in supported:
            remote = None  # same rule as the disk tier: don't report it ran
        lru_before = default_cache().stats()
        disk_before = tier.stats() if tier is not None else None
        payload = scenario.run(**call_kwargs)
        # A bespoke scenario's internal sweeps may or may not pool (the
        # executor falls back to serial for single-partition plans); a
        # requested pool is the honest upper bound we can report.
        provenance = self._provenance(
            tier,
            merged.get("workers"),
            lru_before,
            disk_before,
            pooled=bool(merged.get("workers")) and merged["workers"] >= 2,
            cache_url=remote.url if remote is not None else None,
        )
        if "seed" in merged:
            provenance["seeds"] = (merged["seed"],)
        return ScenarioResult(
            scenario=scenario.name,
            params=dict(merged),
            payload=payload,
            provenance=provenance,
        )

    def _merge_params(self, scenario: Scenario, params: Mapping[str, Any]) -> dict[str, Any]:
        merged = dict(scenario.defaults)
        if self.scale is not None and "scale" in merged and "scale" not in params:
            merged["scale"] = self.scale
        merged.update(params)
        return merged

    def _make_runner(self, workers, cache_dir, cache_url=None) -> SweepRunner:
        tier = self._tier_for(cache_dir)
        return SweepRunner(
            workers=workers if workers is not None else self.workers,
            cache_dir=tier,
            cache_url=self._remote_for(cache_url),
            mp_context=self.mp_context,
        )

    def _remote_for(self, cache_url) -> RemoteBackend | None:
        """Per-call remote-tier triage, mirroring :meth:`_tier_for`."""
        if cache_url is None:
            return self._remote_tier
        if isinstance(cache_url, RemoteBackend):
            return cache_url
        if self._remote_tier is not None and str(cache_url) == self._remote_tier.url:
            return self._remote_tier
        backend = self._extra_remotes.get(str(cache_url))
        if backend is None:
            backend = RemoteBackend(cache_url)
            self._extra_remotes[backend.url] = backend
        return backend

    def _tier_for(self, cache_dir) -> DiskEvaluationCache | None:
        if cache_dir is None:
            return self._disk_tier
        if isinstance(cache_dir, DiskEvaluationCache):
            return cache_dir
        if self._disk_tier is not None and _same_directory(
            self._disk_tier.directory, cache_dir
        ):
            return self._disk_tier
        # A per-call override names a directory the session does not own:
        # the session's disk_max_bytes budget must not evict entries some
        # other tool cached there.
        return DiskEvaluationCache(cache_dir)

    def _provenance(
        self,
        tier,
        workers,
        lru_before,
        disk_before,
        pooled: bool = False,
        cache_url: str | None = None,
    ) -> dict[str, Any]:
        lru_after = default_cache().stats()
        cache: dict[str, Any] = {
            # Counters are per-process: a pooled run evaluates in worker
            # processes whose counters never reach the parent, so its deltas
            # here are legitimately ~0.  The scope marker keeps records
            # honest instead of letting zeros read as "fully cache-served".
            "scope": (
                "parent-process only (evaluation may have run in worker "
                "processes)"
                if pooled
                else "in-process"
            ),
            "lru_hits": lru_after.hits - lru_before.hits,
            "lru_misses": lru_after.misses - lru_before.misses,
            "lru_disk_hits": lru_after.disk_hits - lru_before.disk_hits,
            "lru_evictions": lru_after.evictions - lru_before.evictions,
        }
        if tier is not None and disk_before is not None:
            disk_after = tier.stats()
            cache["disk_hits"] = disk_after.hits - disk_before.hits
            cache["disk_misses"] = disk_after.misses - disk_before.misses
            cache["disk_stores"] = disk_after.stores - disk_before.stores
            cache["disk_entries"] = disk_after.entries
        provenance: dict[str, Any] = {
            "package_version": _package_version(),
            "workers": workers or None,
            "cache_dir": str(tier.directory) if tier is not None else None,
            "cache_url": cache_url,
            "cache": cache,
        }
        return provenance


_DEFAULT_SESSION: Session | None = None


def default_session() -> Session:
    """The module-level :class:`Session` behind the legacy ``run_*`` shims.

    Created lazily with all-default policy (serial, no disk tier, paper-scale
    workloads) and deliberately not configurable: the shims must keep their
    historical behaviour.  For any other policy, construct your own
    :class:`Session` and call it directly -- a session you create does *not*
    become the default the shims use.
    """
    global _DEFAULT_SESSION
    if _DEFAULT_SESSION is None:
        _DEFAULT_SESSION = Session()
    return _DEFAULT_SESSION
