"""Public, versioned API of the LoAS reproduction.

Everything a caller needs lives behind three names:

* :class:`Session` -- configure resources once (cache tiers, worker pool,
  default workload scale), then :meth:`~Session.run` any registered scenario
  or :meth:`~Session.stream` its partitions as they complete,
* :class:`ScenarioResult` -- the typed record a run returns: shaped payload
  plus provenance (merged params, seeds, package version, cache counters),
  with a versioned :meth:`~ScenarioResult.to_json` /
  :meth:`~ScenarioResult.from_json` schema,
* :class:`PartitionResult` -- one streamed ``(workload, seed)`` partition.

The same surface is scriptable from a shell via ``python -m repro``
(:mod:`repro.api.cli`): ``list``, ``describe``, ``run`` and ``cache``
subcommands.

The legacy ``repro.experiments.run_*`` functions and
``repro.runner.run_scenario`` still work but are deprecation shims over
:func:`default_session`.
"""

from .result import SCHEMA_VERSION, PartitionResult, ScenarioResult
from .session import ScenarioStream, Session, default_session

__all__ = [
    "SCHEMA_VERSION",
    "PartitionResult",
    "ScenarioResult",
    "ScenarioStream",
    "Session",
    "default_session",
]
