"""``python -m repro`` -- the command-line face of :class:`repro.api.Session`.

Subcommands::

    python -m repro list                         # every registered scenario
    python -m repro describe fig13-traffic       # description + defaults
    python -m repro run fig13-traffic --scale 0.25 --workers 2 --json
    python -m repro run networks --set "networks=('alexnet',)" --stream
    python -m repro run networks --cache-url cachehost:8737
    python -m repro run dse-pe-scaling --arch loas-32nm --scale 0.25
    python -m repro run dse-sram-sweep --set arch.pe.num_tppes=32
    python -m repro cache serve --port 8737      # evaluation-cache daemon
    python -m repro cache stats --cache-dir .eval-cache --cache-url host:8737
    python -m repro cache stats --cache-dir .eval-cache --json
    python -m repro cache clear --cache-dir .eval-cache

``run`` prints the shaped payload as JSON by default; ``--json`` switches to
the full versioned :class:`~repro.api.result.ScenarioResult` record
(payload + provenance), decodable with ``ScenarioResult.from_json``.
``--stream`` executes sweep scenarios incrementally, reporting each
completed ``(workload, seed)`` partition on stderr as it lands.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from typing import Any, Sequence

from .result import _encode
from .session import Session

__all__ = ["main"]


class _CliError(Exception):
    """A user-facing CLI mistake: printed as one line, exit code 2.

    Raised only for *expected* failures (unknown scenario, option the
    scenario cannot honour); genuine library errors during execution
    propagate with a full traceback so failures stay diagnosable.
    """


def _parse_override(text: str) -> tuple[str, Any]:
    """``key=value`` with the value parsed as a Python literal when possible."""
    key, separator, raw = text.partition("=")
    if not separator or not key:
        raise argparse.ArgumentTypeError(
            "expected key=value, got %r" % (text,)
        )
    try:
        value = ast.literal_eval(raw)
    except (ValueError, SyntaxError):
        value = raw  # plain string, e.g. --set network=vgg16
    return key, value


def _build_parser() -> argparse.ArgumentParser:
    from .. import __version__

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run the LoAS-reproduction scenarios (figures and tables).",
    )
    parser.add_argument("--version", action="version", version="repro " + __version__)
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list every registered scenario")

    describe = commands.add_parser("describe", help="show a scenario's description and defaults")
    describe.add_argument("scenario")

    run = commands.add_parser("run", help="execute a scenario and print its result")
    run.add_argument("scenario")
    run.add_argument("--workers", type=int, default=None, help="worker-pool size (default: serial)")
    run.add_argument("--cache-dir", default=None, help="shared on-disk evaluation-cache directory")
    run.add_argument(
        "--cache-url",
        default=None,
        help="host:port of a running evaluation-cache daemon (cache serve)",
    )
    run.add_argument("--scale", type=float, default=None, help="workload scale override")
    run.add_argument("--seed", type=int, default=None, help="sweep seed override")
    run.add_argument(
        "--arch",
        default=None,
        help=(
            "hardware design point: a registered ArchSpec preset name "
            "(e.g. loas-32nm); tweak individual knobs with "
            "--set arch.<group>.<field>=<value>"
        ),
    )
    run.add_argument(
        "--set",
        dest="overrides",
        type=_parse_override,
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="extra scenario parameter (Python literal or string); repeatable",
    )
    run.add_argument(
        "--json",
        action="store_true",
        help="print the full ScenarioResult record (payload + provenance)",
    )
    run.add_argument(
        "--stream",
        action="store_true",
        help="stream partition completions to stderr while running",
    )

    cache = commands.add_parser(
        "cache", help="serve, inspect or clear the evaluation-cache tiers"
    )
    cache_commands = cache.add_subparsers(dest="cache_command", required=True)
    for name, help_text in (
        ("stats", "print cache counters (disk tier with --cache-dir, daemon with --cache-url)"),
        ("clear", "reset the in-process LRU (and the persistent tiers when named)"),
    ):
        sub = cache_commands.add_parser(name, help=help_text)
        sub.add_argument("--cache-dir", default=None)
        sub.add_argument("--cache-url", default=None)
        if name == "stats":
            sub.add_argument(
                "--json",
                action="store_true",
                help="machine-readable per-tier CacheStats record",
            )
    serve = cache_commands.add_parser(
        "serve", help="run the network-addressed evaluation-cache daemon"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default: loopback)")
    serve.add_argument(
        "--port",
        type=int,
        default=None,
        help="port to listen on (default: %d)" % _default_cache_port(),
    )
    serve.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="LRU byte budget for the held entries (default: unbounded)",
    )
    return parser


def _default_cache_port() -> int:
    from ..engine import RemoteBackend

    return RemoteBackend.DEFAULT_PORT


def _command_list(session: Session) -> int:
    names = session.scenarios()
    width = max(len(name) for name in names)
    for name in names:
        scenario = session.describe(name)
        print("%-*s  %s" % (width, name, scenario.description))
    return 0


def _resolve_scenario(session: Session, name: str):
    try:
        return session.describe(name)
    except KeyError as error:
        raise _CliError(error.args[0]) from error


def _command_describe(session: Session, name: str) -> int:
    scenario = _resolve_scenario(session, name)
    kind = "bespoke" if scenario.run is not None else "sweep"
    print("%s (%s scenario)" % (scenario.name, kind))
    if scenario.description:
        print("  %s" % scenario.description)
    if scenario.defaults:
        print("  defaults:")
        for key, value in scenario.defaults:
            print("    %s = %r" % (key, value))
    else:
        print("  defaults: (none)")
    if kind == "sweep":
        print("  streaming: supported (python -m repro run %s --stream)" % scenario.name)
    return 0


def _command_run(session: Session, args: argparse.Namespace) -> int:
    scenario = _resolve_scenario(session, args.scenario)
    # "arch.<path>" --set keys address individual ArchSpec knobs; they fold
    # into the scenario's arch_overrides parameter (flat (path, value) pairs)
    # instead of becoming parameters themselves.
    arch_overrides = tuple(
        (key[len("arch."):], value)
        for key, value in args.overrides
        if key.startswith("arch.")
    )
    params: dict[str, Any] = dict(
        (key, value) for key, value in args.overrides if not key.startswith("arch.")
    )
    if arch_overrides:
        if "arch_overrides" in params:
            raise _CliError(
                "'arch_overrides' given both via --set arch.<path>=... and "
                "--set arch_overrides=...; pick one"
            )
        params["arch_overrides"] = arch_overrides
    for reserved, flag in (
        ("workers", "--workers"),
        ("cache_dir", "--cache-dir"),
        ("cache_url", "--cache-url"),
    ):
        if reserved in params:
            # These travel as Session.run keyword arguments; accepting them
            # via --set too would collide ("multiple values for ...").
            raise _CliError(
                "%r is controlled by the %s flag, not --set" % (reserved, flag)
            )
    for flag_name, flag_value, flag in (
        ("scale", args.scale, "--scale"),
        ("seed", args.seed, "--seed"),
        ("arch", args.arch, "--arch"),
    ):
        if flag_value is None:
            continue
        if flag_name in params:
            # Same loud treatment as the workers/cache_dir collisions: a
            # silent overwrite would run with a value the user didn't pick.
            raise _CliError(
                "%r given both via %s and --set; pick one" % (flag_name, flag)
            )
        params[flag_name] = flag_value
    # Pre-flight the option/param mismatches (Session's own rules) so they
    # surface as clean one-liners, while errors raised during actual
    # execution keep their traceback.
    try:
        session.validate_run_options(
            scenario,
            workers=args.workers,
            cache_dir=args.cache_dir,
            cache_url=args.cache_url,
            stream=args.stream,
            params=params,
        )
    except (TypeError, ValueError) as error:
        raise _CliError(error.args[0]) from error
    if args.stream:
        stream = session.stream(
            args.scenario,
            workers=args.workers,
            cache_dir=args.cache_dir,
            cache_url=args.cache_url,
            **params,
        )
        done = 0
        for partition in stream:
            done += 1
            print(
                "[%d/%d] partition %d: %s @ seed %d (%d cells)"
                % (
                    done,
                    partition.total,
                    partition.index,
                    partition.workload_label,
                    partition.seed,
                    len(partition.cells),
                ),
                file=sys.stderr,
            )
        result = stream.result
    else:
        result = session.run(
            args.scenario,
            workers=args.workers,
            cache_dir=args.cache_dir,
            cache_url=args.cache_url,
            **params,
        )
    if args.json:
        print(result.to_json(indent=2))
    else:
        print(json.dumps(_encode(result.payload), indent=2))
    return 0


def _format_stats(label: str, stats) -> None:
    print("%s:" % label)
    for key, value in stats.as_dict().items():
        print("  %-16s %s" % (key, value))


def _command_cache(session: Session, args: argparse.Namespace) -> int:
    if args.cache_command == "serve":
        from ..engine.server import serve

        return serve(host=args.host, port=args.port, max_bytes=args.max_bytes)
    if args.cache_command == "stats":
        snapshot = session.cache_stats()
        if args.json:
            record = {
                tier: stats.as_dict() if stats is not None else None
                for tier, stats in snapshot.items()
            }
            print(json.dumps(record, indent=2))
            return 0
        _format_stats("lru (this process)", snapshot["lru"])
        if snapshot["disk"] is not None:
            _format_stats("disk (%s)" % session.cache_dir, snapshot["disk"])
        if session.remote_tier is not None:
            if snapshot["remote"] is not None:
                _format_stats("remote (%s)" % session.cache_url, snapshot["remote"])
            else:
                print(
                    "remote (%s): unreachable" % session.cache_url, file=sys.stderr
                )
        if snapshot["disk"] is None and session.remote_tier is None:
            print(
                "note: each CLI invocation starts a fresh process, so the "
                "LRU counters above are from this command only; pass "
                "--cache-dir or --cache-url to inspect the persistent tiers",
                file=sys.stderr,
            )
        return 0
    # clear
    if session.disk_tier is None and session.remote_tier is None:
        # Each CLI invocation is a fresh process whose LRU is already
        # empty; reporting "cleared" without a persistent tier would be a
        # lie.
        raise _CliError(
            "nothing to clear: the in-process LRU dies with each CLI "
            "invocation anyway; pass --cache-dir and/or --cache-url to "
            "clear the persistent tiers"
        )
    # Probe the daemon *before* touching the disk tier: clearing is
    # irreversible, so an unreachable daemon must abort the whole command
    # rather than error out after the disk entries are already gone.
    remote_before = None
    if session.remote_tier is not None:
        remote_before = session.remote_tier.server_stats()
        if remote_before is None:
            raise _CliError(
                "cache daemon %s is unreachable; nothing was cleared" % session.cache_url
            )
    if session.disk_tier is not None:
        removed = len(session.disk_tier)
        session.clear_cache(disk=True)
        print("removed %d disk entries from %s" % (removed, session.cache_dir))
    if session.remote_tier is not None:
        # clear() reports whether the daemon acknowledged; an irreversible
        # clear must never be claimed when the request was swallowed by a
        # degraded tier.
        if not session.remote_tier.clear():
            raise _CliError(
                "cache daemon %s stopped responding; its entries were NOT "
                "cleared" % session.cache_url
            )
        print("cleared %d daemon entries at %s" % (remote_before.entries, session.cache_url))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _command_list(Session())
        if args.command == "describe":
            return _command_describe(Session(), args.scenario)
        if args.command == "run":
            return _command_run(Session(), args)
        if args.command == "cache":
            if args.cache_command == "serve":
                return _command_cache(Session(), args)
            return _command_cache(
                Session(cache_dir=args.cache_dir, cache_url=args.cache_url), args
            )
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe: exit quietly.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0
    except _CliError as error:
        print("error: %s" % (error.args[0],), file=sys.stderr)
        return 2
    raise AssertionError("unreachable command %r" % (args.command,))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
